"""Benchmark: regenerate Figure 9 (simultaneous d- and i-cache resizing).

Paper shape being checked: the energy-delay savings from resizing the
d-cache and the i-cache are additive — resizing both together yields
approximately the sum of the individual reductions — and the combined mean
processor energy-delay reduction is substantial (the paper reports ~20 %
for static selective-sets on the base system).
"""

from bench_utils import run_once

from repro.experiments import figure9


def test_bench_figure9(benchmark, experiment_context):
    result = run_once(benchmark, figure9.run, experiment_context)
    print()
    print(result.format_table())

    average = result.average()

    # Additivity: combined reduction tracks the stacked individual reductions.
    assert result.mean_additivity_gap() < 3.0
    for row in result.applications:
        assert abs(row.additivity_gap) < 6.0, row.application

    # The combined savings are substantial and larger than either cache alone.
    assert average.both_energy_delay_reduction > 10.0
    assert average.both_energy_delay_reduction > average.dcache_energy_delay_reduction
    assert average.both_energy_delay_reduction > average.icache_energy_delay_reduction

    # Combined average-size reduction approximately equals the sum of the two
    # individual (jointly normalised) size reductions.
    assert abs(
        average.both_size_reduction
        - (average.dcache_size_reduction + average.icache_size_reduction)
    ) < 5.0
