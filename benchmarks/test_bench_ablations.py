"""Ablation benchmarks for the design choices DESIGN.md calls out.

These are not figures from the paper; they probe the sensitivity of the
reproduction to its own knobs:

* subarray size (resizing granularity),
* the slowdown bound applied when selecting static sizes,
* the dynamic controller's miss-bound factor.
"""

from bench_utils import bench_instructions, run_once

from repro.common.config import CacheGeometry, SystemConfig
from repro.common.units import KIB
from repro.experiments.context import D_CACHE, SELECTIVE_SETS, ExperimentContext
from repro.resizing.selective_sets import SelectiveSets
from repro.sim.simulator import Simulator
from repro.sim.sweep import profile_static, run_baseline
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import get_profile

_APPS = ("ammp", "compress", "gcc", "m88ksim", "vpr")


def _mean_reduction_for_subarray(subarray_bytes: int) -> float:
    """Mean static selective-sets d-cache reduction for a given subarray size."""
    geometry = CacheGeometry(32 * KIB, 2, subarray_bytes=subarray_bytes)
    system = SystemConfig().with_l1(l1d=geometry, l1i=CacheGeometry(32 * KIB, 2))
    simulator = Simulator(system)
    organization = SelectiveSets(geometry)
    n_instructions = min(bench_instructions(), 40_000)
    warmup = n_instructions // 10
    reductions = []
    for application in _APPS:
        trace = WorkloadGenerator(get_profile(application)).generate(n_instructions)
        baseline = run_baseline(simulator, trace, warmup_instructions=warmup)
        profile = profile_static(
            simulator, trace, organization, target=D_CACHE,
            baseline=baseline, warmup_instructions=warmup,
        )
        reductions.append(profile.energy_delay_reduction())
    return sum(reductions) / len(reductions)


def test_bench_ablation_subarray_size(benchmark):
    """Coarser subarrays shrink the size spectrum and the achievable savings."""

    def sweep():
        return {size: _mean_reduction_for_subarray(size) for size in (KIB, 4 * KIB, 16 * KIB)}

    results = run_once(benchmark, sweep)
    print()
    for size, reduction in results.items():
        print(f"subarray {size // KIB:>2}K: mean d-cache E*D reduction {reduction:5.1f}%")
    # 16K subarrays leave only 32K/16K as selectable sizes, so they cannot do
    # better than the fine-grained 1K subarrays of the paper.
    assert results[KIB] >= results[16 * KIB] - 0.5


def test_bench_ablation_slowdown_bound(benchmark, experiment_context):
    """Bounding the tolerated slowdown trades a little energy-delay for latency safety."""

    def sweep():
        bounded_context = ExperimentContext(
            n_instructions=min(bench_instructions(), 40_000),
            applications=_APPS,
            max_slowdown=0.02,
        )
        unbounded_context = ExperimentContext(
            n_instructions=min(bench_instructions(), 40_000),
            applications=_APPS,
            max_slowdown=None,
        )
        outcome = {}
        for label, context in (("slowdown<=2%", bounded_context), ("unbounded", unbounded_context)):
            reductions = []
            slowdowns = []
            for application in context.applications:
                profile = context.static_profile(application, SELECTIVE_SETS, D_CACHE, 2)
                reductions.append(profile.energy_delay_reduction())
                slowdowns.append(profile.best_result.slowdown_vs(profile.baseline))
            outcome[label] = (
                sum(reductions) / len(reductions),
                max(slowdowns),
            )
        return outcome

    results = run_once(benchmark, sweep)
    print()
    for label, (reduction, worst_slowdown) in results.items():
        print(
            f"{label:>14}: mean E*D reduction {reduction:5.1f}%, "
            f"worst slowdown {worst_slowdown:5.3f}"
        )
    # The bounded selection can never achieve a larger reduction than the
    # unbounded one, and must respect its slowdown ceiling.
    assert results["slowdown<=2%"][0] <= results["unbounded"][0] + 0.5
    assert results["slowdown<=2%"][1] <= 0.02 + 1e-9


def test_bench_ablation_dynamic_miss_bound(benchmark):
    """Sensitivity of the dynamic controller to its miss-bound factor."""

    def sweep():
        outcome = {}
        for factor in (1.0, 1.5, 3.0):
            context = ExperimentContext(
                n_instructions=min(bench_instructions(), 40_000),
                applications=("ammp", "gcc", "vpr"),
                miss_bound_factor=factor,
            )
            reductions = []
            for application in context.applications:
                baseline = context.baseline(application, 2)
                dynamic = context.dynamic_run(application, SELECTIVE_SETS, D_CACHE, 2)
                reductions.append(dynamic.energy_delay_reduction(baseline))
            outcome[factor] = sum(reductions) / len(reductions)
        return outcome

    results = run_once(benchmark, sweep)
    print()
    for factor, reduction in results.items():
        print(f"miss-bound factor {factor:3.1f}: mean dynamic E*D reduction {reduction:5.1f}%")
    assert len(results) == 3
