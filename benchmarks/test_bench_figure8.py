"""Benchmark: regenerate Figure 8 (i-cache static vs dynamic resizing).

Paper shape being checked: static i-cache resizing reduces processor
energy-delay on both processor configurations, the small-footprint
applications (ammp, compress, m88ksim, swim) downsize dramatically, and the
large-footprint applications (gcc, tomcatv) do not downsize at all.  The
same reduced-scale caveat as Figure 7 applies to the dynamic columns.
"""

from bench_utils import run_once

from repro.common.config import CoreKind
from repro.experiments import figure8


def test_bench_figure8(benchmark, experiment_context):
    result = run_once(benchmark, figure8.run, experiment_context)
    print()
    print(result.format_table())

    for core_kind in result.panels:
        average = result.average(core_kind)
        assert average.static_energy_delay_reduction > 4.0

        rows = {row.application: row for row in result.panel(core_kind)}
        for application in ("ammp", "compress", "m88ksim", "swim"):
            assert rows[application].static_size_reduction >= 75.0, application
        for application in ("gcc", "tomcatv"):
            assert rows[application].static_size_reduction == 0.0, application

    # The i-cache's energy share is larger on the in-order engine (the paper
    # reports 21.5% vs 17.5%), so its static savings are at least comparable.
    inorder = result.average(CoreKind.IN_ORDER_BLOCKING)
    ooo = result.average(CoreKind.OUT_OF_ORDER_NONBLOCKING)
    assert inorder.static_energy_delay_reduction > 0.6 * ooo.static_energy_delay_reduction
