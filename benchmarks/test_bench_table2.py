"""Benchmark: Table 2 base configuration and the measured energy breakdown."""

from bench_utils import run_once

from repro.experiments import table2


def test_bench_table2(benchmark, experiment_context):
    result = run_once(benchmark, table2.run, experiment_context)
    print()
    print(result.format_table())
    mean = result.mean_fractions
    # Paper: d-cache ~18.5%, i-cache ~17.5% of processor energy on average.
    assert 0.10 < mean["l1d"] < 0.30
    assert 0.10 < mean["l1i"] < 0.30
