"""Fused-ladder microbenchmark: one trace pass vs K per-config replays.

These benchmarks time the ISSUE-5 tentpole directly: a K=8 profiling-style
ladder (static configurations of one L1 over a fixed trace) replayed the
per-config way — K independent ``Simulator.run`` calls, each decoding the
trace, modelling the branches and walking the intervals — against the fused
:func:`repro.sim.ladder.run_fused` pass that decodes once, runs the branch
predictor once, pilot-resolves the invariant L1i once, and feeds all K
cache hierarchies from the shared op stream.

Like the replay benchmarks, the trace length is fixed (not
``REPRO_BENCH_INSTRUCTIONS``) so the measured loop is the same workload
everywhere; both modes are gated individually by the committed baseline
means, and ``test_fused_ladder_speedup`` asserts the ISSUE-5 acceptance
floor of >=1.5x at K=8 (the fused pass measures ~1.8-1.9x on an idle
single-core host; the floor is deliberately loose for noisy CI runners).
The speedup is worthless if the paths diverge, so every measurement also
asserts rung-for-rung ``to_dict()`` equality.
"""

from __future__ import annotations

import time

import pytest

from bench_utils import bench_instructions  # noqa: F401  (keeps sys.path bootstrap)

from repro.common.config import SystemConfig
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.static_strategy import StaticResizing
from repro.sim.ladder import run_fused
from repro.sim.runner import TraceSpec
from repro.sim.simulator import L1Setup, Simulator

#: Fixed microbenchmark trace length (matches the replay benchmarks).
LADDER_INSTRUCTIONS = 30_000

#: Rung count the acceptance floor is defined at (ISSUE 5).
LADDER_RUNGS = 8

#: Required fused-over-per-config speedup at K=8.
MIN_SPEEDUP = 1.5

_SYSTEM = SystemConfig()


@pytest.fixture(scope="module")
def ladder_trace():
    """One fixed gcc trace shared by every ladder benchmark."""
    return TraceSpec("gcc", LADDER_INSTRUCTIONS).materialize()


def _rung_configs():
    """K=8 static d-cache configurations (the hybrid ladder, wrapped)."""
    ladder = HybridSetsAndWays(_SYSTEM.l1d).ladder()
    return [ladder[index % len(ladder)] for index in range(LADDER_RUNGS)]


def _setups():
    """Fresh stateful setups for one ladder execution."""
    return [
        (L1Setup(HybridSetsAndWays(_SYSTEM.l1d), StaticResizing(config)), None)
        for config in _rung_configs()
    ]


def _run_per_config(trace):
    simulator = Simulator(_SYSTEM)
    return [
        simulator.run(trace, d_setup=d_setup, i_setup=i_setup)
        for d_setup, i_setup in _setups()
    ]


def _run_fused(trace):
    return run_fused(Simulator(_SYSTEM), trace, _setups())


def _bench_mode(benchmark, trace, runner, mode):
    results = benchmark.pedantic(
        runner, args=(trace,), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["ladder_mode"] = mode
    benchmark.extra_info["rungs"] = LADDER_RUNGS
    benchmark.extra_info["rung_instructions_per_second"] = round(
        LADDER_RUNGS * len(trace) / benchmark.stats.stats.mean
    )
    assert len(results) == LADDER_RUNGS
    assert all(result.instructions == len(trace) for result in results)
    return results


def test_bench_ladder_per_config(benchmark, ladder_trace):
    _bench_mode(benchmark, ladder_trace, _run_per_config, "per-config")


def test_bench_ladder_fused(benchmark, ladder_trace):
    _bench_mode(benchmark, ladder_trace, _run_fused, "fused")


def _measure_speedup(trace):
    """Best-of-three speedup, interleaved so both modes see the same machine
    state; also asserts rung-for-rung bit-identity."""
    per_config_times = []
    fused_times = []
    per_config_results = fused_results = None
    for _ in range(3):
        started = time.perf_counter()
        per_config_results = _run_per_config(trace)
        per_config_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        fused_results = _run_fused(trace)
        fused_times.append(time.perf_counter() - started)
    assert [r.to_dict() for r in per_config_results] == [
        r.to_dict() for r in fused_results
    ]
    return min(per_config_times) / min(fused_times)


def test_fused_ladder_speedup(ladder_trace):
    """The fused pass must beat K per-config replays on the same host.

    Same noise protocol as the cross-engine replay test: three independent
    attempts, any one clearing the floor passes, so only a host where the
    fused pass *repeatedly* measures under 1.5x fails — a genuine
    amortization regression, not a scheduling hiccup.
    """
    speedups = []
    for _ in range(3):
        speedups.append(_measure_speedup(ladder_trace))
        if speedups[-1] >= MIN_SPEEDUP:
            return
    raise AssertionError(
        f"fused ladder stayed under {MIN_SPEEDUP}x the per-config path at "
        f"K={LADDER_RUNGS} in {len(speedups)} attempts: "
        + ", ".join(f"{s:.2f}x" for s in speedups)
    )
