"""Fused-ladder microbenchmark: one trace pass vs K per-config replays.

These benchmarks time the ISSUE-5 tentpole directly: a K=8 profiling-style
ladder (static configurations of one L1 over a fixed trace) replayed the
per-config way — K independent ``Simulator.run`` calls, each decoding the
trace, modelling the branches and walking the intervals — against the fused
:func:`repro.sim.ladder.run_fused` pass that decodes once, runs the branch
predictor once, pilot-resolves the invariant L1i once, and feeds all K
cache hierarchies from the shared op stream.

Like the replay benchmarks, the trace length is fixed (not
``REPRO_BENCH_INSTRUCTIONS``) so the measured loop is the same workload
everywhere; both modes are gated individually by the committed baseline
means, and ``test_fused_ladder_speedup`` asserts the ISSUE-5 acceptance
floor of >=1.5x at K=8 (the fused pass measures ~1.8-1.9x on an idle
single-core host; the floor is deliberately loose for noisy CI runners).
The speedup is worthless if the paths diverge, so every measurement also
asserts rung-for-rung ``to_dict()`` equality.
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import sys
import time

import pytest

from bench_utils import bench_instructions  # noqa: F401  (keeps sys.path bootstrap)

from repro.common.config import SystemConfig
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.static_strategy import StaticResizing
from repro.sim.ladder import run_fused
from repro.sim.runner import TraceSpec
from repro.sim.simulator import L1Setup, Simulator

#: Fixed microbenchmark trace length (matches the replay benchmarks).
LADDER_INSTRUCTIONS = 30_000

#: Rung count the acceptance floor is defined at (ISSUE 5).
LADDER_RUNGS = 8

#: Required fused-over-per-config speedup at K=8.
MIN_SPEEDUP = 1.5

_SYSTEM = SystemConfig()


@pytest.fixture(scope="module")
def ladder_trace():
    """One fixed gcc trace shared by every ladder benchmark."""
    return TraceSpec("gcc", LADDER_INSTRUCTIONS).materialize()


def _rung_configs():
    """K=8 static d-cache configurations (the hybrid ladder, wrapped)."""
    ladder = HybridSetsAndWays(_SYSTEM.l1d).ladder()
    return [ladder[index % len(ladder)] for index in range(LADDER_RUNGS)]


def _setups():
    """Fresh stateful setups for one ladder execution."""
    return [
        (L1Setup(HybridSetsAndWays(_SYSTEM.l1d), StaticResizing(config)), None)
        for config in _rung_configs()
    ]


def _run_per_config(trace):
    # The comparator pins the engine to "columnar-scalar" so each of the K
    # replays really does decode the trace and model the branches, which is
    # what this benchmark's per-config arm is defined to measure (module
    # docstring).  The default engine's whole-trace decode memo would let
    # replays 2..K share replay 1's decode — that is the fused pass's
    # amortization leaking into its own baseline, not a K-independent-runs
    # measurement.
    simulator = Simulator(_SYSTEM, engine="columnar-scalar")
    return [
        simulator.run(trace, d_setup=d_setup, i_setup=i_setup)
        for d_setup, i_setup in _setups()
    ]


def _run_fused(trace):
    return run_fused(Simulator(_SYSTEM), trace, _setups())


def _bench_mode(benchmark, trace, runner, mode):
    results = benchmark.pedantic(
        runner, args=(trace,), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["ladder_mode"] = mode
    benchmark.extra_info["rungs"] = LADDER_RUNGS
    benchmark.extra_info["rung_instructions_per_second"] = round(
        LADDER_RUNGS * len(trace) / benchmark.stats.stats.mean
    )
    assert len(results) == LADDER_RUNGS
    assert all(result.instructions == len(trace) for result in results)
    return results


def test_bench_ladder_per_config(benchmark, ladder_trace):
    _bench_mode(benchmark, ladder_trace, _run_per_config, "per-config")


def test_bench_ladder_fused(benchmark, ladder_trace):
    _bench_mode(benchmark, ladder_trace, _run_fused, "fused")


def _measure_speedup(trace):
    """Best-of-three speedup, interleaved so both modes see the same machine
    state; also asserts rung-for-rung bit-identity.

    The measurement runs with the pre-existing heap frozen out of garbage
    collection: in a full-suite session the benchmarks before this one
    leave a large tracked heap, and the fused pass — which keeps K=8
    hierarchies live at once and therefore crosses GC thresholds more often
    than the one-at-a-time per-config loop — gets billed for collections
    over that unrelated history, compressing the measured ratio by ~0.2-0.4x
    on a 1-core host.  Freezing (collect first, so garbage is not
    immortalised) removes exactly that cross-test interference while the
    caches, predictor and both replay paths still allocate and collect
    normally inside the measured region.
    """
    per_config_times = []
    fused_times = []
    per_config_results = fused_results = None
    gc.collect()
    gc.freeze()
    try:
        for _ in range(3):
            started = time.perf_counter()
            per_config_results = _run_per_config(trace)
            per_config_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            fused_results = _run_fused(trace)
            fused_times.append(time.perf_counter() - started)
    finally:
        gc.unfreeze()
    assert [r.to_dict() for r in per_config_results] == [
        r.to_dict() for r in fused_results
    ]
    return min(per_config_times) / min(fused_times)


def _speedup_main():
    """Subprocess entry point: run the attempt loop and print the ratios."""
    trace = TraceSpec("gcc", LADDER_INSTRUCTIONS).materialize()
    speedups = []
    for _ in range(3):
        speedups.append(_measure_speedup(trace))
        if speedups[-1] >= MIN_SPEEDUP:
            break
    print(json.dumps(speedups))


def test_fused_ladder_speedup():
    """The fused pass must beat K per-config replays on the same host.

    Same noise protocol as the cross-engine replay test: three independent
    attempts, any one clearing the floor passes, so only a host where the
    fused pass *repeatedly* measures under 1.5x fails — a genuine
    amortization regression, not a scheduling hiccup.

    The attempts run in a **fresh interpreter** (a subprocess executing this
    file).  The 1.5x floor was calibrated in a clean process; after ~90s of
    full-suite execution the adaptive interpreter's inline caches and the
    accumulated heap bias the two paths differently, and the in-process
    ratio measures ~1.45x on the *unmodified* baseline — a property of the
    session, not of the ladder code.  A subprocess restores the calibration
    context without loosening the floor.
    """
    env = dict(os.environ)
    src = os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "src")
    )
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    proc = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--speedup"],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"speedup subprocess failed:\n{proc.stdout}\n{proc.stderr}"
    )
    speedups = json.loads(proc.stdout.strip().splitlines()[-1])
    if not any(speedup >= MIN_SPEEDUP for speedup in speedups):
        raise AssertionError(
            f"fused ladder stayed under {MIN_SPEEDUP}x the per-config path at "
            f"K={LADDER_RUNGS} in {len(speedups)} attempts: "
            + ", ".join(f"{s:.2f}x" for s in speedups)
        )


if __name__ == "__main__":
    if "--speedup" in sys.argv:
        _speedup_main()
