"""Benchmark: regenerate Figure 4 (selective-ways vs selective-sets).

Paper shape being checked: selective-sets achieves the larger mean
energy-delay reduction for 2- and 4-way base caches, selective-ways for
8- and 16-way base caches, for both the d-cache and the i-cache.
"""

from bench_utils import run_once

from repro.experiments import figure4
from repro.experiments.context import D_CACHE, I_CACHE, SELECTIVE_SETS, SELECTIVE_WAYS


def test_bench_figure4(benchmark, experiment_context):
    result = run_once(benchmark, figure4.run, experiment_context)
    print()
    print(result.format_table())

    for target in (D_CACHE, I_CACHE):
        # Selective-sets wins (or ties) at 2-way ...
        assert (
            result.mean_reduction(target, SELECTIVE_SETS, 2)
            >= result.mean_reduction(target, SELECTIVE_WAYS, 2) - 0.5
        )
        # ... and selective-ways wins at 8-way and 16-way.
        for associativity in (8, 16):
            ways_mean = result.mean_reduction(target, SELECTIVE_WAYS, associativity)
            assert ways_mean > result.mean_reduction(
                target, SELECTIVE_SETS, associativity
            )
        # Selective-ways improves monotonically with associativity (finer
        # granularity), as in the paper.
        ways_series = [result.mean_reduction(target, SELECTIVE_WAYS, a) for a in (2, 4, 8, 16)]
        assert ways_series == sorted(ways_series)
