"""Microbenchmarks for the packed-outcome cache kernel.

The replay benchmarks (``test_bench_replay.py``) time whole simulator runs;
these time the memory-hierarchy kernel itself — the L1-hit fast path, the
miss+writeback path and a full L1→L2→memory hierarchy access — so the perf
gate watches the per-access cost that every profiling ladder, static sweep
and dynamic run multiplies by millions.  A regression in ``access_packed``
(a reintroduced allocation, a lost hoisted local) shows up here first,
un-diluted by trace decode or interval bookkeeping.

Loop sizes are fixed (not ``REPRO_BENCH_INSTRUCTIONS``): the workload must
be identical everywhere for the committed ``benchmarks/baseline.json`` means
to be comparable, and each loop is sized to clear the bench-compare gate's
sub-50ms noise floor on CI hardware.
"""

from __future__ import annotations

from bench_utils import bench_instructions  # noqa: F401  (keeps sys.path bootstrap)

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SystemConfig

#: Accesses per timed round.  ~0.15-0.5s per round on 2020s hardware:
#: comfortably above the bench-compare 50ms floor, small enough for CI.
HIT_LOOP_ACCESSES = 400_000
MISS_LOOP_ACCESSES = 150_000
HIERARCHY_ACCESSES = 150_000


def _bench(benchmark, function, *args):
    result = benchmark.pedantic(function, args=args, rounds=3, iterations=1, warmup_rounds=1)
    return result


def _hit_loop(cache, addresses):
    access = cache.access_packed
    for address in addresses:
        access(address, False)
    return cache.stats.hits


def test_bench_cache_l1_hit(benchmark):
    """The L1-hit fast path: resident working set, 100% hits after warmup."""
    system = SystemConfig()
    cache = Cache(system.l1d, name="l1d")
    block = system.l1d.block_bytes
    resident = 64  # blocks; well inside a 32 KiB cache
    addresses = [(i % resident) * block for i in range(HIT_LOOP_ACCESSES)]
    for address in addresses[:resident]:
        cache.access_packed(address, False)
    hits = _bench(benchmark, _hit_loop, cache, addresses)
    benchmark.extra_info["accesses_per_second"] = round(
        HIT_LOOP_ACCESSES / benchmark.stats.stats.mean
    )
    assert hits > 0


def _miss_loop(cache, addresses):
    access = cache.access_packed
    writebacks = 0
    for address in addresses:
        writebacks += access(address, True) >> 2 & 1
    return writebacks


def test_bench_cache_miss_writeback(benchmark):
    """The worst-case L1 path: every store misses and evicts a dirty victim."""
    system = SystemConfig()
    cache = Cache(system.l1d, name="l1d")
    geometry = system.l1d
    stride = geometry.num_sets * geometry.block_bytes
    conflict_depth = geometry.associativity + 1  # one more than the ways
    addresses = [
        (i % conflict_depth) * stride for i in range(MISS_LOOP_ACCESSES)
    ]
    for address in addresses[:conflict_depth]:  # warm up to steady-state thrash
        cache.access_packed(address, True)
    writebacks = _bench(benchmark, _miss_loop, cache, addresses)
    benchmark.extra_info["accesses_per_second"] = round(
        MISS_LOOP_ACCESSES / benchmark.stats.stats.mean
    )
    assert writebacks > 0  # the loop really is exercising the writeback path


def _hierarchy_loop(hierarchy, operations):
    data_access = hierarchy.data_access_packed
    instruction_fetch = hierarchy.instruction_fetch_packed
    l1_hits = 0
    for kind, address in operations:
        if kind:
            l1_hits += data_access(address, kind == 2) & 1
        else:
            l1_hits += instruction_fetch(address) & 1
    return l1_hits


def test_bench_hierarchy_access(benchmark):
    """A full-hierarchy mix: fetches plus loads/stores, hits and misses.

    The address stream walks a working set about twice the L1 size, so a
    steady fraction of accesses fall through to the L2 (and occasionally
    memory) — the realistic blend the replay loop produces.
    """
    system = SystemConfig()
    hierarchy = CacheHierarchy(
        system,
        l1i=Cache(system.l1i, name="l1i"),
        l1d=Cache(system.l1d, name="l1d"),
    )
    block = system.l1d.block_bytes
    data_span = (2 * system.l1d.capacity_bytes) // block  # blocks
    operations = []
    for i in range(HIERARCHY_ACCESSES):
        kind = i % 3  # 0 = fetch, 1 = load, 2 = store
        if kind == 0:
            address = 0x40_0000 + (i % 512) * 4  # tight code loop
        else:
            address = ((i * 7) % data_span) * block  # strided data walk
        operations.append((kind, address))
    l1_hits = _bench(benchmark, _hierarchy_loop, hierarchy, operations)
    benchmark.extra_info["accesses_per_second"] = round(
        HIERARCHY_ACCESSES / benchmark.stats.stats.mean
    )
    assert 0 < l1_hits
