"""Benchmark: regenerate Table 1 (hybrid size/associativity lattice)."""

from bench_utils import run_once

from repro.common.units import KIB
from repro.experiments import table1


def test_bench_table1(benchmark):
    result = run_once(benchmark, table1.run)
    print()
    print(result.format_table())
    # Paper check: the hybrid offers all of 32K..1K for a 32K 4-way cache.
    assert result.hybrid_sizes == [s * KIB for s in (32, 24, 16, 12, 8, 6, 4, 3, 2, 1)]
