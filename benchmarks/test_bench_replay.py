"""Raw replay-throughput microbenchmark for the simulator hot loop.

Unlike the figure benchmarks (which time whole experiment harnesses —
profiling ladders, cache machinery, result assembly), these benchmarks time
*one* ``Simulator.run`` per engine on a fixed trace, so the perf gate
watches the per-instruction replay cost itself: a regression in the decode
pass, the op-stream dispatch or the record iterator shows up here first,
un-diluted by orchestration time.

The trace length is fixed (not ``REPRO_BENCH_INSTRUCTIONS``) so the
measured loop is the same workload everywhere; the committed baseline means
in ``benchmarks/baseline.json`` gate both engines, and
``test_columnar_faster_than_reference`` loosely asserts the speedup the
columnar engine exists to provide (>=1.5x on the same host since the
packed-outcome cache kernel landed, a conservative floor well under the
~2.3x it measures on an idle machine — CI containers are noisy and
single-core).  ``test_columnar_beats_pr3_baseline`` additionally pins the
packed kernel's end-to-end win against the frozen PR-3 columnar time,
normalizing out host speed through the reference engine.
"""

from __future__ import annotations

import time

import pytest

from bench_utils import bench_instructions  # noqa: F401  (keeps sys.path bootstrap)

from repro.common.config import SystemConfig
from repro.sim.runner import TraceSpec
from repro.sim.simulator import Simulator

#: Fixed microbenchmark trace length: long enough that per-run setup (cache
#: construction, interval bookkeeping) is noise, short enough for CI.
REPLAY_INSTRUCTIONS = 30_000

#: Loose speedup floor asserted for the columnar engine (see module docstring).
MIN_SPEEDUP = 1.5

#: Best-of-three wall times for this fixed workload as measured at PR 3
#: (pre-packed-kernel), frozen here as the yardstick for the kernel's
#: end-to-end win.  Both engines were measured on the same host, so the
#: reference entry doubles as that host's speed calibration.
PR3_BASELINE_SECONDS = {"reference": 0.0746, "columnar": 0.0524}

#: Required end-to-end columnar speedup over the PR-3 columnar baseline.
MIN_KERNEL_SPEEDUP_VS_PR3 = 1.25


@pytest.fixture(scope="module")
def replay_trace():
    """One fixed gcc trace shared by every replay benchmark."""
    return TraceSpec("gcc", REPLAY_INSTRUCTIONS).materialize()


def _replay(trace, engine):
    return Simulator(SystemConfig(), engine=engine).run(trace)


def _bench_engine(benchmark, trace, engine):
    result = benchmark.pedantic(
        _replay, args=(trace, engine), rounds=3, iterations=1, warmup_rounds=1
    )
    benchmark.extra_info["engine"] = engine
    benchmark.extra_info["instructions_per_second"] = round(
        len(trace) / benchmark.stats.stats.mean
    )
    assert result.instructions == len(trace)
    return result


def test_bench_replay_reference(benchmark, replay_trace):
    _bench_engine(benchmark, replay_trace, "reference")


def test_bench_replay_columnar(benchmark, replay_trace):
    _bench_engine(benchmark, replay_trace, "columnar")


def _measure_speedup(trace):
    """Best-of-three speedup, interleaved so both engines see the same
    machine state; the best (minimum) time per engine is the most
    noise-robust statistic on shared CI hardware.  Also asserts the two
    engines stay bit-identical — the speedup is worthless if they diverge.
    """
    reference_times = []
    columnar_times = []
    reference_result = columnar_result = None
    for _ in range(3):
        started = time.perf_counter()
        reference_result = _replay(trace, "reference")
        reference_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        columnar_result = _replay(trace, "columnar")
        columnar_times.append(time.perf_counter() - started)
    assert reference_result.to_dict() == columnar_result.to_dict()
    return min(reference_times) / min(columnar_times)


def test_columnar_faster_than_reference(replay_trace):
    """The columnar engine must beat the reference loop on the same host.

    This test runs inside the tier-1 matrix on shared CI runners, so a
    single noisy measurement must not fail the build: the ~1.4x engine is
    given three independent attempts to clear the deliberately loose 1.2x
    floor, and only a host where it *repeatedly* measures slower fails —
    i.e. a genuine hot-loop regression, not a scheduling hiccup.
    """
    speedups = []
    for _ in range(3):
        speedups.append(_measure_speedup(replay_trace))
        if speedups[-1] >= MIN_SPEEDUP:
            return
    raise AssertionError(
        f"columnar engine stayed under {MIN_SPEEDUP}x the reference engine in "
        f"{len(speedups)} attempts: " + ", ".join(f"{s:.2f}x" for s in speedups)
    )


def _measure_pr3_speedup(trace):
    """Columnar speedup vs the frozen PR-3 columnar time, host-normalized.

    The host's speed relative to the PR-3 measurement machine is estimated
    from the reference engine (whose baseline was taken in the same PR-3
    session); dividing it out makes the assertion portable across CI
    hardware.  The estimate is conservative: the reference engine itself
    got ~15% faster from the packed kernel's wrapper path, which *deflates*
    the computed speedup, so clearing the floor here under-reports the
    real end-to-end win.
    """
    reference_times = []
    columnar_times = []
    for _ in range(3):
        started = time.perf_counter()
        _replay(trace, "reference")
        reference_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        _replay(trace, "columnar")
        columnar_times.append(time.perf_counter() - started)
    hardware_factor = min(reference_times) / PR3_BASELINE_SECONDS["reference"]
    normalized_columnar = min(columnar_times) / hardware_factor
    return PR3_BASELINE_SECONDS["columnar"] / normalized_columnar


def test_columnar_beats_pr3_baseline(replay_trace):
    """The packed kernel must hold >=1.25x end-to-end over the PR-3 columnar
    engine (ISSUE 4's acceptance floor; ~1.6x measured after normalization,
    ~1.9x raw on the PR-3 measurement host).  Same noise protocol as the
    cross-engine test: three independent attempts, any one clearing the
    floor passes.
    """
    speedups = []
    for _ in range(3):
        speedups.append(_measure_pr3_speedup(replay_trace))
        if speedups[-1] >= MIN_KERNEL_SPEEDUP_VS_PR3:
            return
    raise AssertionError(
        f"columnar engine stayed under {MIN_KERNEL_SPEEDUP_VS_PR3}x the frozen "
        f"PR-3 baseline in {len(speedups)} attempts: "
        + ", ".join(f"{s:.2f}x" for s in speedups)
    )
