"""Benchmark: regenerate Figure 6 (hybrid organization effectiveness).

Paper shape being checked: the hybrid selective-sets-and-ways organization
achieves an energy-delay reduction equal to or better than the best of
selective-ways and selective-sets alone, at every base associativity, for
both caches.
"""

from bench_utils import run_once

from repro.experiments import figure6
from repro.experiments.context import D_CACHE, HYBRID, I_CACHE, SELECTIVE_SETS, SELECTIVE_WAYS


def test_bench_figure6(benchmark, experiment_context):
    result = run_once(benchmark, figure6.run, experiment_context)
    print()
    print(result.format_table())

    for target in (D_CACHE, I_CACHE):
        for associativity in result.associativities:
            assert result.hybrid_matches_best(target, associativity, tolerance=0.75), (
                target,
                associativity,
            )
        # The hybrid's gain over the best basic organization is largest where
        # granularity is the binding constraint; it must at least add
        # something somewhere.
        gains = [
            result.mean_reduction(target, HYBRID, a)
            - max(
                result.mean_reduction(target, SELECTIVE_WAYS, a),
                result.mean_reduction(target, SELECTIVE_SETS, a),
            )
            for a in result.associativities
        ]
        assert max(gains) > -0.5
