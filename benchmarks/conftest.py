"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
the regenerated rows/series, so running

    pytest benchmarks/ --benchmark-only -s

reproduces the whole evaluation section.  The trace length is controlled by
the ``REPRO_BENCH_INSTRUCTIONS`` environment variable (default 60 000
instructions per application); expensive profiling sweeps are shared between
figures through a single session-scoped
:class:`repro.experiments.context.ExperimentContext`.
"""

from __future__ import annotations

import pytest

from bench_utils import bench_instructions

from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="session")
def experiment_context() -> ExperimentContext:
    """One shared context so figures reuse each other's profiling runs."""
    return ExperimentContext(n_instructions=bench_instructions())
