"""Benchmark: regenerate Figure 7 (d-cache static vs dynamic resizing).

Paper shape being checked: on the out-of-order, non-blocking configuration
static resizing downsizes aggressively and captures most of the opportunity
(the paper's central conclusion about resizing strategy).  The constant-
working-set applications end up at the same size under both strategies.

Known deviation (documented in EXPERIMENTS.md): at the reduced trace scale
of this reproduction a resize transition's flush/refill cost is not
amortised the way it is over the paper's billion-instruction runs, so
dynamic resizing does not overtake static resizing in panel (a).
"""

from bench_utils import run_once

from repro.common.config import CoreKind
from repro.experiments import figure7


def test_bench_figure7(benchmark, experiment_context):
    result = run_once(benchmark, figure7.run, experiment_context)
    print()
    print(result.format_table())

    ooo = result.average(CoreKind.OUT_OF_ORDER_NONBLOCKING)
    inorder = result.average(CoreKind.IN_ORDER_BLOCKING)

    # Static resizing saves energy-delay on average on both configurations.
    assert ooo.static_energy_delay_reduction > 3.0
    assert inorder.static_energy_delay_reduction > 3.0

    # The out-of-order engine hides data-miss latency, so static resizing is
    # at least as aggressive there as on the in-order engine (paper: "cache
    # resizing with out-of-order issue processor is more aggressive").
    assert ooo.static_size_reduction >= inorder.static_size_reduction - 1.0

    # Constant-working-set applications settle at the same size under both
    # strategies (within a convergence allowance).
    for core_kind in result.panels:
        rows = {row.application: row for row in result.panel(core_kind)}
        for application in ("ammp", "m88ksim"):
            row = rows[application]
            assert abs(row.dynamic_size_reduction - row.static_size_reduction) < 10.0
