"""Benchmark: regenerate Figure 5 (per-application detail, 4-way caches).

Paper shape being checked: for 4-way d-caches the majority of applications
achieve a better energy-delay reduction with selective-sets (the paper
reports ten of twelve), compress is the counter-example that prefers
selective-ways' 24K point, and swim does not downsize at all.
"""

from bench_utils import run_once

from repro.experiments import figure5
from repro.experiments.context import D_CACHE, I_CACHE


def test_bench_figure5(benchmark, experiment_context):
    result = run_once(benchmark, figure5.run, experiment_context)
    print()
    print(result.format_table())

    dcache_rows = {row.application: row for row in result.panel(D_CACHE)}

    # Most applications prefer selective-sets for the 4-way d-cache.
    assert result.sets_win_count(D_CACHE) >= 7

    # compress needs granularity at large sizes, which only selective-ways offers.
    compress = dcache_rows["compress"]
    assert compress.ways_energy_delay_reduction > compress.sets_energy_delay_reduction

    # swim's working set exceeds the cache, so neither organization downsizes.
    swim = dcache_rows["swim"]
    assert swim.ways_size_reduction == 0.0
    assert swim.sets_size_reduction == 0.0

    # The small-working-set applications downsize dramatically under selective-sets.
    for application in ("ammp", "m88ksim"):
        assert dcache_rows[application].sets_size_reduction >= 75.0

    # I-cache panel: small-footprint applications downsize under selective-sets.
    icache_rows = {row.application: row for row in result.panel(I_CACHE)}
    for application in ("ammp", "compress", "m88ksim", "swim"):
        assert icache_rows[application].sets_size_reduction >= 75.0
    # gcc and tomcatv have instruction working sets larger than 32K: no downsizing.
    for application in ("gcc", "tomcatv"):
        assert icache_rows[application].sets_size_reduction == 0.0
