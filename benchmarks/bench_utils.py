"""Helpers shared by the benchmark files (see conftest.py for fixtures)."""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def bench_instructions() -> int:
    """Trace length used by the benchmarks (env-overridable)."""
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "60000"))


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive, so a single round is
    both sufficient and necessary to keep the suite's runtime sane.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
