"""Pre-decode microbenchmarks: the whole-trace decode pass and its memo.

The configuration-invariant decode (:mod:`repro.sim.predecode`) is the
phase every replay and fused ladder now amortizes, so its cost is gated
directly: ``test_bench_predecode_build`` times one whole-trace build on the
fixed microbenchmark workload (the committed baseline mean in
``benchmarks/baseline.json`` gates it like the replay benchmarks), and two
speedup floors assert the reasons the module exists — the NumPy builder
must beat the bit-identical stdlib builder when NumPy is importable, and a
memo hit must be effectively free next to a rebuild.

Both floors use the suite's 3-attempt noise pattern: any one attempt
clearing the floor passes, so only a host that *repeatedly* measures under
it fails.
"""

from __future__ import annotations

import time

import pytest

from bench_utils import bench_instructions  # noqa: F401  (keeps sys.path bootstrap)

from repro.common.config import SystemConfig
from repro.cpu.branch import BimodalBranchPredictor
from repro.sim import predecode
from repro.sim.runner import TraceSpec
from repro.sim.vector import numpy_or_none

#: Fixed microbenchmark trace length (matches the replay benchmarks).
DECODE_INSTRUCTIONS = 30_000

#: Required NumPy-over-stdlib build speedup (measures ~3-4x on an idle
#: single-core host; deliberately loose for noisy CI runners).
MIN_VECTOR_SPEEDUP = 1.5

#: Required build-over-memo-hit ratio: a hit is a dict lookup, so even a
#: very loose floor catches the memo silently rebuilding.
MIN_MEMO_SPEEDUP = 20.0

_BLOCK_MASK = ~(SystemConfig().l1i.block_bytes - 1)


@pytest.fixture(scope="module")
def decode_trace():
    """One fixed gcc trace shared by every pre-decode benchmark."""
    return TraceSpec("gcc", DECODE_INSTRUCTIONS).materialize()


def test_bench_predecode_build(benchmark, decode_trace):
    decoded = benchmark.pedantic(
        predecode.build_decoded,
        args=(decode_trace, _BLOCK_MASK),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    benchmark.extra_info["builder"] = (
        "numpy" if numpy_or_none() is not None else "scalar"
    )
    benchmark.extra_info["instructions_per_second"] = round(
        len(decode_trace) / benchmark.stats.stats.mean
    )
    assert decoded is not None and decoded.n == len(decode_trace)


def _best_of(fn, rounds=3):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return min(times)


@pytest.mark.skipif(numpy_or_none() is None, reason="NumPy unavailable")
def test_vectorized_build_speedup(decode_trace):
    np = numpy_or_none()
    speedups = []
    for _ in range(3):
        scalar = _best_of(
            lambda: predecode._build_scalar(decode_trace, _BLOCK_MASK)
        )
        vectorized = _best_of(
            lambda: predecode._build_numpy(decode_trace, _BLOCK_MASK, np)
        )
        speedups.append(scalar / vectorized)
        if speedups[-1] >= MIN_VECTOR_SPEEDUP:
            break
    else:
        raise AssertionError(
            f"NumPy builder stayed under {MIN_VECTOR_SPEEDUP}x the stdlib "
            f"builder in {len(speedups)} attempts: "
            + ", ".join(f"{s:.2f}x" for s in speedups)
        )


def test_memo_hit_is_free(decode_trace):
    speedups = []
    for _ in range(3):
        build = _best_of(
            lambda: predecode.build_decoded(decode_trace, _BLOCK_MASK)
        )
        predecode.decoded_for(decode_trace, _BLOCK_MASK, BimodalBranchPredictor())
        hit = _best_of(
            lambda: predecode.decoded_for(
                decode_trace, _BLOCK_MASK, BimodalBranchPredictor()
            )
        )
        speedups.append(build / hit)
        if speedups[-1] >= MIN_MEMO_SPEEDUP:
            break
    else:
        raise AssertionError(
            f"decode memo hit stayed under {MIN_MEMO_SPEEDUP}x cheaper than "
            f"a rebuild in {len(speedups)} attempts: "
            + ", ".join(f"{s:.0f}x" for s in speedups)
        )
