#!/usr/bin/env python3
"""Regenerate the paper's full evaluation section in one go.

Runs every table and figure harness (Tables 1-2, Figures 4-9) over all
twelve synthetic SPEC applications and prints the regenerated rows.  With
the default 60k-instruction traces this takes several minutes; pass a larger
instruction count for tighter numbers.

Run with:  python examples/full_evaluation.py [instructions]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import figure4, figure5, figure6, figure7, figure8, figure9, table1, table2
from repro.experiments.context import ExperimentContext


def main(n_instructions: int = 60_000) -> None:
    context = ExperimentContext(n_instructions=n_instructions)
    start = time.time()

    sections = [
        ("Table 1", lambda: table1.run()),
        ("Table 2", lambda: table2.run(context)),
        ("Figure 4", lambda: figure4.run(context)),
        ("Figure 5", lambda: figure5.run(context)),
        ("Figure 6", lambda: figure6.run(context)),
        ("Figure 7", lambda: figure7.run(context)),
        ("Figure 8", lambda: figure8.run(context)),
        ("Figure 9", lambda: figure9.run(context)),
    ]
    for name, runner in sections:
        result = runner()
        elapsed = time.time() - start
        print(f"\n{'=' * 72}\n{name}   [{elapsed:6.0f}s elapsed]\n{'=' * 72}")
        print(result.format_table())

    print(f"\nDone in {time.time() - start:.0f}s "
          f"({n_instructions} instructions per application per configuration).")


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 60_000
    main(count)
