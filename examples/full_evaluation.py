#!/usr/bin/env python3
"""Regenerate the paper's full evaluation section in one go.

Runs every table and figure harness (Tables 1-2, Figures 4-9) over all
twelve synthetic SPEC applications and prints the regenerated rows.  The
CLI lays the whole evaluation out through the deferred-submission job
graph first — every profiling ladder and baseline in phase 1, every
dynamic and combined run (deferred on its profiles) in phase 2 — and the
worker pool executes each phase as a single batch, so ``jobs > 1`` scales
across the entire figure set; the on-disk job cache then makes any later
re-run free.

Run with:  python examples/full_evaluation.py [instructions] [jobs] [cli flags...]

(equivalent to ``python -m repro run-all --instructions N --jobs J``).  Any
further arguments are passed to the CLI verbatim — in particular
``--no-cache`` forces fresh simulation when the default ``.repro-cache``
holds results from an older version of the code.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

from repro.__main__ import main as cli_main

#: Smoke-mode hook: CI's docs job sets REPRO_BENCH_INSTRUCTIONS to a small
#: count so every example finishes in seconds instead of minutes.
DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "60000"))


def main(
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    jobs: int = 1,
    extra: Optional[List[str]] = None,
) -> int:
    argv = ["run-all", "--instructions", str(n_instructions), "--jobs", str(jobs)]
    return cli_main(argv + (extra if extra is not None else []))


if __name__ == "__main__":
    arguments = sys.argv[1:]
    positionals: List[int] = []
    while arguments and len(positionals) < 2 and not arguments[0].startswith("-"):
        positionals.append(int(arguments.pop(0)))
    count = positionals[0] if positionals else DEFAULT_INSTRUCTIONS
    workers = positionals[1] if len(positionals) > 1 else 1
    sys.exit(main(count, workers, arguments))
