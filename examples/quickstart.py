#!/usr/bin/env python3
"""Quickstart: resize one application's data cache and measure the payoff.

This walks through the library's core flow:

1. build the paper's base system (Table 2),
2. generate a synthetic reference stream for one SPEC-like application,
3. run the non-resizable baseline,
4. profile every size a selective-sets organization offers (static resizing's
   offline step), and
5. report the chosen size, the processor energy-delay reduction and the
   performance impact.

Run with:  python examples/quickstart.py [application] [instructions]
"""

from __future__ import annotations

import os
import sys

from repro import (
    SelectiveSets,
    Simulator,
    Sweep,
    SystemConfig,
    WorkloadGenerator,
    get_profile,
)
from repro.common.units import format_size
from repro.sim.sweep import DCACHE

#: Smoke-mode hook: CI's docs job sets REPRO_BENCH_INSTRUCTIONS to a small
#: count so every example finishes in seconds instead of minutes.
DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "60000"))


def main(application: str = "m88ksim", n_instructions: int = DEFAULT_INSTRUCTIONS) -> None:
    system = SystemConfig()  # Table 2: 4-wide OoO core, 32K 2-way L1s, 512K L2
    simulator = Simulator(system)

    print(f"Base system\n-----------\n{system.describe()}\n")

    profile = get_profile(application)
    print(f"Application: {application} — {profile.description}\n")

    trace = WorkloadGenerator(profile).generate(n_instructions)
    warmup = n_instructions // 10

    sweep = Sweep(simulator, warmup_instructions=warmup)
    baseline = sweep.baseline(trace)
    print(
        f"Baseline: {baseline.cycles:.0f} cycles, IPC {baseline.ipc:.2f}, "
        f"d-miss {baseline.l1d_miss_ratio:.3f}, "
        f"d-cache energy share {baseline.energy.fraction('l1d'):.1%}"
    )

    organization = SelectiveSets(system.l1d)
    print(f"\nSelective-sets sizes offered: "
          f"{', '.join(format_size(s) for s in organization.distinct_sizes)}")

    ladder = sweep.profile(trace, organization, target=DCACHE, baseline=baseline)
    print("\nStatic profiling sweep (d-cache):")
    print(f"{'size':>12} {'E*D reduction':>15} {'slowdown':>10} {'miss ratio':>12}")
    for point in ladder.points:
        result = ladder.results[point.config]
        print(
            f"{point.config.label:>12} "
            f"{result.energy_delay_reduction(baseline):>14.1f}% "
            f"{result.slowdown_vs(baseline):>10.3f} "
            f"{result.l1d_miss_ratio:>12.4f}"
        )

    print(
        f"\nChosen static size: {ladder.best_config.label} — "
        f"processor energy-delay reduced by {ladder.energy_delay_reduction():.1f}% "
        f"with {ladder.best_result.slowdown_vs(baseline) * 100:.1f}% slowdown."
    )


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    count = int(sys.argv[2]) if len(sys.argv) > 2 else DEFAULT_INSTRUCTIONS
    main(app, count)
