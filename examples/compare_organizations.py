#!/usr/bin/env python3
"""Compare selective-ways, selective-sets and the hybrid on one application.

This reproduces the per-application slice of Figures 4-6: for a chosen base
associativity it profiles all three resizing organizations on the d-cache
and the i-cache and reports which one wins and why (the size each settles
on tells the story — granularity vs associativity preservation vs minimum
size).

All six profiling ladders (2 caches x 3 organizations) plus the baseline
are *enqueued first* via the deferred-submission API and executed as one
batch, so with ``jobs > 1`` every candidate configuration of every
organization simulates concurrently instead of one ladder at a time.

Run with:  python examples/compare_organizations.py [application] [associativity] [jobs]
"""

from __future__ import annotations

import os
import sys

from repro import (
    CacheGeometry,
    HybridSetsAndWays,
    SelectiveSets,
    SelectiveWays,
    Simulator,
    Sweep,
    SweepRunner,
    SystemConfig,
    TraceSpec,
)
from repro.common.units import KIB
from repro.sim.sweep import DCACHE, ICACHE

#: Smoke-mode hook: CI's docs job sets REPRO_BENCH_INSTRUCTIONS to a small
#: count so every example finishes in seconds instead of minutes.
DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "60000"))


def main(
    application: str = "ijpeg",
    associativity: int = 4,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    jobs: int = 1,
) -> None:
    geometry = CacheGeometry(32 * KIB, associativity)
    system = SystemConfig().with_l1(l1d=geometry, l1i=geometry)
    simulator = Simulator(system)
    trace = TraceSpec(application, n_instructions)
    warmup = n_instructions // 10
    organizations = [SelectiveWays(geometry), SelectiveSets(geometry), HybridSetsAndWays(geometry)]

    with SweepRunner(jobs=jobs) as runner:
        sweep = Sweep(simulator, runner, warmup_instructions=warmup)
        # Phase 1: enqueue everything — nothing simulates yet.
        baseline = sweep.submit_baseline(trace)
        profiles = {
            (target, organization.name): sweep.submit_profile(
                trace, organization, target=target, baseline=baseline,
            )
            for target in (DCACHE, ICACHE)
            for organization in organizations
        }
        # Phase 2: one drain executes the whole job set as a single batch.
        sweep.drain()

        print(f"{application} on a 32K {associativity}-way resizable L1 pair")
        print(f"({runner.simulate_count} simulations, {runner.jobs} worker(s), "
              f"{runner.pool_batches} pool batch(es))\n")

        for target, title in ((DCACHE, "D-cache"), (ICACHE, "I-cache")):
            print(f"{title}:")
            print(
                f"{'organization':<16}{'offered sizes':>8}{'chosen':>14}"
                f"{'size red.':>12}{'E*D red.':>11}"
            )
            best_name, best_reduction = None, float("-inf")
            for organization in organizations:
                ladder = profiles[(target, organization.name)].result()
                reduction = ladder.energy_delay_reduction()
                if reduction > best_reduction:
                    best_name, best_reduction = organization.name, reduction
                print(
                    f"{organization.name:<16}{len(organization.distinct_sizes):>8}"
                    f"{ladder.best_config.label:>14}{ladder.size_reduction():>11.1f}%"
                    f"{reduction:>10.1f}%"
                )
            print(f"  -> best organization for the {title.lower()}: {best_name}\n")


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "ijpeg"
    assoc = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    main(app, assoc, jobs=workers)
