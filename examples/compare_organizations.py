#!/usr/bin/env python3
"""Compare selective-ways, selective-sets and the hybrid on one application.

This reproduces the per-application slice of Figures 4-6: for a chosen base
associativity it profiles all three resizing organizations on the d-cache
and the i-cache and reports which one wins and why (the size each settles
on tells the story — granularity vs associativity preservation vs minimum
size).

Run with:  python examples/compare_organizations.py [application] [associativity]
"""

from __future__ import annotations

import sys

from repro import (
    CacheGeometry,
    HybridSetsAndWays,
    SelectiveSets,
    SelectiveWays,
    Simulator,
    SystemConfig,
    WorkloadGenerator,
    get_profile,
    profile_static,
    run_baseline,
)
from repro.common.units import KIB
from repro.sim.sweep import DCACHE, ICACHE


def main(application: str = "ijpeg", associativity: int = 4, n_instructions: int = 60_000) -> None:
    geometry = CacheGeometry(32 * KIB, associativity)
    system = SystemConfig().with_l1(l1d=geometry, l1i=geometry)
    simulator = Simulator(system)
    trace = WorkloadGenerator(get_profile(application)).generate(n_instructions)
    warmup = n_instructions // 10
    baseline = run_baseline(simulator, trace, warmup_instructions=warmup)

    print(f"{application} on a 32K {associativity}-way resizable L1 pair\n")
    organizations = [SelectiveWays(geometry), SelectiveSets(geometry), HybridSetsAndWays(geometry)]

    for target, title in ((DCACHE, "D-cache"), (ICACHE, "I-cache")):
        print(f"{title}:")
        print(
            f"{'organization':<16}{'offered sizes':>8}{'chosen':>14}"
            f"{'size red.':>12}{'E*D red.':>11}"
        )
        best_name, best_reduction = None, float("-inf")
        for organization in organizations:
            sweep = profile_static(
                simulator, trace, organization, target=target,
                baseline=baseline, warmup_instructions=warmup,
            )
            reduction = sweep.energy_delay_reduction()
            if reduction > best_reduction:
                best_name, best_reduction = organization.name, reduction
            print(
                f"{organization.name:<16}{len(organization.distinct_sizes):>8}"
                f"{sweep.best_config.label:>14}{sweep.size_reduction():>11.1f}%"
                f"{reduction:>10.1f}%"
            )
        print(f"  -> best organization for the {title.lower()}: {best_name}\n")


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "ijpeg"
    assoc = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    main(app, assoc)
