#!/usr/bin/env python3
"""Static vs dynamic resizing on the two processor configurations.

Reproduces the per-application slice of Figures 7/8: for one application it
runs the non-resizable baseline, the best static size, and the miss-ratio
based dynamic controller — on both the in-order/blocking and the
out-of-order/non-blocking cores — and prints how much of the resizing
opportunity each strategy captures.

Run with:  python examples/static_vs_dynamic.py [application] [dcache|icache]
"""

from __future__ import annotations

import sys

from repro import (
    CoreConfig,
    CoreKind,
    SelectiveSets,
    Simulator,
    SystemConfig,
    WorkloadGenerator,
    get_profile,
    profile_static,
    run_baseline,
    run_dynamic,
)
from repro.sim.sweep import DCACHE


def main(application: str = "gcc", target: str = DCACHE, n_instructions: int = 60_000) -> None:
    trace = WorkloadGenerator(get_profile(application)).generate(n_instructions)
    warmup = n_instructions // 10

    print(f"{application}: static vs dynamic resizing of the {target}\n")
    for kind in (CoreKind.IN_ORDER_BLOCKING, CoreKind.OUT_OF_ORDER_NONBLOCKING):
        system = SystemConfig(core=CoreConfig(kind=kind))
        simulator = Simulator(system)
        organization = SelectiveSets(system.l1d if target == DCACHE else system.l1i)

        baseline = run_baseline(simulator, trace, warmup_instructions=warmup)
        sweep = profile_static(
            simulator, trace, organization, target=target,
            baseline=baseline, warmup_instructions=warmup,
        )
        parameters = sweep.dynamic_parameters(sense_interval_accesses=1024)
        dynamic = run_dynamic(
            simulator, trace, organization, parameters, target=target,
            warmup_instructions=warmup, initial_config=sweep.best_config,
        )

        if target == DCACHE:
            dynamic_size = dynamic.l1d_size_reduction()
        else:
            dynamic_size = dynamic.l1i_size_reduction()

        print(f"{kind.value}")
        print(f"  baseline            : {baseline.cycles:10.0f} cycles, IPC {baseline.ipc:.2f}")
        print(
            f"  static  ({sweep.best_config.label:>10}): "
            f"E*D reduction {sweep.energy_delay_reduction():6.1f}%, "
            f"size reduction {sweep.size_reduction():5.1f}%, "
            f"slowdown {sweep.best_result.slowdown_vs(baseline) * 100:4.1f}%"
        )
        print(
            f"  dynamic (miss-bound {parameters.miss_bound:5.1f}): "
            f"E*D reduction {dynamic.energy_delay_reduction(baseline):6.1f}%, "
            f"size reduction {dynamic_size:5.1f}%, "
            f"resizes {dynamic.l1d_resizes + dynamic.l1i_resizes}"
        )
        print()


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    which = sys.argv[2] if len(sys.argv) > 2 else DCACHE
    main(app, which)
