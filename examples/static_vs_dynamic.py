#!/usr/bin/env python3
"""Static vs dynamic resizing on the two processor configurations.

Reproduces the per-application slice of Figures 7/8: for one application it
runs the non-resizable baseline, the best static size, and the miss-ratio
based dynamic controller — on both the in-order/blocking and the
out-of-order/non-blocking cores — and prints how much of the resizing
opportunity each strategy captures.

The whole job graph is laid out up front through the deferred-submission
API: both cores' baselines and profiling ladders are enqueued as concrete
jobs, and each dynamic run — whose miss-bound derives from its profile —
is enqueued as a *deferred* job on top.  A single drain then executes
phase 1 (ladders) and phase 2 (dynamic runs) as one pool batch each.

Run with:  python examples/static_vs_dynamic.py [application] [dcache|icache] [jobs]
"""

from __future__ import annotations

import os
import sys

from repro import (
    CoreConfig,
    CoreKind,
    SelectiveSets,
    Simulator,
    Sweep,
    SweepRunner,
    SystemConfig,
    TraceSpec,
)
from repro.sim.sweep import DCACHE

#: Smoke-mode hook: CI's docs job sets REPRO_BENCH_INSTRUCTIONS to a small
#: count so every example finishes in seconds instead of minutes.
DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "60000"))


def main(
    application: str = "gcc",
    target: str = DCACHE,
    n_instructions: int = DEFAULT_INSTRUCTIONS,
    jobs: int = 1,
) -> None:
    trace = TraceSpec(application, n_instructions)
    warmup = n_instructions // 10
    kinds = (CoreKind.IN_ORDER_BLOCKING, CoreKind.OUT_OF_ORDER_NONBLOCKING)

    with SweepRunner(jobs=jobs) as runner:
        # Phase 1+2 enqueue: baselines and ladders are concrete jobs, each
        # dynamic run is deferred on its profile.  Nothing simulates yet.
        plans = {}
        for kind in kinds:
            system = SystemConfig(core=CoreConfig(kind=kind))
            organization = SelectiveSets(system.l1d if target == DCACHE else system.l1i)
            sweep = Sweep(Simulator(system), runner, warmup_instructions=warmup)
            baseline = sweep.submit_baseline(trace)
            profile = sweep.submit_profile(trace, organization, target=target, baseline=baseline)
            dynamic = sweep.submit_dynamic(
                trace, organization, profile, target=target, sense_interval_accesses=1024,
            )
            plans[kind] = (baseline, profile, dynamic)
        runner.drain()  # ladders in pool batch 1, dynamic runs in batch 2

        print(f"{application}: static vs dynamic resizing of the {target} "
              f"({runner.simulate_count} simulations, {runner.pool_batches} pool batch(es))\n")
        for kind in kinds:
            baseline_future, profile_future, dynamic_future = plans[kind]
            baseline = baseline_future.result()
            ladder = profile_future.result()
            dynamic = dynamic_future.result()
            # Re-derive the profiled parameters for display; the deferred
            # dynamic job was built from these exact values.
            parameters = ladder.dynamic_parameters(sense_interval_accesses=1024)

            if target == DCACHE:
                dynamic_size = dynamic.l1d_size_reduction()
            else:
                dynamic_size = dynamic.l1i_size_reduction()

            print(f"{kind.value}")
            print(
                f"  baseline            : {baseline.cycles:10.0f} cycles, "
                f"IPC {baseline.ipc:.2f}"
            )
            print(
                f"  static  ({ladder.best_config.label:>10}): "
                f"E*D reduction {ladder.energy_delay_reduction():6.1f}%, "
                f"size reduction {ladder.size_reduction():5.1f}%, "
                f"slowdown {ladder.best_result.slowdown_vs(baseline) * 100:4.1f}%"
            )
            print(
                f"  dynamic (miss-bound {parameters.miss_bound:5.1f}): "
                f"E*D reduction {dynamic.energy_delay_reduction(baseline):6.1f}%, "
                f"size reduction {dynamic_size:5.1f}%, "
                f"resizes {dynamic.l1d_resizes + dynamic.l1i_resizes}"
            )
            print()


if __name__ == "__main__":
    app = sys.argv[1] if len(sys.argv) > 1 else "gcc"
    which = sys.argv[2] if len(sys.argv) > 2 else DCACHE
    workers = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    main(app, which, jobs=workers)
