#!/usr/bin/env python3
"""Ingest a real trace file and replay it, exhaustively and sampled.

This walks through the trace-ingestion flow (docs/TRACE_FORMAT.md):

1. read an external text trace (``.rtxt``) straight into columnar buffers,
2. round-trip it through the binary variant (``.rtrc2``) to show the two
   formats carry identical content,
3. replay it exhaustively through the simulator, and
4. replay it again with interval sampling (docs/SAMPLING.md), comparing the
   sampled miss ratio — and its error bar — against the exhaustive truth.

Run with:  python examples/ingest_and_replay.py [trace-file] [sample-every]

The committed fixture ``tests/data/sample.rtxt`` is used when no trace file
is given, so the example runs out of the box.
"""

from __future__ import annotations

import os
import sys
import tempfile

from repro import Simulator, SystemConfig
from repro.workloads.ingest import (
    ingest_trace_file,
    read_binary_trace,
    write_binary_trace,
)

DEFAULT_TRACE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "tests", "data", "sample.rtxt",
)


def main(trace_path: str = DEFAULT_TRACE, sample_every: int = 2) -> None:
    trace = ingest_trace_file(trace_path)
    print(
        f"Ingested {trace_path}\n  name: {trace.name}   records: {len(trace)}   "
        f"mlp: {trace.memory_level_parallelism}"
    )

    # The binary variant is a faithful container for the same records: write
    # it out, read it back, and the columns are identical byte for byte.
    with tempfile.TemporaryDirectory() as tmp:
        binary_path = os.path.join(tmp, trace.name + ".rtrc2")
        write_binary_trace(trace, binary_path)
        rebuilt = read_binary_trace(binary_path)
        assert rebuilt.columns() == trace.columns(), "binary round trip diverged"
        size = os.path.getsize(binary_path)
        print(f"  binary round trip OK ({size} bytes, {size / len(trace):.1f} B/record)")

    simulator = Simulator(SystemConfig())  # Table 2 base system
    warmup = len(trace) // 10

    full = simulator.run(trace, warmup_instructions=warmup)
    print(
        f"\nExhaustive replay: {full.cycles:.0f} cycles, IPC {full.ipc:.2f}, "
        f"d-miss {full.l1d_miss_ratio:.4f}, i-miss {full.l1i_miss_ratio:.4f}"
    )

    sampled = simulator.run(
        trace,
        warmup_instructions=warmup,
        sample_every=sample_every,
        sample_warmup=500,
    )
    error = abs(sampled.l1d_miss_ratio - full.l1d_miss_ratio)
    print(
        f"Sampled replay (1 in {sample_every} intervals, 500-instruction "
        f"warmup): simulated {sampled.sampled_intervals}/{sampled.total_intervals} "
        f"intervals\n"
        f"  d-miss {sampled.l1d_miss_ratio:.4f} "
        f"± {sampled.l1d_miss_ratio_error_bar:.4f} (95% bar) — "
        f"true value off by {error:.4f}"
    )


if __name__ == "__main__":
    path = sys.argv[1] if len(sys.argv) > 1 else DEFAULT_TRACE
    every = int(sys.argv[2]) if len(sys.argv) > 2 else 2
    main(path, every)
