#!/usr/bin/env python3
"""End-to-end smoke test for the sweep service (``python -m repro serve``).

Boots the server as a real subprocess and drives the robustness story the
service exists for (docs/SERVICE.md) through plain HTTP:

1. **dedup** — several concurrent clients submit the identical job; every
   one must get the same ``202`` body, the settled responses must be
   byte-identical, and the ``service_deduped`` counter must prove exactly
   one admission happened.
2. **drain** — a second job is submitted and the server is SIGTERMed
   immediately, so the signal lands with work queued or in flight; the
   process must exit 0 with the handle's manifest persisted on disk.
3. **restart** — a fresh server on the same ``--cache-dir`` must serve the
   first handle from its manifest byte-identically without simulating,
   settle the drained handle, and collapse a resubmission onto the warm
   job cache (zero new simulations).

CI runs this twice: clean, and as a chaos leg with ``REPRO_FAULT_PLAN``
worker crashes and ``--jobs 2`` (fault injection needs the pool path).
Faults may cost time, never bytes: the ``--result-out`` files of the two
legs must compare equal.

Exit status: 0 on success, 1 with a ``smoke: FAIL`` message otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BANNER = re.compile(r"serving on ([\d.]+):(\d+)")


class SmokeFailure(Exception):
    """An assertion about the service's behaviour did not hold."""


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


class Server:
    """One ``python -m repro serve`` subprocess plus an HTTP client for it."""

    def __init__(self, cache_dir: str, jobs: int, instructions: int) -> None:
        env = dict(os.environ)
        src = os.path.join(REPO_ROOT, "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else os.pathsep.join([src, existing])
        self.process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--cache-dir", cache_dir,
                "--jobs", str(jobs),
                "--instructions", str(instructions),
                "--drain-grace", "60",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        assert self.process.stdout is not None
        banner = self.process.stdout.readline()
        match = BANNER.search(banner)
        check(match is not None, f"no serving banner, got {banner!r}")
        assert match is not None
        self.base = f"http://{match.group(1)}:{match.group(2)}"

    # ------------------------------------------------------------- client
    def request(
        self, method: str, path: str, body: dict | None = None, timeout: float = 30.0
    ) -> tuple[int, bytes]:
        data = None if body is None else json.dumps(body).encode()
        req = urllib.request.Request(self.base + path, data=data, method=method)
        try:
            with urllib.request.urlopen(req, timeout=timeout) as response:
                return response.status, response.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def post(self, path: str, body: dict) -> tuple[int, bytes]:
        return self.request("POST", path, body)

    def get(self, path: str) -> tuple[int, bytes]:
        return self.request("GET", path)

    def wait_done(self, handle: str, timeout: float = 300.0) -> bytes:
        """Long-poll a handle until it settles ``done``; returns the body."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body = self.request("GET", f"/jobs/{handle}?wait=5", timeout=35)
            check(status == 200, f"poll of {handle} answered {status}: {body!r}")
            state = json.loads(body)["state"]
            if state == "done":
                return body
            check(
                state != "failed",
                f"{handle} failed: {json.loads(body).get('error')}",
            )
        raise SmokeFailure(f"{handle} did not settle within {timeout:.0f}s")

    def metrics(self) -> dict[str, float]:
        status, body = self.get("/metrics")
        check(status == 200, f"/metrics answered {status}")
        values: dict[str, float] = {}
        for line in body.decode().splitlines():
            name, _, value = line.partition(" ")
            if value:
                values[name] = float(value)
        return values

    # ---------------------------------------------------------- lifecycle
    def sigterm(self, timeout: float = 120.0) -> tuple[int, str]:
        """SIGTERM the server; returns (exit code, remaining stdout)."""
        self.process.send_signal(signal.SIGTERM)
        stdout, _ = self.process.communicate(timeout=timeout)
        return self.process.returncode, stdout

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
            self.process.communicate(timeout=10)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache-dir", required=True,
        help="cache directory for both server boots (fresh per leg)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="engine worker processes (use >= 2 for the chaos leg: "
             "REPRO_FAULT_PLAN is inert on the inline path)",
    )
    parser.add_argument(
        "--instructions", type=int, default=2_000,
        help="trace length of the smoke jobs (default: 2000)",
    )
    parser.add_argument(
        "--clients", type=int, default=6,
        help="concurrent duplicate submitters in the dedup stage (default: 6)",
    )
    parser.add_argument(
        "--result-out", default=None,
        help="write the settled first-handle response body here, so CI can "
             "cmp the clean and chaos legs byte for byte",
    )
    args = parser.parse_args(argv)

    job_a = {"trace": {"application": "gcc", "n_instructions": args.instructions}}
    job_b = {"trace": {"application": "m88ksim", "n_instructions": args.instructions}}
    plan = os.environ.get("REPRO_FAULT_PLAN")
    print(f"smoke: fault plan {plan!r}" if plan else "smoke: clean leg", flush=True)

    server = Server(args.cache_dir, args.jobs, args.instructions)
    try:
        # ---- stage 1: concurrent dedup -------------------------------
        print(f"smoke: dedup — {args.clients} concurrent identical POSTs", flush=True)
        with ThreadPoolExecutor(max_workers=args.clients) as pool:
            responses = list(
                pool.map(lambda _: server.post("/jobs", job_a), range(args.clients))
            )
        statuses = {status for status, _ in responses}
        check(statuses == {202}, f"expected all 202, got {sorted(statuses)}")
        bodies = {body for _, body in responses}
        check(len(bodies) == 1, f"202 bodies diverged: {bodies}")
        handle_a = json.loads(bodies.pop())["handle"]
        settled = server.wait_done(handle_a)
        metrics = server.metrics()
        deduped = metrics.get("service_deduped", 0)
        check(
            deduped == args.clients - 1,
            f"expected {args.clients - 1} deduped submissions, got {deduped}",
        )
        _, again = server.request("GET", f"/jobs/{handle_a}")
        check(again == settled, "repeated polls of a done handle diverged")
        if args.result_out:
            with open(args.result_out, "wb") as sink:
                sink.write(settled)
        print(f"smoke: dedup ok — one admission for {handle_a[:20]}…", flush=True)

        # ---- stage 2: SIGTERM with work outstanding ------------------
        status, body = server.post("/jobs", job_b)
        check(status == 202, f"second submission answered {status}: {body!r}")
        handle_b = json.loads(body)["handle"]
        print("smoke: drain — SIGTERM with a request queued or in flight", flush=True)
        code, tail = server.sigterm()
        check(code == 0, f"drain exited {code}, not 0:\n{tail}")
        check("exit 0" in tail, f"no drain epilogue in output:\n{tail}")
        manifest = os.path.join(
            args.cache_dir, "service", "handles", f"{handle_b}.json"
        )
        check(os.path.isfile(manifest), f"no persisted manifest at {manifest}")
        print("smoke: drain ok — exit 0, manifest persisted", flush=True)
    except BaseException:
        server.kill()
        raise

    # ---- stage 3: restart serves from disk ---------------------------
    print("smoke: restart — same cache dir, fresh process", flush=True)
    server = Server(args.cache_dir, args.jobs, args.instructions)
    try:
        status, from_disk = server.get(f"/jobs/{handle_a}")
        check(status == 200, f"restarted poll answered {status}")
        check(
            from_disk == settled,
            "restart changed a completed handle's bytes:\n"
            f"  before {settled!r}\n  after  {from_disk!r}",
        )
        server.wait_done(handle_b)  # resumed: finishes from cache or residue
        baseline = server.metrics()["runner_simulated"]
        status, body = server.post("/jobs", job_a)
        check(status == 202, f"resubmission answered {status}: {body!r}")
        check(
            json.loads(body)["handle"] == handle_a,
            "resubmission minted a new handle for identical work",
        )
        server.wait_done(handle_a)
        metrics = server.metrics()
        check(
            metrics["runner_simulated"] == baseline,
            "resubmitting completed work re-simulated "
            f"({metrics['runner_simulated']} > {baseline})",
        )
        check(
            metrics.get("service_deduped", 0) + metrics.get("service_cache_hits", 0)
            >= 1,
            "resubmission neither deduped nor cache-resolved",
        )
        code, tail = server.sigterm()
        check(code == 0, f"final drain exited {code}, not 0:\n{tail}")
        print("smoke: restart ok — byte-identical from disk, 0 re-simulations", flush=True)
    except BaseException:
        server.kill()
        raise

    print("smoke: ok", flush=True)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except SmokeFailure as failure:
        print(f"smoke: FAIL — {failure}", file=sys.stderr, flush=True)
        sys.exit(1)
