#!/usr/bin/env python3
"""Schema-lint experiment spec files.

With no arguments, validates every committed spec under
``src/repro/experiments/specs/`` (CI runs this mode); with paths,
validates those files instead.  For each spec this checks that it

* loads and passes full schema validation (`repro.experiments.load_spec`),
* declares the name its filename promises (committed specs only),
* fingerprints identically across two loads (canonical-form stability),
* plans cleanly — its analysis kind is registered and its design space
  enumerates without touching the simulator.

Exit status: 0 when every spec is valid, 1 otherwise.
"""

from __future__ import annotations

import argparse
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.common.errors import ReproError  # noqa: E402
from repro.experiments import (  # noqa: E402
    DoEOrchestrator,
    builtin_spec_names,
    builtin_spec_path,
    load_spec,
)


def validate(path: str, expect_name: str | None = None) -> str | None:
    """Validate one spec file; returns an error message or None."""
    try:
        spec = load_spec(path)
        if expect_name is not None and spec.name != expect_name:
            return (f"declares name {spec.name!r} but its filename promises "
                    f"{expect_name!r}")
        if spec.fingerprint() != load_spec(path).fingerprint():
            return "fingerprint is not stable across loads"
        plan = DoEOrchestrator().plan(spec)
    except ReproError as exc:
        return str(exc)
    print(f"ok: {path}  [{spec.fingerprint()[:12]}]  {plan.describe()}")
    return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "specs", nargs="*", metavar="SPEC",
        help="spec files to validate (default: every committed spec)",
    )
    args = parser.parse_args(argv)

    if args.specs:
        targets = [(path, None) for path in args.specs]
    else:
        targets = [
            (builtin_spec_path(name), name) for name in builtin_spec_names()
        ]
        if not targets:
            print("error: no committed specs found", file=sys.stderr)
            return 1

    failures = 0
    for path, expect_name in targets:
        error = validate(path, expect_name)
        if error is not None:
            failures += 1
            print(f"FAIL: {path}: {error}", file=sys.stderr)
    if failures:
        print(f"{failures} of {len(targets)} spec(s) invalid", file=sys.stderr)
        return 1
    print(f"{len(targets)} spec(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
