#!/usr/bin/env python3
"""Keep README.md's embedded ``python -m repro list`` block in sync.

The README quotes the CLI inventory *verbatim*; the single source of that
text is :func:`repro.__main__.list_output` — the exact string the ``list``
subcommand prints.  This tool rewrites the README's fenced block from that
source so the two can never drift:

    python tools/sync_readme_cli.py           # rewrite README.md in place
    python tools/sync_readme_cli.py --check   # exit 1 if the README drifted

CI runs ``--check``; a failure means regenerate with the first form and
commit the result.
"""

from __future__ import annotations

import argparse
import difflib
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The README line introducing the verbatim block; the next fenced code
#: block after it is the one this tool owns.
SENTINEL = "is the canonical inventory"


def rendered_block() -> str:
    """The fenced block's desired contents (the live ``list`` output)."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.__main__ import list_output

    return list_output() + "\n"


def sync_readme(readme_path: str, check: bool) -> int:
    with open(readme_path, "r", encoding="utf-8") as handle:
        text = handle.read()
    lines = text.splitlines(keepends=True)

    sentinel_at = next(
        (i for i, line in enumerate(lines) if SENTINEL in line), None
    )
    if sentinel_at is None:
        print(f"error: sentinel {SENTINEL!r} not found in {readme_path}",
              file=sys.stderr)
        return 2
    fences = [
        i for i, line in enumerate(lines)
        if i > sentinel_at and line.startswith("```")
    ]
    if len(fences) < 2:
        print(f"error: no fenced block after the sentinel in {readme_path}",
              file=sys.stderr)
        return 2
    open_at, close_at = fences[0], fences[1]

    current = "".join(lines[open_at + 1:close_at])
    desired = rendered_block()
    if current == desired:
        print(f"{readme_path}: CLI inventory block is in sync")
        return 0

    if check:
        print(f"{readme_path}: CLI inventory block has drifted from "
              f"`python -m repro list`; regenerate with "
              f"`python tools/sync_readme_cli.py`", file=sys.stderr)
        sys.stderr.writelines(difflib.unified_diff(
            current.splitlines(keepends=True),
            desired.splitlines(keepends=True),
            fromfile=f"{readme_path} (embedded)",
            tofile="python -m repro list (live)",
        ))
        return 1

    updated = lines[:open_at + 1] + [desired] + lines[close_at:]
    with open(readme_path, "w", encoding="utf-8") as handle:
        handle.write("".join(updated))
    print(f"{readme_path}: CLI inventory block regenerated")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", action="store_true",
        help="verify only; exit 1 (with a diff) if the README drifted",
    )
    parser.add_argument(
        "--readme", default=os.path.join(REPO_ROOT, "README.md"),
        help="README file to sync (default: the repo's README.md)",
    )
    args = parser.parse_args(argv)
    return sync_readme(args.readme, check=args.check)


if __name__ == "__main__":
    sys.exit(main())
