#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Walks every tracked ``*.md`` file under the repo root, extracts inline
markdown links (``[text](target)``), and verifies that each relative
target exists on disk — including a ``#fragment`` check against the
target file's headings when one is given.  External links (``http://``,
``https://``, ``mailto:``) are out of scope: CI must not depend on
network reachability.

Stdlib only.  Exit status is the number of broken links (0 = clean).

Usage::

    python tools/check_links.py [ROOT]
"""

import os
import re
import sys

# Inline links only; reference-style links are not used in this repo.
# The target group stops at the first unescaped ')', which is fine for
# our paths (no parentheses in file names).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*$", re.MULTILINE)

_SKIP_DIRS = {".git", ".repro-cache", "__pycache__", ".pytest_cache", ".ruff_cache"}
_EXTERNAL = ("http://", "https://", "mailto:")


def _slugify(heading):
    """GitHub's anchor algorithm, near enough: lowercase, drop punctuation,
    spaces to hyphens.  Backticks and bold markers vanish."""
    text = re.sub(r"[`*_]", "", heading.lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.strip().replace(" ", "-")


def _anchors(path):
    with open(path, "r", encoding="utf-8") as handle:
        return {_slugify(match) for match in _HEADING.findall(handle.read())}


def _markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
        for filename in sorted(filenames):
            if filename.endswith(".md"):
                yield os.path.join(dirpath, filename)


def check(root):
    broken = []
    for md_path in _markdown_files(root):
        with open(md_path, "r", encoding="utf-8") as handle:
            content = handle.read()
        for target in _LINK.findall(content):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                # Same-file fragments are cheap to verify while we're here.
                if target.startswith("#") and _slugify(target[1:]) not in _anchors(md_path):
                    broken.append((md_path, target, "no such heading"))
                continue
            path_part, _, fragment = target.partition("#")
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), path_part)
            )
            if not os.path.exists(resolved):
                broken.append((md_path, target, "no such file"))
                continue
            if fragment and resolved.endswith(".md"):
                if _slugify(fragment) not in _anchors(resolved):
                    broken.append((md_path, target, "no such heading"))
    return broken


def main(argv):
    root = argv[1] if len(argv) > 1 else os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))
    )
    broken = check(root)
    for md_path, target, why in broken:
        print(f"{os.path.relpath(md_path, root)}: broken link {target!r} ({why})")
    if not broken:
        print("all markdown links resolve")
    return len(broken)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
