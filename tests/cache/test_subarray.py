"""Tests for subarray enable/disable book-keeping."""

import pytest

from repro.cache.subarray import SubarrayMap
from repro.common.config import CacheGeometry
from repro.common.errors import ConfigurationError
from repro.common.units import KIB


class TestFullState:
    def test_base_l1_has_32_subarrays(self):
        state = SubarrayMap(CacheGeometry(32 * KIB, 2)).full_state()
        assert state.total_subarrays == 32
        assert state.enabled_subarrays == 32
        assert state.enabled_bytes == 32 * KIB
        assert state.enabled_fraction == pytest.approx(1.0)

    def test_full_state_for_high_associativity(self):
        state = SubarrayMap(CacheGeometry(32 * KIB, 16)).full_state()
        assert state.enabled_subarrays == 32


class TestPartialStates:
    def test_disabling_ways_scales_subarrays_linearly(self):
        geometry = CacheGeometry(32 * KIB, 4)
        subarrays = SubarrayMap(geometry)
        state = subarrays.subarrays_for(enabled_ways=2, enabled_sets=geometry.num_sets)
        assert state.enabled_subarrays == 16
        assert state.enabled_bytes == 16 * KIB

    def test_disabling_sets_scales_subarrays(self):
        geometry = CacheGeometry(32 * KIB, 2)
        subarrays = SubarrayMap(geometry)
        state = subarrays.subarrays_for(enabled_ways=2, enabled_sets=128)
        assert state.enabled_bytes == 8 * KIB
        assert state.enabled_subarrays == 8

    def test_minimum_one_subarray_per_way(self):
        geometry = CacheGeometry(32 * KIB, 4)
        subarrays = SubarrayMap(geometry)
        # 16 sets of 32-byte blocks is half a subarray per way; the map still
        # has to keep one whole subarray per way powered.
        state = subarrays.subarrays_for(enabled_ways=4, enabled_sets=32)
        assert state.enabled_subarrays == 4

    def test_hybrid_three_way_configuration(self):
        geometry = CacheGeometry(32 * KIB, 4)
        state = SubarrayMap(geometry).subarrays_for(enabled_ways=3, enabled_sets=256)
        assert state.enabled_bytes == 24 * KIB
        assert state.enabled_subarrays == 24

    def test_enabled_fraction(self):
        geometry = CacheGeometry(32 * KIB, 2)
        state = SubarrayMap(geometry).subarrays_for(enabled_ways=2, enabled_sets=256)
        assert state.enabled_fraction == pytest.approx(0.5)


class TestValidation:
    def test_rejects_zero_ways(self):
        subarrays = SubarrayMap(CacheGeometry(32 * KIB, 2))
        with pytest.raises(ConfigurationError):
            subarrays.subarrays_for(enabled_ways=0, enabled_sets=512)

    def test_rejects_too_many_ways(self):
        subarrays = SubarrayMap(CacheGeometry(32 * KIB, 2))
        with pytest.raises(ConfigurationError):
            subarrays.subarrays_for(enabled_ways=3, enabled_sets=512)

    def test_rejects_too_many_sets(self):
        subarrays = SubarrayMap(CacheGeometry(32 * KIB, 2))
        with pytest.raises(ConfigurationError):
            subarrays.subarrays_for(enabled_ways=2, enabled_sets=1024)
