"""Tests for the conventional write-back, write-allocate cache."""

import pytest

from repro.cache.cache import Cache
from repro.cache.replacement import ReplacementPolicy
from repro.common.config import CacheGeometry
from repro.common.units import KIB


@pytest.fixture
def small_cache(small_geometry) -> Cache:
    return Cache(small_geometry, name="test-l1")


class TestBasicBehaviour:
    def test_first_access_misses_second_hits(self, small_cache):
        assert not small_cache.access(0x1000).hit
        assert small_cache.access(0x1000).hit

    def test_accesses_within_a_block_share_one_fill(self, small_cache):
        small_cache.access(0x1000)
        assert small_cache.access(0x101C).hit
        assert small_cache.stats.misses == 1

    def test_write_allocate_on_store_miss(self, small_cache):
        result = small_cache.access(0x2000, is_write=True)
        assert not result.hit
        assert result.filled
        assert small_cache.access(0x2000).hit

    def test_miss_ratio_statistic(self, small_cache):
        small_cache.access(0x0)
        small_cache.access(0x0)
        small_cache.access(0x4000)
        assert small_cache.stats.accesses == 3
        assert small_cache.stats.miss_ratio == pytest.approx(2 / 3)

    def test_probe_does_not_affect_stats(self, small_cache):
        small_cache.access(0x0)
        assert small_cache.probe(0x0)
        assert not small_cache.probe(0x8000)
        assert small_cache.stats.accesses == 1


class TestWritebacks:
    def test_dirty_victim_reports_writeback_address(self, small_geometry):
        cache = Cache(small_geometry)
        sets = small_geometry.num_sets
        stride = sets * small_geometry.block_bytes
        # Fill one set with dirty blocks, then overflow it.
        cache.access(0x0, is_write=True)
        cache.access(stride, is_write=True)
        result = cache.access(2 * stride, is_write=False)
        assert not result.hit
        assert result.writeback_address == 0x0
        assert cache.stats.writebacks == 1

    def test_clean_victim_needs_no_writeback(self, small_geometry):
        cache = Cache(small_geometry)
        stride = small_geometry.num_sets * small_geometry.block_bytes
        cache.access(0x0)
        cache.access(stride)
        result = cache.access(2 * stride)
        assert result.writeback_address is None

    def test_invalidate_dirty_block_returns_address(self, small_cache):
        small_cache.access(0x3000, is_write=True)
        assert small_cache.invalidate(0x3000) == 0x3000
        assert small_cache.invalidate(0x3000) is None

    def test_invalidate_clean_block_returns_none(self, small_cache):
        small_cache.access(0x3000)
        assert small_cache.invalidate(0x3000) is None
        assert not small_cache.probe(0x3000)

    def test_flush_all_returns_only_dirty_addresses(self, small_cache):
        # Three blocks in three different sets: two dirty, one clean.
        small_cache.access(0x0, is_write=True)
        small_cache.access(0x40)
        small_cache.access(0x80, is_write=True)
        dirty = sorted(small_cache.flush_all())
        assert dirty == [0x0, 0x80]
        assert small_cache.resident_blocks() == 0


class TestCapacityAndConflicts:
    def test_working_set_larger_than_capacity_misses(self):
        geometry = CacheGeometry(2 * KIB, 2, block_bytes=32, subarray_bytes=KIB)
        cache = Cache(geometry)
        # Cycle a 4 KiB working set through a 2 KiB cache twice: the second
        # pass cannot hit because LRU evicted every block before reuse.
        addresses = [index * 32 for index in range(128)]
        for _ in range(2):
            for address in addresses:
                cache.access(address)
        assert cache.stats.hits == 0

    def test_working_set_that_fits_hits_after_warmup(self, small_geometry):
        cache = Cache(small_geometry)
        addresses = [index * 32 for index in range(64)]  # 2 KiB in a 4 KiB cache
        for address in addresses:
            cache.access(address)
        for address in addresses:
            assert cache.access(address).hit

    def test_conflict_group_thrashes_direct_mapped_but_not_two_way(self):
        direct = Cache(CacheGeometry(4 * KIB, 1, subarray_bytes=KIB))
        two_way = Cache(CacheGeometry(4 * KIB, 2, subarray_bytes=KIB))
        conflicting = [0x0, 32 * KIB]  # same index in both caches
        for _ in range(20):
            for address in conflicting:
                direct.access(address)
                two_way.access(address)
        assert two_way.stats.misses == 2  # compulsory only
        assert direct.stats.misses == 40 + 2 - 2  # thrashing

    def test_higher_associativity_never_increases_conflict_misses(self):
        addresses = [i * 32 * KIB for i in range(3)]
        misses = {}
        for associativity in (1, 2, 4):
            cache = Cache(CacheGeometry(4 * KIB, associativity, subarray_bytes=KIB))
            for _ in range(10):
                for address in addresses:
                    cache.access(address)
            misses[associativity] = cache.stats.misses
        assert misses[4] <= misses[2] <= misses[1]

    def test_replacement_policy_is_configurable(self, small_geometry):
        cache = Cache(small_geometry, replacement=ReplacementPolicy.FIFO)
        assert cache.replacement is ReplacementPolicy.FIFO

    def test_reset_stats_keeps_contents(self, small_cache):
        small_cache.access(0x0)
        small_cache.reset_stats()
        assert small_cache.stats.accesses == 0
        assert small_cache.access(0x0).hit
