"""Tests for the write-back buffer."""

import pytest

from repro.cache.writeback_buffer import WritebackBuffer
from repro.common.config import CoreConfig
from repro.common.errors import ConfigurationError


def test_push_and_drain_fifo_order():
    buffer = WritebackBuffer(4)
    for address in (0x100, 0x200, 0x300):
        assert buffer.push(address)
    assert buffer.drain_one() == 0x100
    assert buffer.drain_one() == 0x200
    assert buffer.occupancy == 1


def test_overflow_drains_oldest_and_counts_stall():
    buffer = WritebackBuffer(2)
    buffer.push(0x100)
    buffer.push(0x200)
    accepted = buffer.push(0x300)
    assert not accepted
    assert buffer.overflows == 1
    assert buffer.occupancy == 2
    assert buffer.drain_one() == 0x200


def test_drain_all_empties_buffer():
    buffer = WritebackBuffer(4)
    buffer.push(0x100)
    buffer.push(0x200)
    assert buffer.drain_all() == [0x100, 0x200]
    assert buffer.occupancy == 0
    assert buffer.drained == 2


def test_drain_one_on_empty_returns_none():
    assert WritebackBuffer(2).drain_one() is None


def test_reset_clears_state_and_counters():
    buffer = WritebackBuffer(2)
    buffer.push(0x100)
    buffer.reset()
    assert buffer.occupancy == 0
    assert buffer.enqueued == 0


def test_from_core_uses_configured_entries():
    buffer = WritebackBuffer.from_core(CoreConfig(writeback_buffer_entries=8))
    assert buffer.num_entries == 8


def test_zero_entries_rejected():
    with pytest.raises(ConfigurationError):
        WritebackBuffer(0)
