"""Tests for a single cache set (LRU ordering, capacity changes, draining)."""

from repro.cache.cache_set import CacheSet, make_selector
from repro.mem.block import CacheBlock


def _lru_set(capacity: int) -> CacheSet:
    return CacheSet(capacity, make_selector("lru"))


class TestLookupAndFill:
    def test_miss_then_hit(self):
        cache_set = _lru_set(2)
        assert cache_set.lookup(1) is None
        cache_set.fill(1, CacheBlock(0x20))
        assert cache_set.lookup(1) is not None

    def test_fill_evicts_lru_when_full(self):
        cache_set = _lru_set(2)
        cache_set.fill(1, CacheBlock(0x20))
        cache_set.fill(2, CacheBlock(0x40))
        victim = cache_set.fill(3, CacheBlock(0x60))
        assert victim is not None
        assert victim.address == 0x20
        assert cache_set.lookup(1) is None
        assert cache_set.lookup(2) is not None

    def test_hit_refreshes_lru_order(self):
        cache_set = _lru_set(2)
        cache_set.fill(1, CacheBlock(0x20))
        cache_set.fill(2, CacheBlock(0x40))
        cache_set.lookup(1)  # 2 becomes LRU
        victim = cache_set.fill(3, CacheBlock(0x60))
        assert victim.address == 0x40

    def test_fifo_does_not_refresh_on_hit(self):
        cache_set = CacheSet(2, make_selector("fifo"))
        cache_set.fill(1, CacheBlock(0x20))
        cache_set.fill(2, CacheBlock(0x40))
        cache_set.lookup(1)
        victim = cache_set.fill(3, CacheBlock(0x60))
        assert victim.address == 0x20

    def test_refill_of_resident_tag_replaces_in_place(self):
        cache_set = _lru_set(2)
        cache_set.fill(1, CacheBlock(0x20))
        victim = cache_set.fill(1, CacheBlock(0x20, dirty=True))
        assert victim is not None and victim.address == 0x20
        assert cache_set.occupancy == 1
        assert cache_set.probe(1).dirty

    def test_probe_does_not_change_order(self):
        cache_set = _lru_set(2)
        cache_set.fill(1, CacheBlock(0x20))
        cache_set.fill(2, CacheBlock(0x40))
        cache_set.probe(1)
        victim = cache_set.fill(3, CacheBlock(0x60))
        assert victim.address == 0x20


class TestCapacityAndDrain:
    def test_invalidate_returns_block(self):
        cache_set = _lru_set(2)
        cache_set.fill(1, CacheBlock(0x20, dirty=True))
        block = cache_set.invalidate(1)
        assert block.dirty
        assert cache_set.invalidate(1) is None

    def test_shrinking_capacity_evicts_lru_first(self):
        cache_set = _lru_set(4)
        for tag in range(4):
            cache_set.fill(tag, CacheBlock(tag * 0x20))
        cache_set.lookup(0)  # tag 0 most recently used
        evicted = cache_set.set_capacity(2)
        assert len(evicted) == 2
        assert {block.address for block in evicted} == {0x20, 0x40}
        assert cache_set.occupancy == 2

    def test_growing_capacity_keeps_blocks(self):
        cache_set = _lru_set(1)
        cache_set.fill(1, CacheBlock(0x20))
        assert cache_set.set_capacity(4) == []
        assert cache_set.occupancy == 1
        cache_set.fill(2, CacheBlock(0x40))
        assert cache_set.occupancy == 2

    def test_drain_returns_everything_and_empties_set(self):
        cache_set = _lru_set(4)
        for tag in range(3):
            cache_set.fill(tag, CacheBlock(tag * 0x20))
        drained = cache_set.drain()
        assert len(drained) == 3
        assert cache_set.occupancy == 0

    def test_residents_iteration(self):
        cache_set = _lru_set(4)
        cache_set.fill(7, CacheBlock(0xE0))
        residents = dict(cache_set.residents())
        assert list(residents.keys()) == [7]
