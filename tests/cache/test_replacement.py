"""Tests for replacement policy parsing and victim selection."""

import pytest

from repro.cache.replacement import ReplacementPolicy, VictimSelector
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng


class TestPolicyParsing:
    def test_parse_strings(self):
        assert ReplacementPolicy.parse("lru") is ReplacementPolicy.LRU
        assert ReplacementPolicy.parse("FIFO") is ReplacementPolicy.FIFO
        assert ReplacementPolicy.parse("Random") is ReplacementPolicy.RANDOM

    def test_parse_enum_passthrough(self):
        assert ReplacementPolicy.parse(ReplacementPolicy.LRU) is ReplacementPolicy.LRU

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            ReplacementPolicy.parse("plru")

    def test_parse_rejects_non_string(self):
        with pytest.raises(ConfigurationError):
            ReplacementPolicy.parse(42)


class TestVictimSelector:
    def test_lru_refreshes_on_hit(self):
        assert VictimSelector(ReplacementPolicy.LRU).refreshes_on_hit

    def test_fifo_does_not_refresh_on_hit(self):
        assert not VictimSelector(ReplacementPolicy.FIFO).refreshes_on_hit

    def test_oldest_entry_chosen_for_lru_and_fifo(self):
        resident = {10: "a", 20: "b", 30: "c"}
        for policy in (ReplacementPolicy.LRU, ReplacementPolicy.FIFO):
            assert VictimSelector(policy).choose_victim(resident) == 10

    def test_random_selector_picks_resident_tags(self):
        selector = VictimSelector(ReplacementPolicy.RANDOM, DeterministicRng(1))
        resident = {1: "a", 2: "b", 3: "c"}
        for _ in range(30):
            assert selector.choose_victim(resident) in resident

    def test_random_selector_gets_default_rng(self):
        selector = VictimSelector(ReplacementPolicy.RANDOM)
        assert selector.choose_victim({5: "a"}) == 5
