"""Tests for the two-level cache hierarchy."""

import pytest

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy


@pytest.fixture
def hierarchy(base_system) -> CacheHierarchy:
    return CacheHierarchy(
        base_system,
        l1i=Cache(base_system.l1i, name="l1i"),
        l1d=Cache(base_system.l1d, name="l1d"),
    )


class TestDataPath:
    def test_l1_hit_has_one_cycle_latency(self, hierarchy):
        hierarchy.data_access(0x1000, is_write=False)
        outcome = hierarchy.data_access(0x1000, is_write=False)
        assert outcome.l1_hit
        assert outcome.latency == 1
        assert outcome.l2_accesses == 0

    def test_cold_miss_goes_to_memory(self, hierarchy):
        outcome = hierarchy.data_access(0x1000, is_write=False)
        assert not outcome.l1_hit
        assert outcome.l2_hit is False
        assert outcome.memory_accesses == 1
        # 1 (L1) + 12 (L2) + memory latency for a 64-byte L2 block.
        assert outcome.latency == 1 + 12 + 80 + 5 * 8

    def test_l2_hit_after_l1_eviction(self, base_system):
        hierarchy = CacheHierarchy(
            base_system,
            l1i=Cache(base_system.l1i),
            l1d=Cache(base_system.l1d),
        )
        stride = base_system.l1d.num_sets * base_system.l1d.block_bytes
        # Touch three conflicting blocks so the first is evicted from L1 but
        # still resides in the much larger L2.
        hierarchy.data_access(0x0, False)
        hierarchy.data_access(stride, False)
        hierarchy.data_access(2 * stride, False)
        outcome = hierarchy.data_access(0x0, False)
        assert not outcome.l1_hit
        assert outcome.l2_hit is True
        assert outcome.latency == 1 + 12

    def test_dirty_victim_is_written_back_to_l2(self, base_system):
        hierarchy = CacheHierarchy(
            base_system,
            l1i=Cache(base_system.l1i),
            l1d=Cache(base_system.l1d),
        )
        stride = base_system.l1d.num_sets * base_system.l1d.block_bytes
        hierarchy.data_access(0x0, True)
        hierarchy.data_access(stride, True)
        outcome = hierarchy.data_access(2 * stride, True)
        assert outcome.l2_accesses == 2  # fill plus the victim writeback
        assert hierarchy.writeback_buffer.enqueued == 1


class TestInstructionPath:
    def test_instruction_fetch_uses_l1i(self, hierarchy):
        hierarchy.instruction_fetch(0x40_0000)
        assert hierarchy.l1i.stats.accesses == 1
        assert hierarchy.l1d.stats.accesses == 0

    def test_instruction_refetch_hits(self, hierarchy):
        hierarchy.instruction_fetch(0x40_0000)
        assert hierarchy.instruction_fetch(0x40_0000).l1_hit


class TestWritebackAbsorption:
    def test_absorb_l1_writebacks_counts_l2_accesses(self, hierarchy):
        accesses = hierarchy.absorb_l1_writebacks([0x100, 0x2000, 0x40000])
        assert accesses == 3
        assert hierarchy.l2.stats.accesses == 3
        assert hierarchy.writeback_buffer.enqueued == 3

    def test_absorb_empty_list_is_noop(self, hierarchy):
        assert hierarchy.absorb_l1_writebacks([]) == 0


class TestStats:
    def test_miss_ratios_reports_all_levels(self, hierarchy):
        hierarchy.data_access(0x1000, False)
        ratios = hierarchy.miss_ratios()
        assert set(ratios) == {"l1i", "l1d", "l2"}
        assert ratios["l1d"] == 1.0

    def test_reset_stats_preserves_contents(self, hierarchy):
        hierarchy.data_access(0x1000, False)
        hierarchy.reset_stats()
        assert hierarchy.l1d.stats.accesses == 0
        assert hierarchy.data_access(0x1000, False).l1_hit

    def test_default_l2_built_from_config(self, base_system):
        hierarchy = CacheHierarchy(
            base_system, l1i=Cache(base_system.l1i), l1d=Cache(base_system.l1d)
        )
        assert hierarchy.l2.capacity_bytes == base_system.l2.geometry.capacity_bytes
