"""Tests for the MSHR file."""

import pytest

from repro.cache.mshr import MshrFile
from repro.common.config import CoreConfig
from repro.common.errors import ConfigurationError


class TestAllocation:
    def test_primary_miss_allocates(self):
        mshrs = MshrFile(4)
        assert mshrs.allocate(0x100)
        assert mshrs.occupancy == 1
        assert mshrs.primary_misses == 1

    def test_secondary_miss_merges(self):
        mshrs = MshrFile(4)
        mshrs.allocate(0x100)
        assert mshrs.allocate(0x100)
        assert mshrs.occupancy == 1
        assert mshrs.secondary_misses == 1

    def test_full_file_rejects_new_blocks(self):
        mshrs = MshrFile(2)
        assert mshrs.allocate(0x100)
        assert mshrs.allocate(0x200)
        assert not mshrs.allocate(0x300)
        assert mshrs.rejected == 1

    def test_release_frees_entry(self):
        mshrs = MshrFile(1)
        mshrs.allocate(0x100)
        mshrs.release(0x100)
        assert mshrs.allocate(0x200)

    def test_release_of_unknown_block_is_harmless(self):
        MshrFile(1).release(0xDEAD)

    def test_outstanding_lists_blocks(self):
        mshrs = MshrFile(4)
        mshrs.allocate(0x100)
        mshrs.allocate(0x200)
        assert sorted(mshrs.outstanding()) == [0x100, 0x200]

    def test_reset(self):
        mshrs = MshrFile(2)
        mshrs.allocate(0x100)
        mshrs.reset()
        assert mshrs.occupancy == 0
        assert mshrs.primary_misses == 0


class TestOverlapFactor:
    def test_overlap_capped_by_entries(self):
        mshrs = MshrFile(4)
        assert mshrs.overlap_factor(10.0) == pytest.approx(4.0)

    def test_overlap_floor_of_one(self):
        mshrs = MshrFile(4)
        assert mshrs.overlap_factor(0.2) == pytest.approx(1.0)

    def test_overlap_passthrough_in_range(self):
        mshrs = MshrFile(8)
        assert mshrs.overlap_factor(2.5) == pytest.approx(2.5)

    def test_from_core_uses_configured_entries(self):
        mshrs = MshrFile.from_core(CoreConfig(mshr_entries=8))
        assert mshrs.num_entries == 8


def test_zero_entries_rejected():
    with pytest.raises(ConfigurationError):
        MshrFile(0)
