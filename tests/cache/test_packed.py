"""Unit tests for the packed-outcome cache kernel.

Covers the encode/decode round trip of both packed layouts (cache access
outcomes and hierarchy outcomes), the packed block representation, the
kernel-vs-wrapper agreement for :class:`Cache`, and the per-cache victim
seeds for RANDOM replacement.  The randomised kernel-vs-object property
suite lives in ``tests/properties/test_property_kernel.py``.
"""

import pytest

from repro.cache.cache import (
    PACKED_FILLED,
    PACKED_HIT,
    PACKED_WRITEBACK_SHIFT,
    PACKED_WRITEBACK_VALID,
    Cache,
    pack_access_result,
    unpack_access_result,
)
from repro.cache.cache_set import pack_block, selector_seed, unpack_block
from repro.cache.hierarchy import (
    HIER_COUNT_MASK,
    HIER_L1_HIT,
    HIER_L2_ACCESSES_SHIFT,
    HIER_L2_CONSULTED,
    HIER_L2_HIT,
    HIER_LATENCY_SHIFT,
    HIER_MEM_ACCESSES_SHIFT,
    CacheHierarchy,
    unpack_hierarchy_outcome,
)
from repro.common.config import CacheGeometry
from repro.common.units import KIB


class TestPackedBlockRoundTrip:
    @pytest.mark.parametrize("address", [0x0, 0x40, 0x1000, 0xFFFF_FFC0, 0x1234_5678_9A40])
    @pytest.mark.parametrize("dirty", [False, True])
    def test_round_trip(self, address, dirty):
        block = unpack_block(pack_block(address, dirty))
        assert block.address == address
        assert block.dirty is dirty

    def test_dirty_bit_is_bit_zero(self):
        assert pack_block(0x40, False) == 0x80
        assert pack_block(0x40, True) == 0x81


class TestAccessResultRoundTrip:
    def test_hit(self):
        result = unpack_access_result(pack_access_result(hit=True))
        assert result.hit and result.writeback_address is None and not result.filled

    def test_miss_without_writeback(self):
        result = unpack_access_result(pack_access_result(hit=False, filled=True))
        assert not result.hit and result.filled and result.writeback_address is None

    @pytest.mark.parametrize("writeback", [0x0, 0x40, 0xFFFF_FFC0, 0x7FFF_FFFF_FFC0])
    def test_miss_with_writeback(self, writeback):
        packed = pack_access_result(hit=False, writeback_address=writeback, filled=True)
        result = unpack_access_result(packed)
        assert not result.hit and result.filled
        assert result.writeback_address == writeback

    def test_writeback_address_zero_is_distinguishable_from_none(self):
        with_wb = pack_access_result(hit=False, writeback_address=0x0, filled=True)
        without = pack_access_result(hit=False, filled=True)
        assert with_wb != without
        assert unpack_access_result(with_wb).writeback_address == 0
        assert unpack_access_result(without).writeback_address is None

    def test_bit_layout_constants(self):
        # The flag bits must all sit below the writeback shift so that a
        # plain right-shift recovers the victim address.
        assert max(PACKED_HIT, PACKED_FILLED, PACKED_WRITEBACK_VALID) < (
            1 << PACKED_WRITEBACK_SHIFT
        )
        packed = pack_access_result(hit=False, writeback_address=0x1040, filled=True)
        assert packed >> PACKED_WRITEBACK_SHIFT == 0x1040


class TestHierarchyOutcomeRoundTrip:
    def _encode(self, hit_bits, l2_accesses, memory_accesses, latency):
        return (
            hit_bits
            | (l2_accesses << HIER_L2_ACCESSES_SHIFT)
            | (memory_accesses << HIER_MEM_ACCESSES_SHIFT)
            | (latency << HIER_LATENCY_SHIFT)
        )

    def test_l1_hit(self):
        outcome = unpack_hierarchy_outcome(self._encode(HIER_L1_HIT, 0, 0, 1))
        assert outcome.l1_hit and outcome.l2_hit is None
        assert outcome.latency == 1
        assert outcome.l2_accesses == 0 and outcome.memory_accesses == 0

    def test_l2_hit(self):
        packed = self._encode(HIER_L2_CONSULTED | HIER_L2_HIT, 1, 0, 13)
        outcome = unpack_hierarchy_outcome(packed)
        assert not outcome.l1_hit and outcome.l2_hit is True
        assert outcome.latency == 13 and outcome.l2_accesses == 1

    @pytest.mark.parametrize("l2_accesses,memory_accesses", [(1, 1), (2, 2), (2, 4)])
    def test_l2_miss_transfer_counts(self, l2_accesses, memory_accesses):
        packed = self._encode(HIER_L2_CONSULTED, l2_accesses, memory_accesses, 133)
        outcome = unpack_hierarchy_outcome(packed)
        assert outcome.l2_hit is False
        assert outcome.l2_accesses == l2_accesses
        assert outcome.memory_accesses == memory_accesses
        assert outcome.latency == 133

    def test_count_fields_hold_the_worst_case(self):
        # Worst case per access: L2 fill miss + fill-victim writeback +
        # L1-victim-induced L2 miss + its victim writeback = 4 transfers,
        # 2 L2 accesses.  Both must fit their 3-bit fields.
        assert 4 <= HIER_COUNT_MASK
        assert 2 <= HIER_COUNT_MASK


class TestKernelMatchesWrapper:
    """access_packed and the object wrapper must describe the same event.

    Two identically configured caches see the same access stream, one
    through each API; every decoded outcome and the final counters must
    agree exactly.
    """

    def test_interleaved_stream(self, small_geometry):
        object_cache = Cache(small_geometry, name="object")
        packed_cache = Cache(small_geometry, name="object")  # same name: same seeds
        stride = small_geometry.num_sets * small_geometry.block_bytes
        stream = [
            (0x0, True), (stride, True), (2 * stride, False), (0x0, False),
            (0x1000, False), (0x1000, True), (3 * stride, True), (stride, False),
        ]
        for address, is_write in stream:
            expected = object_cache.access(address, is_write)
            got = unpack_access_result(packed_cache.access_packed(address, is_write))
            assert got.hit == expected.hit
            assert got.filled == expected.filled
            assert got.writeback_address == expected.writeback_address
        assert object_cache.stats.as_dict() == packed_cache.stats.as_dict()

    def test_hierarchy_packed_matches_object(self, base_system):
        def build():
            return CacheHierarchy(
                base_system,
                l1i=Cache(base_system.l1i, name="l1i"),
                l1d=Cache(base_system.l1d, name="l1d"),
            )

        object_hierarchy, packed_hierarchy = build(), build()
        stride = base_system.l1d.num_sets * base_system.l1d.block_bytes
        stream = [(0x0, True), (stride, True), (2 * stride, True), (0x0, False)]
        for address, is_write in stream:
            expected = object_hierarchy.data_access(address, is_write)
            got = unpack_hierarchy_outcome(
                packed_hierarchy.data_access_packed(address, is_write)
            )
            for field in ("l1_hit", "l2_hit", "latency", "l2_accesses", "memory_accesses"):
                assert getattr(got, field) == getattr(expected, field), field
        assert (
            object_hierarchy.l2.stats.as_dict() == packed_hierarchy.l2.stats.as_dict()
        )
        assert (
            object_hierarchy.writeback_buffer.enqueued
            == packed_hierarchy.writeback_buffer.enqueued
        )

    def test_object_api_only_l1_is_adapted(self, base_system):
        """An L1 without access_packed still works through the hierarchy."""

        class ObjectOnlyL1:
            def __init__(self, inner):
                self._inner = inner
                self.stats = inner.stats

            def access(self, address, is_write=False):
                return self._inner.access(address, is_write)

            def flush_all(self):
                return self._inner.flush_all()

            def reset_stats(self):
                self._inner.reset_stats()

        native = CacheHierarchy(
            base_system,
            l1i=Cache(base_system.l1i, name="l1i"),
            l1d=Cache(base_system.l1d, name="l1d"),
        )
        adapted = CacheHierarchy(
            base_system,
            l1i=ObjectOnlyL1(Cache(base_system.l1i, name="l1i")),
            l1d=ObjectOnlyL1(Cache(base_system.l1d, name="l1d")),
        )
        stride = base_system.l1d.num_sets * base_system.l1d.block_bytes
        for address, is_write in [(0x0, True), (stride, True), (2 * stride, False)]:
            assert native.data_access_packed(address, is_write) == (
                adapted.data_access_packed(address, is_write)
            )


class TestSelectorSeeds:
    def test_seed_is_deterministic_and_name_dependent(self):
        assert selector_seed("l1d") == selector_seed("l1d")
        assert selector_seed("l1d") != selector_seed("l1i")
        assert selector_seed("l1d") != selector_seed("l2")

    def test_distinct_caches_draw_distinct_victim_streams(self):
        geometry = CacheGeometry(2 * KIB, 4, block_bytes=32, subarray_bytes=KIB)
        streams = {}
        for name in ("l1d", "l1i"):
            cache = Cache(geometry, replacement="random", name=name)
            # Overfill every set so each access past the warmup evicts a
            # random victim; the victim choice shows up in what survives.
            for step in range(64):
                cache.access(step * 2 * KIB)
            streams[name] = sorted(
                tag for blocks in cache._set_blocks for tag in blocks
            )
        assert streams["l1d"] != streams["l1i"]
