"""Interval-sampling tests: plan construction, engine parity, error bars.

Sampling's contracts (docs/SAMPLING.md): the segment plan is a pure
function of (trace length, interval size, N, W); every engine — reference,
columnar, fused ladder — walks the same plan bit-identically; sampling
fields are part of job fingerprints; and the sampled miss ratio lands
within the documented 95% error bar of the exhaustive truth on the
committed fixture.
"""

import os

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.static_strategy import StaticResizing
from repro.sim.engine import sampling_plan
from repro.sim.jobcache import JobCache
from repro.sim.ladder import run_fused
from repro.sim.runner import SweepRunner, TraceSpec
from repro.sim.results import SimulationResult
from repro.sim.simulator import L1Setup, Simulator
from repro.sim.sweep import make_job
from repro.workloads.ingest import ExternalTraceSpec, read_text_trace

FIXTURE = os.path.join(
    os.path.dirname(os.path.dirname(__file__)), "data", "sample.rtxt"
)


@pytest.fixture(scope="module")
def system():
    return SystemConfig()


@pytest.fixture(scope="module")
def trace():
    return TraceSpec("gcc", 9_000).materialize()


@pytest.fixture(scope="module")
def fixture_trace():
    return read_text_trace(FIXTURE)


class TestPlan:
    def test_exhaustive_runs_have_no_plan(self):
        assert sampling_plan(10_000, 1500, 1, 0) is None
        assert sampling_plan(10_000, 1500, 0, 500) is None

    def test_measured_intervals_are_every_nth(self):
        plan = sampling_plan(9_000, 1500, 3, 0)
        # 6 intervals, every 3rd measured: 0 and 3
        assert plan == [(0, 1500, True), (4500, 6000, True)]

    def test_warmup_prefixes_cover_the_gap_tail(self):
        plan = sampling_plan(9_000, 1500, 3, 500)
        assert plan == [
            (0, 1500, True),
            (4000, 4500, False),   # 500 warmup instructions before interval 3
            (4500, 6000, True),
        ]

    def test_warmup_never_replays_twice_or_crosses_measured(self):
        # N=2: the gap is one interval; a huge W clamps to the whole gap,
        # so every instruction up to the last measured interval replays
        # exactly once and trailing skipped intervals are dropped.
        plan = sampling_plan(9_000, 1500, 2, 10_000_000)
        assert plan == [
            (0, 1500, True), (1500, 3000, False), (3000, 4500, True),
            (4500, 6000, False), (6000, 7500, True),
        ]

    def test_plan_ends_with_a_measured_segment(self):
        for n, every, warm in [(9_000, 3, 0), (10_000, 4, 800), (4_500, 2, 100)]:
            plan = sampling_plan(n, 1500, every, warm)
            assert plan[-1][2] is True

    def test_warmup_segments_are_interval_bounded(self):
        plan = sampling_plan(100_000, 1500, 10, 9_000)
        assert any(not measured for _, _, measured in plan)
        for start, stop, measured in plan:
            assert stop - start <= 1500  # bounded decode chunks

    def test_ragged_tail_interval_is_skipped_when_not_scheduled(self):
        # 5 intervals (the last ragged at 100 instructions); only index 0
        # hits the every-5 schedule, so the plan is one measured segment.
        assert sampling_plan(6_100, 1500, 5, 0) == [(0, 1500, True)]
        # with every=4 the ragged tail interval itself is scheduled
        plan = sampling_plan(6_100, 1500, 4, 0)
        assert plan == [(0, 1500, True), (6000, 6100, True)]


class TestEngineParity:
    @pytest.mark.parametrize("every,warmup", [(2, 0), (3, 500), (4, 1500)])
    def test_reference_and_columnar_identical(self, system, trace, every, warmup):
        results = []
        for engine in ("reference", "columnar"):
            org = SelectiveSets(system.l1d)
            setup = L1Setup(org, StaticResizing(org.config_for_capacity(8 * 1024)))
            result = Simulator(system, engine=engine).run(
                trace, d_setup=setup, sample_every=every, sample_warmup=warmup
            )
            results.append(result.to_dict())
        assert results[0] == results[1]

    def test_fused_ladder_matches_single_runs(self, system, trace):
        org = SelectiveSets(system.l1d)
        configs = [org.config_for_capacity(c) for c in (8 * 1024, 16 * 1024)]
        simulator = Simulator(system)

        singles = [
            simulator.run(
                trace,
                d_setup=L1Setup(SelectiveSets(system.l1d), StaticResizing(config)),
                sample_every=3,
                sample_warmup=500,
            ).to_dict()
            for config in configs
        ]
        fused = run_fused(
            simulator,
            trace,
            [
                (L1Setup(SelectiveSets(system.l1d), StaticResizing(config)), None)
                for config in configs
            ],
            sample_every=3,
            sample_warmup=500,
        )
        assert [result.to_dict() for result in fused] == singles

    def test_sample_every_one_is_verbatim_exhaustive(self, system, trace):
        simulator = Simulator(system)
        assert (
            simulator.run(trace, sample_every=1).to_dict()
            == simulator.run(trace).to_dict()
        )

    def test_invalid_sampling_parameters_are_rejected(self, system, trace):
        simulator = Simulator(system)
        with pytest.raises(SimulationError):
            simulator.run(trace, sample_every=0)
        with pytest.raises(SimulationError):
            simulator.run(trace, sample_warmup=-1)


class TestAccuracy:
    def test_sampled_miss_ratio_within_error_bar_on_fixture(self, fixture_trace):
        """docs/SAMPLING.md's acceptance bound, on the committed fixture."""
        simulator = Simulator(SystemConfig())
        # small intervals so the fixture yields enough samples for a bar
        full = simulator.run(fixture_trace, interval_instructions=300)
        sampled = simulator.run(
            fixture_trace,
            interval_instructions=300,
            sample_every=3,
            sample_warmup=150,
        )
        assert sampled.sampled_intervals == 5
        assert sampled.total_intervals == 15
        assert sampled.l1d_miss_ratio_stderr > 0.0
        for cache in ("l1d", "l1i"):
            err = abs(
                getattr(sampled, f"{cache}_miss_ratio")
                - getattr(full, f"{cache}_miss_ratio")
            )
            bar = getattr(sampled, f"{cache}_miss_ratio_error_bar")
            assert err <= bar, f"{cache}: |{err}| > bar {bar}"

    def test_exhaustive_results_have_zero_error_bars(self, system, trace):
        result = Simulator(system).run(trace)
        assert result.sample_every == 1
        assert result.l1d_miss_ratio_stderr == 0.0
        assert result.l1d_miss_ratio_error_bar == 0.0

    def test_sampling_fields_round_trip_through_json(self, system, trace):
        result = Simulator(system).run(trace, sample_every=3, sample_warmup=500)
        rebuilt = SimulationResult.from_dict(result.to_dict())
        assert rebuilt.to_dict() == result.to_dict()
        assert rebuilt.sample_every == 3
        assert rebuilt.sample_warmup == 500

    def test_pre_sampling_payloads_deserialise_as_exhaustive(self, system, trace):
        payload = Simulator(system).run(trace).to_dict()
        for key in (
            "sample_every", "sample_warmup", "total_intervals",
            "sampled_intervals", "l1d_miss_ratio_stderr", "l1i_miss_ratio_stderr",
        ):
            del payload[key]
        rebuilt = SimulationResult.from_dict(payload)
        assert rebuilt.sample_every == 1
        assert rebuilt.l1d_miss_ratio_error_bar == 0.0


class TestJobLayer:
    def test_sampling_is_fingerprinted(self, system):
        simulator = Simulator(system)
        spec = TraceSpec("gcc", 6_000)
        plain = make_job(simulator, spec)
        sampled = make_job(simulator, spec, sample_every=3, sample_warmup=500)
        assert plain.fingerprint() != sampled.fingerprint()
        assert (
            sampled.fingerprint()
            != make_job(simulator, spec, sample_every=3).fingerprint()
        )

    def test_describe_mentions_sampling_only_when_active(self, system):
        simulator = Simulator(system)
        spec = TraceSpec("gcc", 6_000)
        assert "sample_every" not in make_job(simulator, spec).describe()
        described = make_job(simulator, spec, sample_every=4).describe()
        assert described["sample_every"] == 4

    def test_runner_executes_sampled_jobs_and_caches_them(self, system, tmp_path):
        simulator = Simulator(system)
        job = make_job(simulator, TraceSpec("gcc", 6_000), sample_every=3)
        direct = simulator.run(
            TraceSpec("gcc", 6_000).materialize(), sample_every=3
        )
        with SweepRunner(cache=JobCache(str(tmp_path))) as runner:
            cold = runner.submit(job).result()
        with SweepRunner(cache=JobCache(str(tmp_path))) as runner:
            warm = runner.submit(job).result()
            assert runner.cache_hits == 1
        assert cold.to_dict() == direct.to_dict() == warm.to_dict()

    def test_external_trace_jobs_round_trip_cold_and_warm(self, system, tmp_path):
        """A real trace file replays bit-identically across engines and
        across cold/warm trace-memo runs (the PR's acceptance criterion)."""
        spec = ExternalTraceSpec(path=FIXTURE)
        trace_cache = str(tmp_path / "traces")
        results = []
        for engine in ("reference", "columnar"):
            simulator = Simulator(system, engine=engine)
            for _ in ("cold", "warm"):
                with SweepRunner(
                    cache=JobCache(str(tmp_path / "jobs")), trace_cache=trace_cache
                ) as runner:
                    results.append(
                        runner.submit(make_job(simulator, spec)).result().to_dict()
                    )
        assert all(payload == results[0] for payload in results[1:])
        assert results[0]["workload"] == "sample"

    def test_external_trace_fingerprint_is_content_addressed(self, system, tmp_path):
        simulator = Simulator(system)
        moved = tmp_path / "same-bytes-other-path.rtxt"
        moved.write_bytes(open(FIXTURE, "rb").read())
        original = make_job(simulator, ExternalTraceSpec(path=FIXTURE))
        relocated = make_job(simulator, ExternalTraceSpec(path=str(moved)))
        assert original.fingerprint() == relocated.fingerprint()

        edited = tmp_path / "edited.rtxt"
        edited.write_text(open(FIXTURE).read() + "0x999999 I\n")
        assert (
            make_job(simulator, ExternalTraceSpec(path=str(edited))).fingerprint()
            != original.fingerprint()
        )

    def test_ladder_job_requires_shared_sampling_schedule(self, system):
        simulator = Simulator(system)
        spec = TraceSpec("gcc", 6_000)
        from repro.sim.runner import LadderJob

        with pytest.raises(SimulationError, match="sampling"):
            LadderJob(
                rungs=[
                    make_job(simulator, spec, sample_every=2),
                    make_job(simulator, spec, sample_every=3),
                ]
            )
