"""Tests for the configuration-invariant trace pre-decode (repro.sim.predecode).

The module's correctness contract is that a whole-trace decode equals the
concatenation of per-interval :func:`repro.sim.engine.decode_interval`
outputs — ops and all four totals — for *any* interval partition, and that
the NumPy and stdlib builders are bit-identical.  These tests pin both,
plus the disk serialization round-trip, the memo counters, and the gates
that force scalar replay (non-default predictors, warm pilots).
"""

from array import array

import pytest

from repro.cache.cache import Cache
from repro.common.config import SystemConfig
from repro.cpu.branch import BimodalBranchPredictor
from repro.sim import predecode
from repro.sim.engine import decode_interval
from repro.sim.predecode import (
    DecodedTrace,
    build_decoded,
    build_pilot,
    decoded_for,
    pilot_for,
)
from repro.sim.runner import TraceSpec
from repro.sim.vector import numpy_or_none

_SYSTEM = SystemConfig()

#: The mask every real run uses: the L1i fetch-block selector.
_BLOCK_MASK = ~(_SYSTEM.l1i.block_bytes - 1)


@pytest.fixture(scope="module")
def trace():
    return TraceSpec("gcc", 5_003).materialize()  # odd length on purpose


def _partition(n, interval):
    boundaries = []
    start = 0
    while start < n:
        stop = min(start + interval, n)
        boundaries.append((start, stop))
        start = stop
    return boundaries


def _interval_reference(trace, block_mask, boundaries):
    """Per-interval scalar decode, exactly as a live replay drives it."""
    predict = BimodalBranchPredictor().predict_and_update
    pc_col, addr_col, flag_col = trace.columns()
    last_fetch_block = -1
    out = []
    for start, stop in boundaries:
        ops, last_fetch_block, branches, mispredicts, memrefs, stores = (
            decode_interval(
                pc_col[start:stop], flag_col[start:stop], addr_col[start:stop],
                stop - start, block_mask, last_fetch_block, predict,
            )
        )
        out.append((ops, branches, mispredicts, memrefs, stores))
    return out


@pytest.mark.parametrize("interval", [997, 1_024, 5_003])
def test_decoded_equals_per_interval_decode(trace, interval):
    decoded = build_decoded(trace, _BLOCK_MASK)
    assert decoded is not None
    boundaries = _partition(len(trace), interval)
    reference = _interval_reference(trace, _BLOCK_MASK, boundaries)
    for (start, stop), (ops, branches, mispredicts, memrefs, stores) in zip(
        boundaries, reference
    ):
        assert decoded.interval_ops(start, stop) == ops
        assert decoded.branch_prefix[stop] - decoded.branch_prefix[start] == branches
        assert (
            decoded.mispredict_prefix[stop] - decoded.mispredict_prefix[start]
            == mispredicts
        )
        assert decoded.memref_prefix[stop] - decoded.memref_prefix[start] == memrefs
        assert decoded.store_prefix[stop] - decoded.store_prefix[start] == stores


def _decoded_fields(decoded):
    return (
        decoded.n,
        decoded.block_mask,
        decoded.stream,
        decoded.op_prefix,
        decoded.branch_prefix,
        decoded.mispredict_prefix,
        decoded.memref_prefix,
        decoded.store_prefix,
    )


@pytest.mark.skipif(numpy_or_none() is None, reason="NumPy unavailable")
def test_numpy_builder_matches_scalar_builder(trace):
    vectorized = predecode._build_numpy(trace, _BLOCK_MASK, numpy_or_none())
    scalar = predecode._build_scalar(trace, _BLOCK_MASK)
    assert _decoded_fields(vectorized) == _decoded_fields(scalar)


def test_no_numpy_env_pins_scalar_builder(trace, monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMPY", "1")
    assert numpy_or_none() is None
    decoded = build_decoded(trace, _BLOCK_MASK)
    assert _decoded_fields(decoded) == _decoded_fields(
        predecode._build_scalar(trace, _BLOCK_MASK)
    )


def test_bytes_round_trip(trace):
    decoded = build_decoded(trace, _BLOCK_MASK)
    rebuilt = DecodedTrace.from_bytes(decoded.to_bytes())
    assert _decoded_fields(rebuilt) == _decoded_fields(decoded)


def test_from_bytes_rejects_foreign_payloads(trace):
    data = bytearray(build_decoded(trace, _BLOCK_MASK).to_bytes())
    data[:4] = b"XXXX"
    with pytest.raises(ValueError):
        DecodedTrace.from_bytes(bytes(data))
    with pytest.raises(ValueError):
        DecodedTrace.from_bytes(b"")


def test_decoded_for_memoizes_per_trace_and_mask(trace):
    predecode.reset_stats()
    first = decoded_for(trace, _BLOCK_MASK, BimodalBranchPredictor())
    second = decoded_for(trace, _BLOCK_MASK, BimodalBranchPredictor())
    assert first is not None and second is first
    snapshot = predecode.stats_snapshot()
    assert snapshot["decode_builds"] == 1
    assert snapshot["decode_memo_hits"] == 1
    # A different mask is a distinct decode, not a hit.
    other = decoded_for(trace, ~15, BimodalBranchPredictor())
    assert other is not None and other is not first
    assert predecode.stats_snapshot()["decode_builds"] == 2


def test_decoded_for_refuses_nondefault_predictors(trace):
    warm = BimodalBranchPredictor()
    warm.predict_and_update(0x1000, True)
    assert decoded_for(trace, _BLOCK_MASK, warm) is None

    class OtherPredictor(BimodalBranchPredictor):
        pass

    assert decoded_for(trace, _BLOCK_MASK, OtherPredictor()) is None


def test_pilot_memoizes_and_refuses_warm_caches(trace):
    predecode.reset_stats()
    decoded = build_decoded(trace, _BLOCK_MASK)
    pilot_cache = Cache(_SYSTEM.l1i, name="l1i")
    first = pilot_for(trace, decoded, "i", pilot_cache)
    assert first is not None
    second = pilot_for(trace, decoded, "i", Cache(_SYSTEM.l1i, name="l1i"))
    assert second is first
    assert predecode.stats_snapshot()["pilot_memo_hits"] == 1
    # The memoized resolution is only valid from a cold pilot.
    warm = Cache(_SYSTEM.l1i, name="l1i")
    warm.access_packed(0x40, False)
    assert pilot_for(trace, decoded, "i", warm) is None

    class OtherCache(Cache):
        pass

    assert pilot_for(trace, decoded, "i", OtherCache(_SYSTEM.l1i, name="l1i")) is None


def test_pilot_interval_entries_partition_consistently(trace):
    """Slicing the pilot stream over any partition tiles the whole stream."""
    decoded = build_decoded(trace, _BLOCK_MASK)
    for side, geometry in (("i", _SYSTEM.l1i), ("d", _SYSTEM.l1d)):
        pilot = build_pilot(
            decoded, side, geometry, Cache(geometry).replacement, side
        )
        n = decoded.n
        rebuilt = []
        for start, stop in _partition(n, 769):
            rebuilt.extend(pilot.interval_entries(start, stop))
        assert rebuilt == pilot.entries
        assert pilot.miss_prefix[n] >= 0
        if side == "d":
            assert pilot.wb_prefix is not None
        else:
            assert pilot.wb_prefix is None


def test_disk_round_trip_counts_disk_hits(trace, tmp_path):
    from repro.sim.runner import set_trace_cache, get_trace_cache

    predecode.reset_stats()
    previous = get_trace_cache()
    set_trace_cache(str(tmp_path / "traces"))
    try:
        built = build_decoded(trace, _BLOCK_MASK)
        predecode._store_to_disk(trace, _BLOCK_MASK, built)
        loaded = predecode._load_from_disk(trace, _BLOCK_MASK)
        assert loaded is not None
        assert _decoded_fields(loaded) == _decoded_fields(built)
        assert predecode.stats_snapshot()["decode_disk_hits"] == 1
    finally:
        set_trace_cache(previous)


def test_stream_is_flat_uint64_pairs(trace):
    decoded = build_decoded(trace, _BLOCK_MASK)
    assert isinstance(decoded.stream, array) and decoded.stream.typecode == "Q"
    assert len(decoded.stream) == 2 * decoded.op_prefix[decoded.n]
