"""Tests for the zero-copy shared-memory trace transport (repro.sim.shm).

Covers the segment round-trip, the runner integration (pool jobs ship
:class:`SharedTraceRef` instead of trace bytes, under both fork and spawn),
every documented fallback path (no shared memory, publish failure, evicted
segment), the registry's LRU/unlink lifecycle, and the pool-rebuild
leak regression fixed alongside the transport.
"""

import dataclasses
import gc
import glob
import multiprocessing
import os

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.sim import shm
from repro.sim.runner import (
    L1SetupSpec,
    SimJob,
    StrategySpec,
    SweepRunner,
    TraceSpec,
    resolve_trace,
)
from repro.sim.shm import SegmentRegistry, SharedTraceRef, attach_trace

pytestmark = [
    pytest.mark.skipif(
        not shm.shm_available(), reason="multiprocessing.shared_memory unavailable"
    ),
    # Tests that rebuild a Trace over a segment keep its memoryviews alive
    # past the test-side release; the mapping's __del__ then raises a
    # benign BufferError ("exported pointers exist") that pytest reports
    # as an unraisable warning.  Process exit reclaims the mapping either
    # way — exactly the documented eviction behaviour in repro.sim.shm.
    pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning"),
]

_SYSTEM = SystemConfig()


def _ladder_jobs(n_instructions=3_000):
    """A baseline plus the selective-sets ladder over one small trace."""
    from repro.resizing.selective_sets import SelectiveSets

    trace = TraceSpec("m88ksim", n_instructions)
    organization = SelectiveSets(_SYSTEM.l1d)
    jobs = [SimJob(trace=trace, system=_SYSTEM, interval_instructions=500)]
    for config in organization.ladder():
        jobs.append(
            SimJob(
                trace=trace,
                system=_SYSTEM,
                d_setup=L1SetupSpec(
                    organization=organization.name,
                    strategy=StrategySpec.static(config),
                ),
                interval_instructions=500,
            )
        )
    return jobs


def _live_segments():
    """Names of this process's repro_* segments currently in /dev/shm.

    Collects garbage first: a runner some earlier test dropped without
    closing sits in a reference cycle (runner <-> futures), so its
    ``weakref.finalize`` backstop — which unlinks its segments — only
    fires on a cyclic-GC pass.  Forcing that pass here keeps foreign
    segments from nondeterministically polluting this file's leak checks.
    """
    gc.collect()
    return sorted(
        os.path.basename(path)
        for path in glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}_{os.getpid()}_*")
    )


def results_equal(a, b) -> bool:
    return dataclasses.asdict(a) == dataclasses.asdict(b)


class TestSegmentRoundTrip:
    def test_publish_attach_rebuilds_trace_bit_identically(self):
        trace = TraceSpec("gcc", 2_000).materialize()
        registry = SegmentRegistry()
        try:
            ref = registry.publish(("k",), trace)
            assert ref is not None
            assert ref.n == len(trace)
            assert ref.name == trace.name
            rebuilt = attach_trace(ref)
            assert rebuilt is not None
            assert rebuilt.records == trace.records
            assert rebuilt.memory_level_parallelism == trace.memory_level_parallelism
            assert rebuilt.content_digest() == trace.content_digest()
        finally:
            shm._release_attachments()
            registry.release_all()

    def test_publish_reuses_segment_per_key(self):
        trace = TraceSpec("gcc", 1_500).materialize()
        registry = SegmentRegistry()
        try:
            first = registry.publish(("k",), trace)
            second = registry.publish(("k",), trace)
            assert first is second
            assert registry.published == 1
            assert len(registry) == 1
        finally:
            registry.release_all()

    def test_attach_memo_reuses_mapping(self):
        trace = TraceSpec("gcc", 1_500).materialize()
        registry = SegmentRegistry()
        shm.reset_stats()
        try:
            ref = registry.publish(("k",), trace)
            first = attach_trace(ref)
            second = attach_trace(ref)
            assert first is second
            snapshot = shm.stats_snapshot()
            assert snapshot["shm_attached"] == 1
            assert snapshot["shm_attach_reuses"] == 1
        finally:
            shm._release_attachments()
            registry.release_all()

    def test_release_all_unlinks_segments(self):
        trace = TraceSpec("gcc", 1_500).materialize()
        registry = SegmentRegistry()
        ref = registry.publish(("k",), trace)
        assert ref.segment in _live_segments()
        registry.release_all()
        assert _live_segments() == []
        registry.release_all()  # idempotent

    def test_lru_eviction_unlinks_oldest_segment(self):
        registry = SegmentRegistry(capacity=1)
        a = TraceSpec("gcc", 1_200).materialize()
        b = TraceSpec("compress", 1_200).materialize()
        try:
            ref_a = registry.publish(("a",), a)
            ref_b = registry.publish(("b",), b)
            assert len(registry) == 1
            assert registry.lookup(("a",)) is None
            assert registry.lookup(("b",)) is ref_b
            # The evicted segment is gone: attaching its stale ref fails...
            assert attach_trace(ref_a) is None
            # ...but a ref carrying a fallback spec still resolves.
            stale = SharedTraceRef(
                segment=ref_a.segment, name=a.name, n=len(a),
                fallback=TraceSpec("gcc", 1_200),
            )
            assert resolve_trace(stale).records == a.records
        finally:
            shm._release_attachments()
            registry.release_all()

    def test_stale_ref_without_fallback_raises(self):
        ref = SharedTraceRef(segment="repro_0_0_deadbeef", name="ghost", n=10)
        with pytest.raises(SimulationError, match="gone"):
            resolve_trace(ref)


class TestTransportFallbacks:
    def test_publish_declines_without_shared_memory(self, monkeypatch):
        monkeypatch.setattr(shm, "HAVE_SHM", False)
        registry = SegmentRegistry()
        trace = TraceSpec("gcc", 1_200).materialize()
        assert registry.publish(("k",), trace) is None
        assert registry.published == 0

    def test_attach_declines_without_shared_memory(self, monkeypatch):
        ref = SharedTraceRef(segment="repro_0_0_deadbeef", name="x", n=10)
        monkeypatch.setattr(shm, "HAVE_SHM", False)
        assert attach_trace(ref) is None

    def test_runner_falls_back_to_pickle_transport(self, monkeypatch):
        # With shared memory monkeypatched away the sweep must still run —
        # inline traces then cross the pool boundary by value and are
        # counted in trace_bytes_pickled.
        monkeypatch.setattr(shm, "HAVE_SHM", False)
        trace = TraceSpec("gcc", 2_000).materialize()
        jobs = [
            SimJob(trace=trace, system=_SYSTEM, interval_instructions=500),
            SimJob(
                trace=trace,
                system=_SYSTEM,
                d_setup=L1SetupSpec(organization="selective-sets"),
                interval_instructions=500,
            ),
        ]
        serial = SweepRunner(jobs=1).run(jobs)
        with SweepRunner(jobs=2) as runner:
            parallel = runner.run(jobs)
            assert runner.shm_segments == 0
            assert runner.trace_bytes_pickled == 2 * trace.nbytes
        for left, right in zip(serial, parallel):
            assert results_equal(left, right)

    def test_publish_failure_counts_and_falls_back(self, monkeypatch):
        def explode(*args, **kwargs):
            raise OSError("no space on /dev/shm")

        monkeypatch.setattr(shm._shared_memory, "SharedMemory", explode)
        shm.reset_stats()
        registry = SegmentRegistry()
        trace = TraceSpec("gcc", 1_200).materialize()
        assert registry.publish(("k",), trace) is None
        assert shm.stats_snapshot()["shm_publish_failures"] == 1


class TestRunnerTransport:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_parallel_equals_serial_zero_copy(self, start_method):
        if start_method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"{start_method} start method unavailable")
        jobs = _ladder_jobs()
        serial = SweepRunner(jobs=1).run(jobs)
        with SweepRunner(jobs=2, mp_start_method=start_method) as runner:
            parallel = runner.run(jobs)
            # One distinct trace -> one segment; no trace bytes pickled and
            # no worker ever re-materialised the trace from its spec.
            assert runner.shm_segments == 1
            assert runner.trace_bytes_pickled == 0
            assert runner.worker_stats.get("trace_memo_reads", 0) == 0
            assert runner.worker_stats.get("shm_attached", 0) >= 1
        assert len(serial) == len(parallel) == len(jobs)
        for left, right in zip(serial, parallel):
            assert results_equal(left, right)
        assert _live_segments() == []

    def test_close_unlinks_segments_and_runner_stays_usable(self):
        jobs = _ladder_jobs(2_000)[:3]
        runner = SweepRunner(jobs=2)
        try:
            first = runner.run(jobs)
            assert runner.shm_segments == 1
            assert _live_segments() != []
            runner.close()
            assert _live_segments() == []
            # A later batch of *new* jobs (identical ones are served from
            # the in-memory future memo without simulating) republishes
            # into a fresh pool.
            runner.run(_ladder_jobs(2_500)[:3])
            assert runner.shm_segments == 2
            assert first == runner.run(jobs)  # memo-served, still intact
        finally:
            runner.close()
        assert _live_segments() == []

    def test_pool_rebuild_joins_old_workers_and_keeps_segments(self):
        # Regression: registering an organization mid-life rebuilds the
        # pool; the rebuild must JOIN the old workers (no zombie processes)
        # while leaving published segments live for the successor pool.
        jobs = _ladder_jobs(2_000)[:3]
        with SweepRunner(jobs=2) as runner:
            runner.run(jobs)
            assert runner.shm_segments == 1
            first_segments = _live_segments()
            old_pool = runner._pool
            assert old_pool is not None
            before = len(multiprocessing.active_children())
            # Force a stale registry snapshot instead of registering a
            # real organization: registrations are process-global and a
            # test-local class would poison later spawn-pool pickling.
            runner._pool_registry = dict(runner._pool_registry, stale=object)
            # Fresh jobs: identical ones are memo-served without touching
            # the pool, and a fused batch over the same trace reuses its
            # already-published segment.
            results = runner.run(_ladder_jobs(2_200)[:3])
            assert runner._pool is not old_pool
            # The old pool's workers were terminated AND joined: worker
            # count did not grow across the rebuild.
            assert len(multiprocessing.active_children()) <= before
            # The first batch's segments survived the rebuild, live
            # alongside the new batch's.
            assert set(first_segments) <= set(_live_segments())
            assert len(results) == 3
        assert _live_segments() == []

    def test_finalizer_backstop_releases_segments(self):
        jobs = _ladder_jobs(2_000)[:2]
        runner = SweepRunner(jobs=2)
        runner.run(jobs)
        assert _live_segments() != []
        finalizer = runner._segments_finalizer
        del runner
        finalizer()  # what gc / interpreter exit would invoke
        assert _live_segments() == []
