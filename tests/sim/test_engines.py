"""Replay-engine tests: registry behaviour and cross-engine equivalence.

The equivalence class here is the project's core new invariant: every
registered replay engine must produce **byte-identical**
``SimulationResult.to_dict()`` output for the same job.  The deterministic
grid below covers fixed and resizable setups, warmup boundaries that do not
align with interval boundaries, odd-length final intervals, and both L1
targets; the randomised companion lives in
``tests/properties/test_property_engines.py``.
"""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays
from repro.resizing.static_strategy import StaticResizing
from repro.sim.engine import (
    DEFAULT_ENGINE,
    ColumnarEngine,
    ReferenceEngine,
    ReplayEngine,
    available_engines,
    engine_name,
    get_engine,
    register_engine,
)
from repro.sim.jobcache import JobCache
from repro.sim.runner import SimJob, SweepRunner, TraceSpec
from repro.sim.simulator import L1Setup, Simulator
from repro.sim.sweep import make_job


@pytest.fixture(scope="module")
def system():
    return SystemConfig()


@pytest.fixture(scope="module")
def trace():
    return TraceSpec("gcc", 6_000).materialize()


def _build_setups(system, kind):
    """Fresh setups per run: strategies and organizations are stateful."""
    if kind == "fixed":
        return None, None
    if kind == "sets-static-d":
        org = SelectiveSets(system.l1d)
        return L1Setup(org, StaticResizing(org.config_for_capacity(8 * 1024))), None
    if kind == "ways-static-i":
        org = SelectiveWays(system.l1i)
        return None, L1Setup(org, StaticResizing(org.config_for_capacity(16 * 1024)))
    if kind == "hybrid-dynamic-d":
        org = HybridSetsAndWays(system.l1d)
        strategy = DynamicResizing(
            miss_bound=0.02, size_bound_bytes=8 * 1024, sense_interval_accesses=256
        )
        return L1Setup(org, strategy), None
    if kind == "dynamic-both":
        d_org = SelectiveSets(system.l1d)
        i_org = SelectiveWays(system.l1i)
        return (
            L1Setup(d_org, DynamicResizing(0.03, 8 * 1024, sense_interval_accesses=512)),
            L1Setup(i_org, DynamicResizing(0.01, 8 * 1024, sense_interval_accesses=512)),
        )
    raise AssertionError(kind)


class TestRegistry:
    def test_builtin_engines_are_listed(self):
        assert available_engines() == ["columnar", "columnar-scalar", "reference"]
        assert DEFAULT_ENGINE == "columnar"

    def test_get_engine_resolves_names_instances_and_default(self):
        assert isinstance(get_engine(), ColumnarEngine)
        assert isinstance(get_engine("reference"), ReferenceEngine)
        live = ColumnarEngine()
        assert get_engine(live) is live

    def test_get_engine_rejects_unknown_names(self):
        with pytest.raises(SimulationError, match="unknown replay engine"):
            get_engine("vectorized")

    def test_engine_name_validates(self):
        assert engine_name(None) is None
        assert engine_name("reference") == "reference"
        assert engine_name(ReferenceEngine()) == "reference"
        with pytest.raises(SimulationError):
            engine_name("nope")

        class Impostor(ReplayEngine):
            name = "columnar"  # claims a taken name without being registered

            def replay(self, trace, ctx):
                raise AssertionError("never runs")

        with pytest.raises(SimulationError, match="not registered"):
            engine_name(Impostor())

    def test_register_engine_rejects_name_collisions(self):
        class Clone(ReplayEngine):
            name = "reference"

            def replay(self, trace, ctx):
                raise AssertionError("never runs")

        with pytest.raises(SimulationError, match="already registered"):
            register_engine(Clone)
        # Re-registering the same class is a no-op, not an error.
        assert register_engine(ReferenceEngine) is ReferenceEngine

    def test_simulator_validates_engine_eagerly(self, system):
        with pytest.raises(SimulationError):
            Simulator(system, engine="typo")


SETUP_KINDS = ["fixed", "sets-static-d", "ways-static-i", "hybrid-dynamic-d", "dynamic-both"]


class TestEquivalence:
    @pytest.mark.parametrize("kind", SETUP_KINDS)
    @pytest.mark.parametrize(
        "interval,warmup",
        [
            (1500, 0),
            (997, 1234),  # odd interval, warmup not on an interval boundary
            (6_000 + 1, 0),  # single partial interval (interval > trace)
        ],
    )
    def test_engines_are_bit_identical(self, system, trace, kind, interval, warmup):
        results = {}
        for engine in ("reference", "columnar-scalar", "columnar"):
            d_setup, i_setup = _build_setups(system, kind)
            results[engine] = Simulator(system, engine=engine).run(
                trace,
                d_setup=d_setup,
                i_setup=i_setup,
                interval_instructions=interval,
                warmup_instructions=warmup,
            ).to_dict()
        assert results["reference"] == results["columnar-scalar"]
        assert results["reference"] == results["columnar"]

    def test_run_level_engine_override_beats_simulator_default(self, system, trace):
        simulator = Simulator(system, engine="reference")
        default = simulator.run(trace).to_dict()
        overridden = simulator.run(trace, engine="columnar").to_dict()
        assert default == overridden  # and neither path raises


class TestJobIntegration:
    def test_make_job_carries_the_simulator_engine(self, system):
        job = make_job(Simulator(system, engine="reference"), TraceSpec("gcc", 2_000))
        assert job.engine == "reference"
        default_job = make_job(Simulator(system), TraceSpec("gcc", 2_000))
        assert default_job.engine is None

    def test_fingerprint_ignores_the_engine_choice(self, system):
        reference = SimJob(trace=TraceSpec("gcc", 2_000), system=system, engine="reference")
        columnar = SimJob(trace=TraceSpec("gcc", 2_000), system=system, engine="columnar")
        unset = SimJob(trace=TraceSpec("gcc", 2_000), system=system)
        assert reference.fingerprint() == columnar.fingerprint() == unset.fingerprint()

    def test_cache_serves_results_across_engines(self, system, tmp_path):
        """A result simulated by one engine is a warm hit for the other."""
        cache = JobCache(tmp_path / "jobs")
        with SweepRunner(cache=cache) as runner:
            first = runner.run_one(
                SimJob(trace=TraceSpec("gcc", 2_000), system=system, engine="reference")
            )
        assert len(cache) == 1
        with SweepRunner(cache=cache) as runner:
            second = runner.run_one(
                SimJob(trace=TraceSpec("gcc", 2_000), system=system, engine="columnar")
            )
            assert runner.simulate_count == 0
            assert runner.cache_hits == 1
        assert first.to_dict() == second.to_dict()

    def test_sweep_results_identical_across_engines(self, system, tmp_path):
        """Whole submitted batches agree between engines (no cache)."""
        outputs = {}
        for engine in ("reference", "columnar"):
            org = SelectiveSets(system.l1d)
            jobs = [
                make_job(
                    Simulator(system, engine=engine),
                    TraceSpec("compress", 3_000),
                    d_setup=L1Setup(org, StaticResizing(config)),
                    warmup_instructions=300,
                )
                for config in org.ladder()[:3]
            ]
            with SweepRunner() as runner:
                outputs[engine] = [r.to_dict() for r in runner.run(jobs)]
        assert outputs["reference"] == outputs["columnar"]
