"""Tests for the parallel sweep engine (SweepRunner + job specs)."""

import dataclasses

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.static_strategy import StaticResizing
from repro.sim.jobcache import JobCache
from repro.sim.runner import (
    L1SetupSpec,
    SimJob,
    StrategySpec,
    SweepRunner,
    TraceSpec,
    execute_job,
)
from repro.sim.simulator import L1Setup, Simulator
from repro.sim.sweep import DCACHE, make_job, profile_static, run_baseline


class SpawnSets(SelectiveSets):
    """Module-level custom organization (picklable by reference into workers)."""

    name = "spawn-sets"


class LateSets(SelectiveSets):
    """Registered only after a pool has already started (see test below)."""

    name = "late-sets"


@pytest.fixture(scope="module")
def system():
    return SystemConfig()


@pytest.fixture(scope="module")
def organization(system):
    return SelectiveSets(system.l1d)


@pytest.fixture(scope="module")
def ladder_jobs(system, organization):
    """A baseline job plus one static job per ladder size (small trace)."""
    trace = TraceSpec("m88ksim", 3_000)
    jobs = [SimJob(trace=trace, system=system, interval_instructions=500)]
    for config in organization.ladder():
        jobs.append(
            SimJob(
                trace=trace,
                system=system,
                d_setup=L1SetupSpec(
                    organization=organization.name, strategy=StrategySpec.static(config)
                ),
                interval_instructions=500,
            )
        )
    return jobs


def results_equal(a, b) -> bool:
    return dataclasses.asdict(a) == dataclasses.asdict(b)


class TestSpecs:
    def test_trace_spec_materialises_deterministically(self):
        spec = TraceSpec("gcc", 2_000)
        first, second = spec.materialize(), spec.materialize()
        assert first.records == second.records
        assert first.memory_level_parallelism == second.memory_level_parallelism

    def test_setup_spec_roundtrip_static(self, system, organization):
        config = organization.ladder()[-1]
        setup = L1Setup(organization, StaticResizing(config))
        spec = L1SetupSpec.from_setup(setup)
        assert spec.organization == organization.name
        assert spec.strategy.kind == "static"
        rebuilt = spec.build(system.l1d)
        assert rebuilt.organization.configs == organization.configs
        assert rebuilt.strategy.config == config

    def test_setup_spec_roundtrip_dynamic(self, system, organization):
        strategy = DynamicResizing(
            miss_bound=3.5, size_bound_bytes=4096, sense_interval_accesses=512
        )
        spec = L1SetupSpec.from_setup(L1Setup(organization, strategy))
        rebuilt = spec.build(system.l1d).strategy
        assert isinstance(rebuilt, DynamicResizing)
        assert rebuilt.miss_bound == 3.5
        assert rebuilt.size_bound_bytes == 4096
        assert rebuilt.sense_interval_accesses == 512

    def test_unregistered_organization_rejected(self, system):
        class Exotic(SelectiveSets):
            name = "exotic-sets"

        with pytest.raises(SimulationError):
            L1SetupSpec.from_setup(L1Setup(Exotic(system.l1d), None))

    def test_subclass_inheriting_registered_name_rejected(self, system):
        # A subclass that *inherits* "selective-sets" must not be silently
        # rebuilt as plain SelectiveSets in workers.
        class ShadowSets(SelectiveSets):
            pass

        with pytest.raises(SimulationError, match="not registered"):
            L1SetupSpec.from_setup(L1Setup(ShadowSets(system.l1d), None))

    def test_geometry_mismatch_preserved_through_spec(self, system):
        # An organization built on a different geometry than the target cache
        # must still be rejected after the spec round-trip (the live
        # L1Setup.build guard this replaces).
        from repro.common.config import CacheGeometry
        from repro.sim.sweep import run_with_setups

        big_org = SelectiveSets(CacheGeometry(64 * 1024, 2))
        with pytest.raises(SimulationError, match="does not match"):
            run_with_setups(
                Simulator(system), TraceSpec("gcc", 2_000), d_setup=L1Setup(big_org, None)
            )

    def test_custom_registration_reaches_spawned_workers(self, system):
        # Spawned workers import runner.py fresh; the pool initializer must
        # restore custom registrations.  (Module-level class so it pickles
        # by reference into the spawn worker.)
        from repro.sim.runner import register_organization

        register_organization(SpawnSets)
        job = SimJob(
            trace=TraceSpec("gcc", 1_500),
            system=system,
            d_setup=L1SetupSpec(organization="spawn-sets"),
            interval_instructions=500,
        )
        jobs = [job, SimJob(trace=TraceSpec("gcc", 1_500), system=system,
                            interval_instructions=500)]
        with SweepRunner(jobs=2, mp_start_method="spawn") as runner:
            results = runner.run(jobs)
        assert results[0].l1d_label.endswith("(spawn-sets/none)")

    def test_conflicting_registration_rejected(self):
        from repro.sim.runner import register_organization

        class ImposterSets(SelectiveSets):
            name = "selective-sets"  # taken by the real SelectiveSets

        with pytest.raises(SimulationError, match="already registered"):
            register_organization(ImposterSets)
        # Re-registering the same class is a no-op, not a conflict.
        register_organization(SelectiveSets)

    def test_bad_worker_count_rejected(self):
        with pytest.raises(SimulationError):
            SweepRunner(jobs=0)

    def test_trace_memo_is_bounded(self):
        from repro.sim import runner as runner_module

        for n in range(1_000, 1_000 + 2 * runner_module._TRACE_MEMO_MAX):
            runner_module.resolve_trace(TraceSpec("gcc", n))
        assert len(runner_module._TRACE_MEMO) <= runner_module._TRACE_MEMO_MAX


class TestSweepRunner:
    def test_parallel_results_equal_serial(self, ladder_jobs):
        serial = SweepRunner(jobs=1).run(ladder_jobs)
        parallel = SweepRunner(jobs=2).run(ladder_jobs)
        assert len(serial) == len(parallel) == len(ladder_jobs)
        for left, right in zip(serial, parallel):
            assert results_equal(left, right)

    def test_results_keep_input_order(self, ladder_jobs):
        runner = SweepRunner(jobs=2)
        results = runner.run(ladder_jobs)
        # The baseline (first job) is the only fixed/fixed run.
        assert results[0].l1d_label.endswith("(fixed)")
        assert runner.simulate_count == len(ladder_jobs)

    def test_cache_serves_second_batch(self, tmp_path, ladder_jobs):
        cache = JobCache(tmp_path / "cache")
        cold = SweepRunner(jobs=2, cache=cache)
        first = cold.run(ladder_jobs)
        assert cold.simulate_count == len(ladder_jobs)
        assert cold.cache_hits == 0

        warm = SweepRunner(jobs=2, cache=cache)
        second = warm.run(ladder_jobs)
        assert warm.simulate_count == 0
        assert warm.cache_hits == len(ladder_jobs)
        for left, right in zip(first, second):
            assert results_equal(left, right)

    def test_mixed_hit_miss_batch(self, tmp_path, ladder_jobs):
        cache = JobCache(tmp_path / "cache")
        SweepRunner(cache=cache).run(ladder_jobs[:2])
        runner = SweepRunner(cache=cache)
        runner.run(ladder_jobs)
        assert runner.cache_hits == 2
        assert runner.simulate_count == len(ladder_jobs) - 2

    def test_registration_after_pool_start_reaches_workers(self, system, ladder_jobs):
        # Registering an organization after the pool exists must recreate
        # the pool so workers see the new class.
        from repro.sim.runner import register_organization

        with SweepRunner(jobs=2) as runner:
            runner.run(ladder_jobs[:2])  # starts the pool
            register_organization(LateSets)
            late_jobs = [
                SimJob(
                    trace=TraceSpec("gcc", 1_500), system=system,
                    d_setup=L1SetupSpec(organization="late-sets"),
                    interval_instructions=500,
                ),
                SimJob(trace=TraceSpec("gcc", 1_500), system=system,
                       interval_instructions=500),
            ]
            results = runner.run(late_jobs)
        assert results[0].l1d_label.endswith("(late-sets/none)")

    def test_failed_job_does_not_discard_sibling_results(self, tmp_path, system, ladder_jobs):
        # One bad job in a batch must raise — but only after every completed
        # sibling simulation has been cached.
        from repro.common.errors import WorkloadError

        cache = JobCache(tmp_path / "cache")
        bad = SimJob(trace=TraceSpec("no-such-app", 1_500), system=system)
        batch = [ladder_jobs[0], bad, *ladder_jobs[1:3]]
        runner = SweepRunner(jobs=2, cache=cache)
        with pytest.raises(WorkloadError):
            runner.run(batch)
        assert runner.simulate_count == len(batch) - 1

        warm = SweepRunner(cache=cache)
        warm.run([ladder_jobs[0], *ladder_jobs[1:3]])
        assert warm.simulate_count == 0  # siblings were all persisted

    def test_run_one_matches_execute_job(self, ladder_jobs):
        direct = execute_job(ladder_jobs[0])
        via_runner = SweepRunner().run_one(ladder_jobs[0])
        assert results_equal(direct, via_runner)


class TestSweepIntegration:
    """The sweep functions produce identical numbers through any runner."""

    @pytest.fixture(scope="class")
    def sim_and_trace(self, system):
        return Simulator(system), TraceSpec("m88ksim", 3_000)

    def test_profile_static_serial_vs_parallel(self, sim_and_trace, organization):
        simulator, trace = sim_and_trace
        serial = profile_static(
            simulator, trace, organization, target=DCACHE, warmup_instructions=300
        )
        parallel = profile_static(
            simulator, trace, organization, target=DCACHE, warmup_instructions=300,
            runner=SweepRunner(jobs=2),
        )
        assert serial.best_config == parallel.best_config
        assert results_equal(serial.baseline, parallel.baseline)
        for config in organization.ladder():
            assert results_equal(serial.results[config], parallel.results[config])

    def test_profile_matches_direct_simulator_run(self, sim_and_trace, organization):
        simulator, trace = sim_and_trace
        profile = profile_static(
            simulator, trace, organization, target=DCACHE, warmup_instructions=300
        )
        config = organization.ladder()[-1]
        direct = simulator.run(
            trace.materialize(),
            d_setup=L1Setup(organization, StaticResizing(config)),
            warmup_instructions=300,
        )
        assert results_equal(profile.results[config], direct)

    def test_strategy_subclass_not_downgraded_to_base(self, system, organization):
        # A DynamicResizing subclass with overridden behaviour must not be
        # silently rebuilt as plain DynamicResizing: it routes to the
        # in-process fallback where its overrides actually run.
        from repro.sim.sweep import run_with_setups

        calls = []

        class CountingDynamic(DynamicResizing):
            def observe_interval(self, accesses, misses, current):
                calls.append(accesses)
                return super().observe_interval(accesses, misses, current)

        strategy = CountingDynamic(
            miss_bound=5.0, size_bound_bytes=4096, sense_interval_accesses=256
        )
        run_with_setups(
            Simulator(system), TraceSpec("gcc", 2_000),
            d_setup=L1Setup(organization, strategy), warmup_instructions=200,
        )
        assert calls, "subclass observe_interval was never invoked"

    def test_custom_strategy_falls_back_to_direct_run(self, system, organization):
        # A strategy class the spec layer cannot express must still work
        # through run_with_setups (direct in-process execution, as pre-engine).
        from repro.resizing.strategy import ResizingStrategy
        from repro.sim.sweep import run_with_setups

        class AlwaysSmallest(ResizingStrategy):
            name = "always-smallest"

            def initial_config(self):
                return self.organization.min_config

        simulator = Simulator(system)
        trace = TraceSpec("gcc", 2_000)
        result = run_with_setups(
            simulator, trace, d_setup=L1Setup(organization, AlwaysSmallest()),
            warmup_instructions=200,
        )
        direct = simulator.run(
            trace.materialize(),
            d_setup=L1Setup(organization, AlwaysSmallest()),
            warmup_instructions=200,
        )
        assert results_equal(result, direct)
        assert result.average_l1d_capacity < system.l1d.capacity_bytes

    def test_unregistered_org_profiles_via_direct_fallback(self, system):
        # The legacy live-object API: an unregistered subclass still profiles
        # (in-process, uncached) and matches the registered equivalent's
        # numbers exactly.
        from repro.sim.sweep import profile_static, run_dynamic

        class PrivateSets(SelectiveSets):
            name = "private-sets"

        simulator = Simulator(system)
        trace = TraceSpec("m88ksim", 3_000)
        private = profile_static(
            simulator, trace, PrivateSets(system.l1d), warmup_instructions=300
        )
        registered = profile_static(
            simulator, trace, SelectiveSets(system.l1d), warmup_instructions=300
        )
        assert private.best_config == registered.best_config
        # Identical numbers; only the organization-name label may differ.
        left = dataclasses.asdict(private.best_result)
        right = dataclasses.asdict(registered.best_result)
        assert left.pop("l1d_label").endswith("(private-sets/static)")
        right.pop("l1d_label")
        assert left == right

        parameters = private.dynamic_parameters(sense_interval_accesses=512)
        dynamic = run_dynamic(
            simulator, trace, PrivateSets(system.l1d), parameters,
            warmup_instructions=300, initial_config=private.best_config,
        )
        assert dynamic.average_l1d_capacity <= dynamic.full_l1d_capacity

    def test_inline_trace_jobs_supported(self, system, organization):
        simulator = Simulator(system)
        trace = TraceSpec("gcc", 2_000).materialize()
        baseline = run_baseline(simulator, trace, warmup_instructions=200)
        job = make_job(simulator, trace, warmup_instructions=200)
        assert results_equal(baseline, execute_job(job))
