"""Tests for the simulation result container."""

import pytest

from repro.metrics.breakdown import EnergyBreakdown
from repro.sim.results import SimulationResult


def _result(energy_total=100.0, cycles=1000.0, **overrides) -> SimulationResult:
    result = SimulationResult(workload="test", core_kind="out-of-order-nonblocking")
    result.energy = EnergyBreakdown(core=energy_total)
    result.cycles = cycles
    result.instructions = 2000
    result.full_l1d_capacity = 32 * 1024
    result.full_l1i_capacity = 32 * 1024
    result.average_l1d_capacity = 32 * 1024
    result.average_l1i_capacity = 32 * 1024
    for name, value in overrides.items():
        setattr(result, name, value)
    return result


def test_energy_delay_and_ipc():
    result = _result()
    assert result.energy_delay == pytest.approx(100.0 * 1000.0)
    assert result.ipc == pytest.approx(2.0)


def test_miss_ratios():
    result = _result(l1d_accesses=1000, l1d_misses=50, l1i_accesses=400, l1i_misses=4)
    assert result.l1d_miss_ratio == pytest.approx(0.05)
    assert result.l1i_miss_ratio == pytest.approx(0.01)


def test_energy_delay_reduction_vs_baseline():
    baseline = _result(energy_total=100.0, cycles=1000.0)
    better = _result(energy_total=80.0, cycles=1000.0)
    assert better.energy_delay_reduction(baseline) == pytest.approx(20.0)
    assert baseline.energy_delay_reduction(better) < 0


def test_slowdown_vs_baseline():
    baseline = _result(cycles=1000.0)
    slower = _result(cycles=1030.0)
    assert slower.slowdown_vs(baseline) == pytest.approx(0.03)


def test_size_reductions():
    result = _result(average_l1d_capacity=16 * 1024, average_l1i_capacity=8 * 1024)
    assert result.l1d_size_reduction() == pytest.approx(50.0)
    assert result.l1i_size_reduction() == pytest.approx(75.0)
    assert result.combined_size_reduction() == pytest.approx(62.5)


def test_summary_contains_headline_fields():
    summary = _result().summary()
    for key in ("workload", "cycles", "energy_delay", "ipc", "l1d_miss_ratio"):
        assert key in summary
