"""Tests for profiling sweeps and the dynamic runner."""

import pytest

from repro.common.errors import SimulationError
from repro.resizing.selective_sets import SelectiveSets
from repro.sim.sweep import DCACHE, ICACHE, profile_static, run_baseline, run_dynamic


@pytest.fixture(scope="module")
def sweep(base_system_module, simulator_module, trace_module):
    organization = SelectiveSets(base_system_module.l1d)
    baseline = run_baseline(simulator_module, trace_module, warmup_instructions=800)
    profile = profile_static(
        simulator_module, trace_module, organization,
        target=DCACHE, baseline=baseline, warmup_instructions=800,
    )
    return organization, baseline, profile


@pytest.fixture(scope="module")
def base_system_module():
    from repro.common.config import SystemConfig

    return SystemConfig()


@pytest.fixture(scope="module")
def simulator_module(base_system_module):
    from repro.sim.simulator import Simulator

    return Simulator(base_system_module)


@pytest.fixture(scope="module")
def trace_module():
    from repro.workloads.generator import WorkloadGenerator
    from repro.workloads.profiles import get_profile

    return WorkloadGenerator(get_profile("m88ksim")).generate(10_000)


class TestStaticProfile:
    def test_profiles_every_ladder_size(self, sweep):
        organization, _, profile = sweep
        assert len(profile.points) == len(organization.ladder())
        assert set(profile.results) == set(organization.ladder())

    def test_best_config_minimises_energy_delay(self, sweep):
        _, _, profile = sweep
        best = profile.best_point
        assert best.energy_delay == min(point.energy_delay for point in profile.points)

    def test_small_working_set_application_downsizes(self, sweep):
        # m88ksim's working set is ~3K, so the best static size must be well
        # below the full 32K.
        _, _, profile = sweep
        assert profile.best_config.capacity_bytes <= 8 * 1024
        assert profile.size_reduction() >= 50.0
        assert profile.energy_delay_reduction() > 5.0

    def test_reductions_are_relative_to_the_baseline(self, sweep):
        _, baseline, profile = sweep
        expected = profile.best_result.energy_delay_reduction(baseline)
        assert profile.energy_delay_reduction() == pytest.approx(expected)

    def test_dynamic_parameters_derived_from_profile(self, sweep):
        _, _, profile = sweep
        parameters = profile.dynamic_parameters(sense_interval_accesses=512)
        assert parameters.sense_interval_accesses == 512
        assert parameters.miss_bound > 0
        assert parameters.size_bound_bytes <= profile.best_config.capacity_bytes


class TestDynamicRunner:
    def test_dynamic_run_produces_resizes_or_matches_static(
        self, sweep, simulator_module, trace_module
    ):
        organization, baseline, profile = sweep
        parameters = profile.dynamic_parameters(sense_interval_accesses=512)
        result = run_dynamic(
            simulator_module, trace_module, organization, parameters,
            target=DCACHE, warmup_instructions=800, initial_config=profile.best_config,
        )
        assert result.average_l1d_capacity <= result.full_l1d_capacity
        assert result.l1d_accesses == baseline.l1d_accesses

    def test_unknown_target_rejected(self, sweep, simulator_module, trace_module):
        organization, _, profile = sweep
        parameters = profile.dynamic_parameters()
        with pytest.raises(SimulationError):
            run_dynamic(
                simulator_module, trace_module, organization, parameters, target="l3cache"
            )

    def test_icache_target_resizes_the_icache(
        self, base_system_module, simulator_module, trace_module
    ):
        organization = SelectiveSets(base_system_module.l1i)
        profile = profile_static(
            simulator_module, trace_module, organization, target=ICACHE, warmup_instructions=800
        )
        assert profile.best_result.average_l1i_capacity <= profile.best_result.full_l1i_capacity
        assert profile.size_reduction() >= 0.0
