"""Tests for the on-disk trace cache and its resolve_trace wiring."""

import pytest

from repro.sim.runner import (
    SweepRunner,
    TraceSpec,
    _TRACE_MEMO,
    get_trace_cache,
    resolve_trace,
    set_trace_cache,
)
from repro.sim.tracecache import TraceCache


@pytest.fixture(autouse=True)
def _isolate_process_state():
    """Each test starts with no process-level trace cache and a cold memo."""
    _TRACE_MEMO.clear()
    set_trace_cache(None)
    yield
    _TRACE_MEMO.clear()
    set_trace_cache(None)


class TestTraceCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = TraceCache(tmp_path / "traces")
        spec = TraceSpec("gcc", 2_000)
        trace = spec.materialize()
        assert cache.get(spec) is None
        cache.put(spec, trace)
        loaded = cache.get(spec)
        assert loaded is not None
        assert loaded.records == trace.records
        assert loaded.name == trace.name
        assert len(cache) == 1
        assert spec in cache

    def test_distinct_specs_have_distinct_keys(self):
        base = TraceCache.key_for(TraceSpec("gcc", 2_000))
        assert base != TraceCache.key_for(TraceSpec("swim", 2_000))
        assert base != TraceCache.key_for(TraceSpec("gcc", 2_001))
        assert base != TraceCache.key_for(TraceSpec("gcc", 2_000, seed=7))
        assert base == TraceCache.key_for(TraceSpec("gcc", 2_000))

    def test_corrupt_entries_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        spec = TraceSpec("gcc", 1_500)
        cache.put(spec, spec.materialize())
        entry = cache._entry_path(cache.key_for(spec))
        entry.write_bytes(b"garbage")
        assert cache.get(spec) is None
        assert cache.misses == 1

    def test_truncated_entries_miss(self, tmp_path):
        cache = TraceCache(tmp_path)
        spec = TraceSpec("gcc", 1_500)
        cache.put(spec, spec.materialize())
        entry = cache._entry_path(cache.key_for(spec))
        entry.write_bytes(entry.read_bytes()[:-20])
        assert cache.get(spec) is None

    def test_corrupt_name_region_misses(self, tmp_path):
        from repro.workloads.trace import _HEADER

        cache = TraceCache(tmp_path)
        spec = TraceSpec("gcc", 1_500)
        cache.put(spec, spec.materialize())
        entry = cache._entry_path(cache.key_for(spec))
        payload = bytearray(entry.read_bytes())
        payload[_HEADER.size] = 0xFF  # undecodable UTF-8 in the name bytes
        entry.write_bytes(bytes(payload))
        assert cache.get(spec) is None  # a miss, not a crash

    def test_runner_inline_execution_pins_its_own_trace_cache(self, tmp_path):
        """A later runner's trace_cache must not redirect an earlier one."""
        from repro.common.config import SystemConfig
        from repro.sim.runner import SimJob

        first = SweepRunner(trace_cache=str(tmp_path / "first"))
        SweepRunner(trace_cache=str(tmp_path / "second"))  # steals the global
        _TRACE_MEMO.clear()
        first.run_one(SimJob(trace=TraceSpec("gcc", 1_500), system=SystemConfig()))
        assert list((tmp_path / "first").glob("*/*.trace"))
        assert not list((tmp_path / "second").glob("*/*.trace"))
        # The batch-scoped pin restored the process-level cache afterwards.
        assert get_trace_cache().directory == tmp_path / "second"


class TestResolveTraceWiring:
    def test_resolve_populates_the_disk_cache(self, tmp_path):
        cache = set_trace_cache(str(tmp_path / "traces"))
        spec = TraceSpec("gcc", 2_000)
        trace = resolve_trace(spec)
        assert len(cache) == 1
        assert cache.get(spec).records == trace.records

    def test_resolve_loads_from_disk_instead_of_regenerating(self, tmp_path, monkeypatch):
        cache = set_trace_cache(str(tmp_path / "traces"))
        spec = TraceSpec("gcc", 2_000)
        original = resolve_trace(spec)
        _TRACE_MEMO.clear()  # force past the in-memory memo

        def boom(self):
            raise AssertionError("trace regenerated despite a warm disk cache")

        monkeypatch.setattr(TraceSpec, "materialize", boom)
        reloaded = resolve_trace(spec)
        assert reloaded.records == original.records
        assert cache.hits == 1

    def test_no_cache_configured_never_touches_disk(self, tmp_path):
        spec = TraceSpec("gcc", 1_500)
        resolve_trace(spec)
        assert get_trace_cache() is None
        assert list(tmp_path.iterdir()) == []

    def test_runner_snapshots_the_process_cache(self, tmp_path):
        runner = SweepRunner(trace_cache=str(tmp_path / "tc"))
        assert runner.trace_cache is get_trace_cache()
        assert runner.trace_cache.directory == tmp_path / "tc"
        # A later runner without its own cache inherits the process one.
        assert SweepRunner().trace_cache is runner.trace_cache
        # Clearing the process cache detaches future runners.
        set_trace_cache(None)
        assert SweepRunner().trace_cache is None

    def test_inline_trace_bypasses_every_cache(self, tmp_path):
        cache = set_trace_cache(str(tmp_path / "traces"))
        trace = TraceSpec("gcc", 1_500).materialize()
        _TRACE_MEMO.clear()
        cache.hits = cache.misses = 0
        assert resolve_trace(trace) is trace
        assert cache.hits == 0 and cache.misses == 0
        assert len(_TRACE_MEMO) == 0
