"""Chaos suite: deterministic fault injection across the sweep stack.

The contract under test (docs/ROBUSTNESS.md): **any fault plan yields
results byte-identical to a clean run.**  Worker crashes and hangs are
retried, shared-memory failures fall back to the pickle transport, corrupt
cache entries self-heal into misses — so injected faults may cost time and
retries, never correctness.  Each scenario runs under both fork and spawn
start methods where a pool is involved, and checks that no shared-memory
segments or worker processes leak.
"""

import dataclasses
import glob
import gc
import multiprocessing
import os

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import (
    ConfigurationError,
    JobTimeoutError,
    SimulationError,
    TransientJobError,
    WorkerCrashError,
)
from repro.sim import faults, shm
from repro.sim.jobcache import JobCache
from repro.sim.runner import (
    L1SetupSpec,
    RetryPolicy,
    SimJob,
    StrategySpec,
    SweepRunner,
    TraceSpec,
)
from repro.sim.tracecache import TraceCache

START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    """No plan leaks into or out of any test (env included)."""
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    faults.reset()
    yield
    faults.reset()


@pytest.fixture(scope="module")
def small_jobs():
    """Four small jobs: a baseline plus three resized-cache variants."""
    from repro.resizing.selective_sets import SelectiveSets

    system = SystemConfig()
    trace = TraceSpec("m88ksim", 3_000)
    organization = SelectiveSets(system.l1d)
    jobs = [SimJob(trace=trace, system=system, interval_instructions=500)]
    for config in organization.ladder()[:3]:
        jobs.append(
            SimJob(
                trace=trace,
                system=system,
                d_setup=L1SetupSpec(
                    organization=organization.name,
                    strategy=StrategySpec.static(config),
                ),
                interval_instructions=500,
            )
        )
    return jobs


@pytest.fixture(scope="module")
def clean_results(small_jobs):
    """The reference: the same jobs executed serially with no plan."""
    faults.reset()
    runner = SweepRunner(jobs=1)
    futures = [runner.submit(job) for job in small_jobs]
    results = [future.result() for future in futures]
    runner.close()
    return [dataclasses.asdict(result) for result in results]


def _live_segments():
    gc.collect()
    return sorted(
        os.path.basename(path)
        for path in glob.glob(f"/dev/shm/{shm.SEGMENT_PREFIX}_{os.getpid()}_*")
    )


def run_under_plan(jobs, plan, start_method, **runner_kwargs):
    """Execute ``jobs`` on a 2-worker pool with ``plan`` armed; returns
    (results-as-dicts, runner) with the pool closed and leak checks done."""
    faults.install_plan(plan)
    before_children = len(multiprocessing.active_children())
    runner = SweepRunner(jobs=2, mp_start_method=start_method, **runner_kwargs)
    try:
        futures = [runner.submit(job) for job in jobs]
        results = [dataclasses.asdict(future.result()) for future in futures]
    finally:
        runner.close()
        faults.reset()
    assert _live_segments() == []
    assert len(multiprocessing.active_children()) <= before_children
    return results, runner


class TestPlanGrammar:
    def test_parse_full_plan(self):
        plan = faults.parse_plan(
            "worker_crash:job=3;hang:job=7,seconds=120;"
            "shm_publish_fail:segment=1;cache_corrupt:shard=2"
        )
        assert plan.fire("worker_crash") is None  # occurrence 1
        assert plan.fire("worker_crash") is None  # occurrence 2
        spec = plan.fire("worker_crash")  # occurrence 3 fires
        assert spec is not None and spec.ordinal == 3
        assert plan.fire("worker_crash") is None  # one-shot

    def test_ordinal_key_name_is_documentation_only(self):
        for clause in ("worker_crash:job=1", "worker_crash:n=1", "worker_crash:x=1"):
            plan = faults.parse_plan(clause)
            assert plan.fire("worker_crash") is not None

    def test_hang_seconds_argument(self):
        plan = faults.parse_plan("hang:job=1,seconds=2.5")
        spec = plan.fire("hang")
        assert spec.seconds == 2.5
        assert faults.parse_plan("hang:job=1").fire("hang").seconds == 3600.0

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:job=1",  # unknown kind
            "worker_crash",  # no ordinal clause
            "worker_crash:job=0",  # ordinal must be >= 1
            "worker_crash:job=-2",
            "worker_crash:job=soon",  # non-integer ordinal
            "hang:seconds=5",  # only the reserved arg, no ordinal
            "worker_crash:job",  # malformed pair
        ],
    )
    def test_malformed_plans_fail_loudly(self, bad):
        with pytest.raises(ConfigurationError):
            faults.parse_plan(bad)

    def test_install_reinstall_rearms_counters(self):
        plan = faults.install_plan("cache_corrupt:shard=1")
        assert faults.fire("cache_corrupt") is not None
        assert faults.fire("cache_corrupt") is None
        faults.install_plan(plan)  # fresh counters
        assert faults.fire("cache_corrupt") is not None

    def test_env_plan_loads_lazily_and_reset_forgets(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_PLAN", "cache_corrupt:shard=1")
        faults.reset()
        assert faults.plan_text() == "cache_corrupt:shard=1"
        assert faults.fire("cache_corrupt") is not None
        monkeypatch.delenv("REPRO_FAULT_PLAN")
        faults.reset()
        assert faults.active_plan() is None
        assert faults.fire("cache_corrupt") is None

    def test_empty_plan_means_no_plan(self):
        assert faults.install_plan("") is None
        assert faults.install_plan("   ") is None


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.1, max_delay=1.0)
        for attempt in (1, 2, 3):
            first = policy.backoff_delay("job-key", attempt)
            assert first == policy.backoff_delay("job-key", attempt)
            ceiling = min(policy.max_delay, policy.base_delay * 2 ** (attempt - 1))
            assert ceiling / 2 <= first < ceiling
        # Different jobs (and attempts) jitter apart.
        assert policy.backoff_delay("a", 1) != policy.backoff_delay("b", 1)
        assert policy.backoff_delay("a", 1) != policy.backoff_delay("a", 2)

    def test_only_transient_errors_retry_within_budget(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.should_retry(WorkerCrashError("died"), 1)
        assert policy.should_retry(JobTimeoutError("slow"), 2)
        assert not policy.should_retry(JobTimeoutError("slow"), 3)  # budget spent
        assert not policy.should_retry(SimulationError("deterministic"), 1)
        assert not policy.should_retry(ValueError("deterministic"), 1)

    def test_transient_errors_are_simulation_errors(self):
        # Existing `except SimulationError` handlers must keep catching them.
        assert issubclass(TransientJobError, SimulationError)
        assert issubclass(WorkerCrashError, TransientJobError)
        assert issubclass(JobTimeoutError, TransientJobError)

    def test_invalid_policy_rejected(self):
        with pytest.raises(SimulationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(SimulationError):
            RetryPolicy(job_timeout=0.0)


@pytest.mark.parametrize("start_method", START_METHODS)
class TestChaosContract:
    """Injected faults never change results — only counters."""

    def test_worker_crash_is_retried_transparently(
        self, small_jobs, clean_results, start_method
    ):
        results, runner = run_under_plan(
            small_jobs, "worker_crash:job=2", start_method
        )
        assert results == clean_results
        assert runner.worker_deaths == 1
        assert runner.retries == 1
        assert runner.quarantined == []

    def test_hang_is_killed_and_retried(self, small_jobs, clean_results, start_method):
        results, runner = run_under_plan(
            small_jobs,
            "hang:job=1",  # wedges (default 3600s) until the timeout kills it
            start_method,
            retry_policy=RetryPolicy(job_timeout=1.5),
        )
        assert results == clean_results
        assert runner.timeouts == 1
        assert runner.retries == 1

    def test_shm_attach_failure_falls_back(self, small_jobs, clean_results, start_method):
        results, runner = run_under_plan(
            small_jobs, "shm_attach_fail:attach=1", start_method
        )
        assert results == clean_results
        assert runner.retries == 0  # a fallback, not a failure
        assert runner.worker_stats.get("shm_attach_failures", 0) >= 1

    def test_shm_publish_failure_falls_back(
        self, small_jobs, clean_results, start_method
    ):
        before = shm.stats_snapshot()["shm_publish_failures"]
        results, runner = run_under_plan(
            small_jobs, "shm_publish_fail:segment=1", start_method
        )
        assert results == clean_results
        # The declined publish was counted in the parent; the jobs shipped
        # their trace in spec form and the workers re-materialised it.
        assert shm.stats_snapshot()["shm_publish_failures"] == before + 1
        assert runner.retries == 0  # a fallback, not a failure

    def test_combined_plan_still_byte_identical(
        self, small_jobs, clean_results, start_method
    ):
        results, runner = run_under_plan(
            small_jobs,
            "worker_crash:job=3;hang:job=1;shm_publish_fail:segment=1",
            start_method,
            retry_policy=RetryPolicy(job_timeout=1.5),
        )
        assert results == clean_results
        assert runner.worker_deaths == 1
        assert runner.timeouts == 1
        assert runner.retries == 2


@pytest.mark.parametrize("start_method", START_METHODS)
class TestQuarantine:
    def test_exhausted_retries_quarantine_without_poisoning_siblings(
        self, small_jobs, clean_results, start_method
    ):
        # Crash the 2nd dispatch *and* both of its retries: attempts are
        # fresh dispatches, so they draw the next ordinals of their own.
        faults.install_plan("worker_crash:job=2;worker_crash:job=5;worker_crash:job=6")
        runner = SweepRunner(
            jobs=2,
            mp_start_method=start_method,
            retry_policy=RetryPolicy(max_attempts=3, base_delay=0.01),
        )
        try:
            futures = [runner.submit(job) for job in small_jobs]
            runner.drain()
            outcomes = [future.failed() for future in futures]
            assert outcomes.count(True) == 1
            victim = futures[outcomes.index(True)]
            with pytest.raises(WorkerCrashError):
                victim.result()
            assert victim.attempts == 3
            # Siblings resolved, and to the clean-run values.
            survivors = [
                dataclasses.asdict(future.result())
                for future in futures
                if not future.failed()
            ]
            expected = [
                clean for clean, failed in zip(clean_results, outcomes) if not failed
            ]
            assert survivors == expected
            assert len(runner.quarantined) == 1
            assert runner.quarantined[0]["attempts"] == 3
            assert runner.worker_deaths == 3
            assert runner.retries == 2
        finally:
            runner.close()
        assert _live_segments() == []

    def test_no_retries_policy_fails_fast(self, small_jobs, start_method):
        faults.install_plan("worker_crash:job=1")
        runner = SweepRunner(
            jobs=2,
            mp_start_method=start_method,
            retry_policy=RetryPolicy(max_attempts=1),
        )
        try:
            futures = [runner.submit(job) for job in small_jobs]
            runner.drain()
            failed = [future for future in futures if future.failed()]
            assert len(failed) == 1
            assert failed[0].attempts == 1
            assert runner.retries == 0
        finally:
            runner.close()


class TestCacheCorruption:
    def test_job_cache_torn_write_self_heals(self, small_jobs, clean_results, tmp_path):
        faults.install_plan("cache_corrupt:shard=1")
        first = SweepRunner(jobs=1, cache=JobCache(tmp_path / "cache"))
        results = [
            dataclasses.asdict(first.submit(job).result()) for job in small_jobs
        ]
        first.close()
        assert results == clean_results
        faults.reset()

        # A fresh runner over the damaged cache: the torn entry reads as a
        # corrupt miss, is deleted, and exactly one job re-simulates.
        second = SweepRunner(jobs=1, cache=JobCache(tmp_path / "cache"))
        healed = [
            dataclasses.asdict(second.submit(job).result()) for job in small_jobs
        ]
        assert healed == clean_results
        assert second.cache.corrupt_entries == 1
        assert second.simulate_count == 1
        assert second.cache_hits == len(small_jobs) - 1
        second.close()

        # The heal rewrote the entry: a third pass is all cache hits.
        third = SweepRunner(jobs=1, cache=JobCache(tmp_path / "cache"))
        for job in small_jobs:
            third.submit(job)
        third.drain()
        assert third.simulate_count == 0
        assert third.cache.corrupt_entries == 0
        third.close()

    def test_trace_cache_torn_write_self_heals(self, tmp_path):
        spec = TraceSpec("gcc", 2_000)
        reference = spec.materialize()

        faults.install_plan("trace_corrupt:entry=1")
        cache = TraceCache(tmp_path / "traces")
        cache.put(spec, reference)  # lands torn on disk
        faults.reset()

        assert cache.get(spec) is None  # self-healing miss
        assert cache.corrupt_entries == 1
        assert cache.misses == 1

        cache.put(spec, reference)  # regenerate-and-rewrite
        restored = cache.get(spec)
        assert restored is not None
        assert restored.records == reference.records

    def test_decoded_stream_torn_write_self_heals(self, tmp_path):
        cache = TraceCache(tmp_path / "traces")
        payload = b"decoded-columns" * 64

        faults.install_plan("trace_corrupt:entry=1")
        cache.put_decoded("digest", 63, payload)
        faults.reset()

        assert cache.get_decoded("digest", 63) is None
        assert cache.corrupt_entries == 1
        cache.put_decoded("digest", 63, payload)
        assert cache.get_decoded("digest", 63) == payload


class TestCheckpointAndInterrupt:
    def test_drain_writes_a_final_manifest(self, small_jobs, tmp_path):
        manifest_path = tmp_path / "checkpoint.json"
        runner = SweepRunner(jobs=1, checkpoint_path=manifest_path)
        for job in small_jobs:
            runner.submit(job)
        runner.drain()
        runner.close()

        import json

        manifest = json.loads(manifest_path.read_text())
        assert manifest["version"] == 1
        assert manifest["done"] is True
        assert manifest["interrupted"] is False
        assert manifest["simulated"] == len(small_jobs)
        assert manifest["pending"] == 0 and manifest["deferred"] == 0
        assert manifest["quarantined"] == []

    def test_interrupt_aborts_cleanly_and_marks_manifest(
        self, small_jobs, tmp_path, monkeypatch
    ):
        manifest_path = tmp_path / "checkpoint.json"
        runner = SweepRunner(jobs=2, checkpoint_path=manifest_path)
        for job in small_jobs:
            runner.submit(job)
        monkeypatch.setattr(
            runner,
            "_run_batch",
            lambda batch: (_ for _ in ()).throw(KeyboardInterrupt()),
        )
        with pytest.raises(KeyboardInterrupt):
            runner.drain()

        # Pool gone, segments unlinked, graph dropped; manifest says so.
        assert runner._pool is None
        assert runner.shm_segments == 0
        assert runner.pending_count == 0 and runner.deferred_count == 0
        assert _live_segments() == []

        import json

        manifest = json.loads(manifest_path.read_text())
        assert manifest["interrupted"] is True
        assert manifest["done"] is False

        # The runner stays usable: a fresh drain completes and clears the
        # interrupted marker.
        futures = [runner.submit(job) for job in small_jobs]
        monkeypatch.undo()
        runner.drain()
        assert all(not future.failed() for future in futures)
        manifest = json.loads(manifest_path.read_text())
        assert manifest["done"] is True and manifest["interrupted"] is False
        runner.close()


@pytest.mark.parametrize("start_method", START_METHODS)
class TestFaultDeterminism:
    def test_same_plan_fires_identically_across_runs(
        self, small_jobs, start_method
    ):
        counters = []
        for _ in range(2):
            before = shm.stats_snapshot()["shm_publish_failures"]
            _, runner = run_under_plan(
                small_jobs, "worker_crash:job=2;shm_publish_fail:segment=1", start_method
            )
            counters.append(
                (
                    runner.worker_deaths,
                    runner.retries,
                    shm.stats_snapshot()["shm_publish_failures"] - before,
                )
            )
        assert counters[0] == counters[1] == (1, 1, 1)
