"""Runner lifecycle hardening: idempotent close, bounded memos, progress
callbacks, future completion callbacks, and checkpoint integrity when two
runners share one cache directory.

These are the service-enabling properties: a long-lived server closes the
runner from signal handlers (re-entry), keeps it alive for days (memo
growth), observes per-request progress (callbacks), and may coexist with a
CLI sweep on the same cache dir (checkpoint atomicity).
"""

import json
import signal
import threading
import time

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.sim import faults
from repro.sim.future import SimFuture
from repro.sim.runner import RetryPolicy, SimJob, SweepRunner, TraceSpec


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_PLAN", raising=False)
    faults.reset()
    yield
    faults.reset()


def tiny_jobs(count=2, n_instructions=2_000):
    system = SystemConfig()
    return [
        SimJob(
            trace=TraceSpec("m88ksim", n_instructions + 500 * index),
            system=system,
            interval_instructions=500,
        )
        for index in range(count)
    ]


class TestCloseIdempotency:
    def test_close_twice_is_free(self):
        runner = SweepRunner(jobs=1)
        runner.run(tiny_jobs(1))
        runner.close()
        runner.close()  # second close: no error, no double teardown

    def test_close_reentry_is_a_no_op(self, monkeypatch):
        # Simulate a signal handler firing close() while close() is already
        # tearing down (the weakref.finalize / __del__ / Ctrl-C scenario).
        runner = SweepRunner(jobs=1)
        runner.run(tiny_jobs(1))
        reentered = []
        original_release_all = runner._segments.release_all

        def reentrant_release_all():
            # Inside the outer close(): a re-entrant call must bail out
            # immediately instead of racing the teardown.
            assert runner._closing
            reentered.append(True)
            runner.close()
            original_release_all()

        monkeypatch.setattr(runner._segments, "release_all", reentrant_release_all)
        runner.close()
        assert reentered == [True]
        # The guard reset afterwards: close() still works later.
        monkeypatch.setattr(runner._segments, "release_all", original_release_all)
        assert not runner._closing
        runner.close()

    def test_runner_stays_usable_after_close(self):
        runner = SweepRunner(jobs=1)
        first = runner.run(tiny_jobs(1))
        runner.close()
        second = runner.run(tiny_jobs(1))  # fresh pool on demand
        assert [r.instructions for r in first] == [r.instructions for r in second]
        runner.close()


class TestReleaseResults:
    def test_drops_settled_futures_keeps_pending(self):
        runner = SweepRunner(jobs=1)
        try:
            jobs = tiny_jobs(2)
            runner.run([jobs[0]])
            assert len(runner._memo) == 1
            pending = runner.submit(jobs[1])
            assert len(runner._memo) == 2
            runner.release_results()
            # The settled future is gone; the pending one survives so a
            # duplicate submission still shares its in-flight execution.
            assert len(runner._memo) == 1
            assert not pending.done()
            duplicate = runner.submit(jobs[1])
            assert duplicate is pending
            runner.drain()
            assert pending.done()
            runner.release_results()
            assert len(runner._memo) == 0
        finally:
            runner.close()

    def test_released_results_still_resolve_from_cache(self, tmp_path):
        from repro.sim.jobcache import JobCache

        cache = JobCache(tmp_path / "cache")
        runner = SweepRunner(jobs=1, cache=cache)
        try:
            job = tiny_jobs(1)[0]
            first = runner.run_one(job)
            runner.release_results()
            before = runner.simulate_count
            second = runner.run_one(job)
            assert runner.simulate_count == before  # cache hit, not a re-run
            assert first.instructions == second.instructions
        finally:
            runner.close()


class TestProgressCallback:
    def test_events_fire_per_settled_job(self):
        runner = SweepRunner(jobs=1)
        events = []
        runner.progress_callback = events.append
        try:
            runner.run(tiny_jobs(2))
        finally:
            runner.close()
        assert [event["kind"] for event in events] == ["result", "result"]
        assert sum(event["jobs"] for event in events) == 2
        assert events[-1]["simulated"] == runner.simulate_count

    def test_callback_exceptions_never_break_the_drain(self):
        runner = SweepRunner(jobs=1)

        def explode(event):
            raise RuntimeError("observer bug")

        runner.progress_callback = explode
        try:
            results = runner.run(tiny_jobs(1))
            assert len(results) == 1
        finally:
            runner.close()


class TestFutureCallbacks:
    def test_fires_on_resolve(self):
        future = SimFuture(runner=None)
        seen = []
        future.add_done_callback(seen.append)
        assert seen == []
        future._resolve("value")
        assert seen == [future]

    def test_fires_immediately_when_already_settled(self):
        future = SimFuture(runner=None)
        future._resolve("value")
        seen = []
        future.add_done_callback(seen.append)
        assert seen == [future]

    def test_fires_on_failure_and_swallows_callback_errors(self):
        future = SimFuture(runner=None)
        seen = []

        def bad(_):
            raise RuntimeError("callback bug")

        future.add_done_callback(bad)
        future.add_done_callback(seen.append)
        future._fail(SimulationError("boom"))
        assert seen == [future]
        assert future.failed()


def _ignore_sigterm():
    signal.signal(signal.SIGTERM, signal.SIG_IGN)


def _echo(payload):
    return payload


class TestWorkerReaping:
    def test_workers_die_on_terminate_despite_parent_signal_handler(self):
        # The service scenario: asyncio routes SIGTERM into the event
        # loop's self-pipe, fork-started workers inherit that disposition,
        # and a terminate() relying on the default action would never reap
        # them — close() would wedge on the join.  Workers must reset
        # SIGTERM to SIG_DFL at startup, making close() prompt regardless
        # of what the parent had installed at fork time.
        previous = signal.signal(signal.SIGTERM, lambda *args: None)
        try:
            runner = SweepRunner(jobs=2)
            try:
                runner.run(tiny_jobs(2))
            finally:
                started = time.monotonic()
                runner.close()
                elapsed = time.monotonic() - started
            assert elapsed < 4.0, f"close took {elapsed:.1f}s: workers ignored SIGTERM"
        finally:
            signal.signal(signal.SIGTERM, previous)

    def test_sigterm_immune_worker_is_kill_escalated(self, monkeypatch):
        # Even a worker that re-ignores SIGTERM after startup (an
        # initializer can do anything) must not wedge the reap: _discard
        # escalates to SIGKILL after the reap grace.
        from multiprocessing import get_context

        from repro.sim.pool import FaultTolerantPool

        monkeypatch.setattr(FaultTolerantPool, "_REAP_GRACE", 0.5)
        try:
            context = get_context("fork")
        except ValueError:
            pytest.skip("fork start method unavailable on this platform")
        pool = FaultTolerantPool(context, 1, _echo, initializer=_ignore_sigterm)
        # One settled task guarantees the initializer has run, so the
        # SIGTERM immunity is installed before the teardown starts.
        events = list(pool.run_batch([(0, "ping")]))
        assert [event.kind for event in events] == ["result"]
        started = time.monotonic()
        pool.terminate()
        pool.join()
        elapsed = time.monotonic() - started
        assert elapsed < 5.0, f"reap took {elapsed:.1f}s: escalation missing"
        assert len(pool) == 0


class TestSharedCheckpointIntegrity:
    def test_concurrent_writers_never_tear_the_manifest(self, tmp_path):
        # Two runners sharing one cache dir (a service plus a CLI sweep)
        # write the same checkpoint.json.  The atomic replace means a
        # reader may see either manifest but never a torn mix or a partial
        # write.
        path = tmp_path / "checkpoint.json"
        runners = [
            SweepRunner(jobs=1, checkpoint_path=path),
            SweepRunner(jobs=1, checkpoint_path=path),
        ]
        stop = threading.Event()
        errors = []

        def hammer(runner):
            while not stop.is_set():
                runner._write_checkpoint(final=True)

        threads = [
            threading.Thread(target=hammer, args=(runner,)) for runner in runners
        ]
        for thread in threads:
            thread.start()
        try:
            reads = 0
            while reads < 300:
                try:
                    text = path.read_text()
                except FileNotFoundError:
                    continue
                if not text:
                    errors.append("empty manifest read")
                    break
                try:
                    manifest = json.loads(text)
                except ValueError as exc:
                    errors.append(f"torn manifest: {exc}: {text[:80]!r}")
                    break
                assert manifest["version"] == 1
                reads += 1
        finally:
            stop.set()
            for thread in threads:
                thread.join()
            for runner in runners:
                runner.close()
        assert errors == []

    def test_quarantined_fingerprints_recorded_in_checkpoint(self, tmp_path):
        # A job that exhausts its retry budget lands in the checkpoint
        # manifest with its cache fingerprints, so --resume can name it.
        path = tmp_path / "checkpoint.json"
        faults.install_plan("worker_crash:job=1;worker_crash:job=2")
        runner = SweepRunner(
            jobs=2,  # the pool path: jobs=1 executes inline, no crash to inject
            checkpoint_path=path,
            retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01),
        )
        try:
            job = tiny_jobs(1)[0]
            future = runner.submit(job)
            runner.drain()
            assert future.failed()
        finally:
            runner.close()
        manifest = json.loads(path.read_text())
        assert len(manifest["quarantined"]) == 1
        entry = manifest["quarantined"][0]
        assert entry["attempts"] == 2
        assert entry["fingerprints"] == [job.fingerprint()]
        assert entry["job"]["workload"].startswith("m88ksim")
