"""Tests for the trace-driven simulator."""

import pytest

from repro.common.config import CoreKind
from repro.common.errors import SimulationError
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.static_strategy import StaticResizing
from repro.sim.simulator import L1Setup, Simulator
from repro.workloads.trace import Trace


class TestL1Setup:
    def test_default_setup_is_fixed(self, base_system):
        setup = L1Setup()
        assert not setup.is_resizable
        assert setup.describe() == "fixed"
        cache = setup.build(base_system.l1d, "l1d")
        assert cache.capacity_bytes == base_system.l1d.capacity_bytes

    def test_resizable_setup_builds_resizable_cache(self, base_system):
        organization = SelectiveSets(base_system.l1d)
        setup = L1Setup(organization, StaticResizing(organization.full_config))
        assert setup.is_resizable
        assert "selective-sets/static" == setup.describe()

    def test_strategy_without_organization_rejected(self):
        with pytest.raises(SimulationError):
            L1Setup(strategy=StaticResizing.__new__(StaticResizing))

    def test_geometry_mismatch_rejected(self, base_system, four_way_geometry):
        organization = SelectiveSets(four_way_geometry)
        setup = L1Setup(organization)
        with pytest.raises(SimulationError):
            setup.build(base_system.l1d, "l1d")


class TestBaselineRuns:
    def test_results_are_reproducible(self, simulator, tiny_trace):
        first = simulator.run(tiny_trace)
        second = simulator.run(tiny_trace)
        assert first.cycles == second.cycles
        assert first.energy.total == pytest.approx(second.energy.total)

    def test_counts_are_consistent(self, simulator, tiny_trace):
        result = simulator.run(tiny_trace)
        assert result.instructions == len(tiny_trace)
        assert result.l1d_accesses == tiny_trace.memory_references
        assert 0 < result.l1i_accesses < len(tiny_trace)
        assert result.cycles > 0
        assert result.energy.total > 0

    def test_warmup_excludes_leading_instructions(self, simulator, tiny_trace):
        # Warmup is applied at interval granularity: intervals that end inside
        # the warmup window are excluded from the reported statistics.
        full = simulator.run(tiny_trace, interval_instructions=500)
        warmed = simulator.run(tiny_trace, interval_instructions=500, warmup_instructions=1000)
        assert warmed.instructions == full.instructions - 1000
        assert warmed.l1d_miss_ratio <= full.l1d_miss_ratio

    def test_empty_trace_rejected(self, simulator):
        with pytest.raises(SimulationError):
            simulator.run(Trace("empty", []))

    def test_invalid_interval_rejected(self, simulator, tiny_trace):
        with pytest.raises(SimulationError):
            simulator.run(tiny_trace, interval_instructions=0)

    def test_average_capacity_equals_full_size_for_fixed_caches(self, simulator, tiny_trace):
        result = simulator.run(tiny_trace)
        assert result.average_l1d_capacity == pytest.approx(result.full_l1d_capacity)
        assert result.average_l1i_capacity == pytest.approx(result.full_l1i_capacity)


class TestResizableRuns:
    def test_static_resizing_reduces_l1d_energy(self, base_system, simulator, short_trace):
        organization = SelectiveSets(base_system.l1d)
        baseline = simulator.run(short_trace)
        resized = simulator.run(
            short_trace,
            d_setup=L1Setup(
                organization, StaticResizing(organization.config_for_capacity(8 * 1024))
            ),
        )
        assert resized.energy.l1d < baseline.energy.l1d
        assert resized.average_l1d_capacity == pytest.approx(8 * 1024)
        assert resized.l1d_label.startswith("32K")

    def test_static_resizing_of_icache_leaves_dcache_untouched(
        self, base_system, simulator, short_trace
    ):
        organization = SelectiveSets(base_system.l1i)
        baseline = simulator.run(short_trace)
        resized = simulator.run(
            short_trace,
            i_setup=L1Setup(
                organization, StaticResizing(organization.config_for_capacity(8 * 1024))
            ),
        )
        assert resized.energy.l1i < baseline.energy.l1i
        assert resized.l1d_accesses == baseline.l1d_accesses
        assert resized.average_l1d_capacity == pytest.approx(resized.full_l1d_capacity)

    def test_aggressive_downsizing_increases_misses_and_cycles(
        self, base_system, simulator, short_trace
    ):
        organization = SelectiveSets(base_system.l1d)
        baseline = simulator.run(short_trace)
        tiny = simulator.run(
            short_trace,
            d_setup=L1Setup(organization, StaticResizing(organization.min_config)),
        )
        assert tiny.l1d_miss_ratio > baseline.l1d_miss_ratio
        assert tiny.cycles > baseline.cycles

    def test_dynamic_resizing_resizes_at_runtime(self, base_system, simulator, short_trace):
        organization = SelectiveSets(base_system.l1d)
        strategy = DynamicResizing(
            miss_bound=30, size_bound_bytes=2 * 1024, sense_interval_accesses=256,
            settle_intervals=0, reversal_backoff_intervals=0,
        )
        result = simulator.run(short_trace, d_setup=L1Setup(organization, strategy))
        assert result.l1d_resizes > 0
        assert result.average_l1d_capacity < result.full_l1d_capacity

    def test_inorder_core_runs_slower_than_ooo(self, base_system, inorder_system, short_trace):
        ooo = Simulator(base_system).run(short_trace)
        inorder = Simulator(inorder_system).run(short_trace)
        assert inorder.cycles > ooo.cycles
        assert inorder.core_kind == CoreKind.IN_ORDER_BLOCKING.value
