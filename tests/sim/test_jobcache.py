"""Tests for the on-disk job cache and job fingerprinting."""

import dataclasses
import json

import pytest

from repro.common.config import CacheGeometry, CoreConfig, CoreKind, SystemConfig
from repro.sim.jobcache import CACHE_FORMAT_VERSION, JobCache
from repro.sim.runner import (
    L1SetupSpec,
    SimJob,
    StrategySpec,
    TraceSpec,
    execute_job,
    job_fingerprint,
)


def small_job(**overrides) -> SimJob:
    defaults = dict(
        trace=TraceSpec("gcc", 2_000),
        system=SystemConfig(),
        interval_instructions=500,
        warmup_instructions=200,
    )
    defaults.update(overrides)
    return SimJob(**defaults)


class TestFingerprint:
    def test_identical_specs_share_a_fingerprint(self):
        assert job_fingerprint(small_job()) == job_fingerprint(small_job())

    @pytest.mark.parametrize(
        "overrides",
        [
            {"trace": TraceSpec("gcc", 2_001)},
            {"trace": TraceSpec("compress", 2_000)},
            {"trace": TraceSpec("gcc", 2_000, seed=7)},
            {"interval_instructions": 501},
            {"warmup_instructions": 0},
        ],
    )
    def test_perturbed_specs_change_the_fingerprint(self, overrides):
        assert job_fingerprint(small_job(**overrides)) != job_fingerprint(small_job())

    def test_system_config_change_invalidates(self):
        base = small_job()
        bigger_l1 = SystemConfig(l1d=CacheGeometry(64 * 1024, 2))
        slower_core = SystemConfig(core=CoreConfig(kind=CoreKind.IN_ORDER_BLOCKING))
        assert job_fingerprint(small_job(system=bigger_l1)) != job_fingerprint(base)
        assert job_fingerprint(small_job(system=slower_core)) != job_fingerprint(base)

    def test_organization_and_strategy_changes_invalidate(self):
        organization = __import__("repro.resizing.selective_sets", fromlist=["SelectiveSets"])
        org = organization.SelectiveSets(SystemConfig().l1d)
        config_small = org.ladder()[-1]
        config_full = org.ladder()[0]

        def with_setup(name, config):
            return small_job(
                d_setup=L1SetupSpec(organization=name, strategy=StrategySpec.static(config))
            )

        fixed = job_fingerprint(small_job())
        sets_small = job_fingerprint(with_setup("selective-sets", config_small))
        sets_full = job_fingerprint(with_setup("selective-sets", config_full))
        ways_small = job_fingerprint(with_setup("selective-ways", config_small))
        assert len({fixed, sets_small, sets_full, ways_small}) == 4

    def test_inline_trace_fingerprinted_by_content(self):
        trace_a = TraceSpec("gcc", 1_500).materialize()
        trace_b = TraceSpec("gcc", 1_500).materialize()
        trace_c = TraceSpec("compress", 1_500).materialize()
        assert job_fingerprint(small_job(trace=trace_a)) == job_fingerprint(
            small_job(trace=trace_b)
        )
        assert job_fingerprint(small_job(trace=trace_a)) != job_fingerprint(
            small_job(trace=trace_c)
        )


class TestJobCache:
    def test_miss_then_hit_roundtrips_exactly(self, tmp_path):
        cache = JobCache(tmp_path / "cache")
        job = small_job()
        fingerprint = job.fingerprint()
        assert cache.get(fingerprint) is None

        result = execute_job(job)
        cache.put(fingerprint, result, description=job.describe())
        restored = cache.get(fingerprint)
        assert restored is not None
        # Bit-exact round-trip: every field, including floats.
        assert dataclasses.asdict(restored) == dataclasses.asdict(result)

    def test_perturbed_job_misses(self, tmp_path):
        cache = JobCache(tmp_path / "cache")
        job = small_job()
        cache.put(job.fingerprint(), execute_job(job))
        perturbed = small_job(warmup_instructions=0)
        assert cache.get(perturbed.fingerprint()) is None

    def test_corrupt_entry_is_a_self_healing_miss(self, tmp_path):
        cache = JobCache(tmp_path / "cache")
        job = small_job()
        fingerprint = job.fingerprint()
        result = execute_job(job)
        cache.put(fingerprint, result)
        entry = cache._entry_path(fingerprint)
        entry.write_text("{ truncated", encoding="utf-8")
        assert cache.get(fingerprint) is None
        # Self-heal: counted, deleted, and the rewrite restores the entry.
        assert cache.corrupt_entries == 1
        assert not entry.exists()
        cache.put(fingerprint, result)
        assert cache.get(fingerprint) is not None
        assert cache.corrupt_entries == 1  # healthy reads do not count

    def test_checksum_mismatch_is_a_self_healing_miss(self, tmp_path):
        # A syntactically valid entry whose content was tampered with (bit
        # rot, partial overwrite) must fail the checksum, not be served.
        cache = JobCache(tmp_path / "cache")
        job = small_job()
        fingerprint = job.fingerprint()
        cache.put(fingerprint, execute_job(job))
        entry = cache._entry_path(fingerprint)
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["job"] = {"tampered": True}
        entry.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(fingerprint) is None
        assert cache.corrupt_entries == 1
        assert not entry.exists()

    def test_injected_cache_corrupt_fault_lands_torn_then_heals(self, tmp_path):
        from repro.sim import faults

        cache = JobCache(tmp_path / "cache")
        job = small_job()
        fingerprint = job.fingerprint()
        result = execute_job(job)
        faults.install_plan("cache_corrupt:shard=1")
        try:
            cache.put(fingerprint, result)  # fault: lands torn on disk
        finally:
            faults.reset()
        entry = cache._entry_path(fingerprint)
        assert entry.exists()
        assert cache.get(fingerprint) is None  # self-heals
        assert cache.corrupt_entries == 1
        cache.put(fingerprint, result)
        restored = cache.get(fingerprint)
        assert restored is not None
        assert dataclasses.asdict(restored) == dataclasses.asdict(result)

    def test_deleted_cache_directory_tolerated(self, tmp_path):
        # Maintenance paths must self-heal like get/put when the directory
        # vanishes underneath a live handle.
        import shutil

        cache = JobCache(tmp_path / "cache")
        job = small_job()
        cache.put(job.fingerprint(), execute_job(job))
        shutil.rmtree(tmp_path / "cache")
        assert len(cache) == 0
        assert cache.clear() == 0
        assert cache.get(job.fingerprint()) is None
        cache.put(job.fingerprint(), execute_job(job))  # put re-creates dirs
        assert len(cache) == 1

    def test_missing_energy_block_is_a_miss(self, tmp_path):
        # A structurally valid entry missing result fields must miss, not be
        # served as a zero-energy result.
        cache = JobCache(tmp_path / "cache")
        job = small_job()
        fingerprint = job.fingerprint()
        cache.put(fingerprint, execute_job(job))
        entry = cache._entry_path(fingerprint)
        payload = json.loads(entry.read_text(encoding="utf-8"))
        del payload["result"]["energy"]["core"]
        entry.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(fingerprint) is None

    def test_foreign_version_is_a_miss(self, tmp_path):
        cache = JobCache(tmp_path / "cache")
        job = small_job()
        fingerprint = job.fingerprint()
        cache.put(fingerprint, execute_job(job))
        entry = cache._entry_path(fingerprint)
        payload = json.loads(entry.read_text(encoding="utf-8"))
        payload["version"] = CACHE_FORMAT_VERSION + 1
        entry.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(fingerprint) is None

    def test_len_and_clear(self, tmp_path):
        cache = JobCache(tmp_path / "cache")
        jobs = [small_job(), small_job(warmup_instructions=0)]
        for job in jobs:
            cache.put(job.fingerprint(), execute_job(job))
        assert len(cache) == 2
        assert fingerprint_in_cache(cache, jobs[0])
        # Orphan temp file from a killed writer must also be swept.
        shard = cache._entry_path(jobs[0].fingerprint()).parent
        orphan = shard / "deadbeef.json.tmp.12345"
        orphan.write_text("{}", encoding="utf-8")
        assert cache.clear() == 2
        assert len(cache) == 0
        assert not orphan.exists()
        assert not fingerprint_in_cache(cache, jobs[0])


def fingerprint_in_cache(cache: JobCache, job: SimJob) -> bool:
    return job.fingerprint() in cache
