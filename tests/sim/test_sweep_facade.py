"""The unified ``Sweep`` facade and the deprecation of the eager helpers.

The facade is the canonical entry point: one object binds the simulator,
runner and shared run parameters, with deferred ``submit_*`` methods and
eager counterparts.  The historical module-level ``run_baseline`` /
``run_with_setups`` / ``run_dynamic`` must still work — byte-identically
— but emit :class:`DeprecationWarning`; the ``submit_*`` wrappers and
``profile_static`` (the documented path for unregistered organization
classes) stay silent.
"""

import warnings

import pytest

from repro.common.config import SystemConfig
from repro.resizing.selective_sets import SelectiveSets
from repro.sim.runner import SweepRunner, TraceSpec
from repro.sim.simulator import Simulator
from repro.sim.sweep import (
    DCACHE,
    Sweep,
    profile_static,
    run_baseline,
    run_dynamic,
    run_with_setups,
    submit_baseline,
    submit_profile_static,
)

TRACE = TraceSpec("gcc", 1500)


@pytest.fixture()
def simulator():
    return Simulator(SystemConfig())


class TestFacade:
    def test_eager_baseline_matches_legacy_helper(self, simulator):
        facade = Sweep(simulator).baseline(TRACE)
        with pytest.deprecated_call():
            legacy = run_baseline(simulator, TRACE)
        assert facade.cycles == legacy.cycles
        assert facade.energy.total == legacy.energy.total

    def test_instance_defaults_bind_run_parameters(self, simulator):
        # warmup bound at construction must equal warmup passed per call.
        bound = Sweep(simulator, warmup_instructions=150).baseline(TRACE)
        with pytest.deprecated_call():
            explicit = run_baseline(simulator, TRACE, warmup_instructions=150)
        assert bound.cycles == explicit.cycles

    def test_per_call_override_beats_instance_default(self, simulator):
        sweep = Sweep(simulator, warmup_instructions=150)
        overridden = sweep.baseline(TRACE, warmup_instructions=0)
        assert overridden.cycles == Sweep(simulator).baseline(TRACE).cycles

    def test_deferred_and_eager_profiles_agree(self, simulator):
        organization = SelectiveSets(SystemConfig().l1d)
        eager = Sweep(simulator).profile(TRACE, organization, target=DCACHE)
        with SweepRunner(jobs=1) as runner:
            sweep = Sweep(simulator, runner)
            baseline = sweep.submit_baseline(TRACE)
            future = sweep.submit_profile(
                TRACE, organization, target=DCACHE, baseline=baseline
            )
            sweep.drain()
            deferred = future.result()
        assert deferred.best_config == eager.best_config
        assert deferred.energy_delay_reduction() == eager.energy_delay_reduction()

    def test_facade_is_exported_from_the_package_roots(self):
        import repro
        import repro.sim

        assert repro.Sweep is Sweep
        assert repro.sim.Sweep is Sweep


class TestDeprecation:
    def test_run_baseline_warns(self, simulator):
        with pytest.warns(DeprecationWarning, match="Sweep"):
            run_baseline(simulator, TRACE)

    def test_run_with_setups_warns(self, simulator):
        with pytest.warns(DeprecationWarning, match="Sweep"):
            run_with_setups(simulator, TRACE)

    def test_run_dynamic_warns(self, simulator):
        organization = SelectiveSets(SystemConfig().l1d)
        profile = Sweep(simulator).profile(TRACE, organization, target=DCACHE)
        with pytest.warns(DeprecationWarning, match="Sweep"):
            run_dynamic(
                simulator, TRACE, organization,
                profile.dynamic_parameters(), target=DCACHE,
            )

    def test_submit_wrappers_and_profile_static_stay_silent(self, simulator):
        organization = SelectiveSets(SystemConfig().l1d)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            profile_static(simulator, TRACE, organization, target=DCACHE)
            with SweepRunner(jobs=1) as runner:
                baseline = submit_baseline(runner, simulator, TRACE)
                submit_profile_static(
                    runner, simulator, TRACE, organization, target=DCACHE,
                    baseline=baseline,
                )
                runner.drain()
