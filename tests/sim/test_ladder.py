"""Tests for the fused multi-configuration ladder replay.

Three layers are covered here:

* **Engine equivalence** — :func:`repro.sim.ladder.run_fused` must produce
  ``SimulationResult.to_dict()`` payloads bit-identical to standalone runs
  for every rung, across all three paper organizations, both L1 targets
  (exercising both pilot sides), warmup boundaries, odd final intervals,
  dynamic rungs and the heterogeneous general path — and equal to *both*
  single-run engines, since engines are bit-identical by contract.
* **Job layer** — :class:`LadderJob` validation, worker execution and the
  per-rung cache fan-out of :meth:`SweepRunner.submit_ladder`, including
  the partially-warm case (only missing rungs are fused) and the
  ``fused_rungs`` / ``fused_skipped`` counters.
* **Sweep integration** — ``submit_profile_static`` collapsing a ladder
  into one fused execution while remaining byte-identical to the
  per-config mode, with both modes serving each other's warm caches.
"""

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays
from repro.resizing.static_strategy import StaticResizing
from repro.sim.jobcache import JobCache
from repro.sim.ladder import LadderEngine, run_fused
from repro.sim.runner import (
    L1SetupSpec,
    LadderJob,
    SimJob,
    StrategySpec,
    SweepRunner,
    TraceSpec,
    execute_ladder_job,
)
from repro.sim.simulator import L1Setup, Simulator
from repro.sim.sweep import (
    DCACHE,
    FUSED,
    ICACHE,
    PER_CONFIG,
    make_job,
    profile_static,
    submit_profile_static,
)

ORGANIZATIONS = [SelectiveWays, SelectiveSets, HybridSetsAndWays]


@pytest.fixture(scope="module")
def system():
    return SystemConfig()


@pytest.fixture(scope="module")
def trace():
    return TraceSpec("gcc", 6_000).materialize()


def _ladder_setups(system, factory, target):
    """Baseline rung + one static rung per ladder size, targeting one L1."""
    geometry = system.l1d if target == DCACHE else system.l1i
    setups = [(None, None)]
    for config in factory(geometry).ladder():
        setup = L1Setup(factory(geometry), StaticResizing(config))
        setups.append((setup, None) if target == DCACHE else (None, setup))
    return setups


class TestEngineEquivalence:
    @pytest.mark.parametrize("factory", ORGANIZATIONS)
    @pytest.mark.parametrize("target", [DCACHE, ICACHE])
    @pytest.mark.parametrize("engine", ["reference", "columnar"])
    def test_fused_matches_standalone_grid(self, system, trace, factory, target, engine):
        """The deterministic grid: organizations × targets × engines.

        Warmup deliberately off interval boundaries, and the trace length
        leaves an odd final interval.  The per-config side runs under both
        registered engines — fused output must match each, which pins the
        fused pass to the whole engine-equivalence class at once.
        """
        interval, warmup = 997, 1_234
        standalone = [
            Simulator(system, engine=engine).run(
                trace,
                d_setup=d_setup,
                i_setup=i_setup,
                interval_instructions=interval,
                warmup_instructions=warmup,
            ).to_dict()
            for d_setup, i_setup in _ladder_setups(system, factory, target)
        ]
        fused = [
            result.to_dict()
            for result in run_fused(
                Simulator(system),
                trace,
                _ladder_setups(system, factory, target),
                interval_instructions=interval,
                warmup_instructions=warmup,
            )
        ]
        assert fused == standalone
        # Static rungs must stay mid-run-resize-free in both paths: the
        # only resize is the up-front jump to the profiled configuration,
        # applied to an empty cache (so it can never flush dirty blocks).
        for payload in fused[1:]:
            resizes = payload["l1d_resizes" if target == DCACHE else "l1i_resizes"]
            flushes = payload[
                "l1d_flush_writebacks" if target == DCACHE else "l1i_flush_writebacks"
            ]
            assert resizes <= 1
            assert flushes == 0

    def test_fused_matches_standalone_dynamic_rungs(self, system, trace):
        """Dynamic strategies resize mid-run; the pilot path must still agree."""
        def setups():
            return [
                (L1Setup(
                    SelectiveSets(system.l1d),
                    DynamicResizing(0.02, 8 * 1024, sense_interval_accesses=256),
                ), None),
                (L1Setup(
                    SelectiveSets(system.l1d),
                    DynamicResizing(0.05, 16 * 1024, sense_interval_accesses=512),
                ), None),
                (None, None),
            ]

        standalone = [
            Simulator(system).run(
                trace, d_setup=d, i_setup=i, warmup_instructions=600
            ).to_dict()
            for d, i in setups()
        ]
        fused = [
            result.to_dict()
            for result in run_fused(
                Simulator(system), trace, setups(), warmup_instructions=600
            )
        ]
        assert fused == standalone

    def test_fused_matches_standalone_heterogeneous(self, system, trace):
        """Rungs resizing *both* L1s take the general path; still identical."""
        def setups():
            return [
                (
                    L1Setup(
                        SelectiveSets(system.l1d),
                        DynamicResizing(0.03, 8 * 1024, sense_interval_accesses=512),
                    ),
                    L1Setup(
                        SelectiveWays(system.l1i),
                        DynamicResizing(0.01, 8 * 1024, sense_interval_accesses=512),
                    ),
                ),
                (None, None),
                (
                    None,
                    L1Setup(
                        SelectiveWays(system.l1i),
                        StaticResizing(SelectiveWays(system.l1i).ladder()[1]),
                    ),
                ),
            ]

        standalone = [
            Simulator(system).run(trace, d_setup=d, i_setup=i).to_dict()
            for d, i in setups()
        ]
        fused = [r.to_dict() for r in run_fused(Simulator(system), trace, setups())]
        assert fused == standalone

    def test_single_rung_fused_equals_plain_run(self, system, trace):
        fused = run_fused(Simulator(system), trace, [(None, None)])
        assert len(fused) == 1
        assert fused[0].to_dict() == Simulator(system).run(trace).to_dict()

    def test_run_fused_validates_inputs(self, system, trace):
        with pytest.raises(SimulationError, match="at least one rung"):
            run_fused(Simulator(system), trace, [])
        with pytest.raises(SimulationError, match="interval length"):
            run_fused(Simulator(system), trace, [(None, None)], interval_instructions=0)

    def test_replay_many_rejects_mismatched_contexts(self, system, trace):
        simulator = Simulator(system)
        contexts = [
            simulator._prepare_run(trace, None, None, 1_500, 0),
            simulator._prepare_run(trace, None, None, 1_000, 0),
        ]
        with pytest.raises(SimulationError, match="share the interval"):
            LadderEngine().replay_many(trace, contexts)

    def test_replay_many_accepts_empty_context_list(self, trace):
        LadderEngine().replay_many(trace, [])  # no-op, not an error


def _rung_jobs(system, organization, interval=500, n_instructions=3_000):
    """Baseline + whole-ladder rung jobs sharing one trace spec."""
    trace = TraceSpec("m88ksim", n_instructions)
    jobs = [SimJob(trace=trace, system=system, interval_instructions=interval)]
    for config in organization.ladder():
        jobs.append(
            SimJob(
                trace=trace,
                system=system,
                d_setup=L1SetupSpec(
                    organization=organization.name,
                    strategy=StrategySpec.static(config),
                ),
                interval_instructions=interval,
            )
        )
    return jobs


@pytest.fixture(scope="module")
def organization(system):
    return SelectiveSets(system.l1d)


@pytest.fixture(scope="module")
def ladder_jobs(system, organization):
    return _rung_jobs(system, organization)


class TestLadderJob:
    def test_rejects_empty_ladder(self):
        with pytest.raises(SimulationError, match="at least one rung"):
            LadderJob([])

    def test_rejects_mismatched_rungs(self, system, ladder_jobs):
        stranger = SimJob(
            trace=TraceSpec("gcc", 3_000), system=system, interval_instructions=500
        )
        with pytest.raises(SimulationError, match="share the trace"):
            LadderJob([ladder_jobs[0], stranger])
        longer_warmup = SimJob(
            trace=TraceSpec("m88ksim", 3_000), system=system,
            interval_instructions=500, warmup_instructions=100,
        )
        with pytest.raises(SimulationError, match="share the trace"):
            LadderJob([ladder_jobs[0], longer_warmup])

    def test_execute_ladder_job_matches_per_rung_execution(self, ladder_jobs):
        from repro.sim.runner import execute_job

        fused = execute_ladder_job(LadderJob(list(ladder_jobs)))
        standalone = [execute_job(job) for job in ladder_jobs]
        assert [r.to_dict() for r in fused] == [r.to_dict() for r in standalone]

    def test_describe_lists_every_rung(self, ladder_jobs):
        summary = LadderJob(list(ladder_jobs)).describe()
        assert len(summary["fused_rungs"]) == len(ladder_jobs)
        assert summary["fused_rungs"][0] == "fixed + fixed"
        assert "selective-sets/static" in summary["fused_rungs"][1]


class TestSubmitLadder:
    def test_cold_ladder_fuses_every_rung(self, ladder_jobs):
        runner = SweepRunner()
        futures = runner.submit_ladder(ladder_jobs)
        assert runner.pending_count == 1  # one fused execution, K rungs
        results = runner.gather(futures)
        assert runner.fused_rungs == len(ladder_jobs)
        assert runner.fused_skipped == 0
        assert runner.simulate_count == len(ladder_jobs)
        standalone = SweepRunner().run(list(ladder_jobs))
        assert [r.to_dict() for r in results] == [r.to_dict() for r in standalone]

    def test_parallel_fused_identical_to_serial(self, ladder_jobs):
        serial = SweepRunner().gather(SweepRunner().submit_ladder(ladder_jobs))
        with SweepRunner(jobs=2) as runner:
            parallel = runner.gather(runner.submit_ladder(ladder_jobs))
            assert runner.pool_batches == 1
            assert runner.inline_executions == 0
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]

    def test_fused_results_fan_out_to_per_rung_fingerprints(self, tmp_path, ladder_jobs):
        """A fused pass warms the cache exactly as K per-config jobs would."""
        cache = JobCache(tmp_path / "cache")
        fused = SweepRunner(cache=cache)
        fused.gather(fused.submit_ladder(ladder_jobs))
        assert len(cache) == len(ladder_jobs)

        per_config = SweepRunner(cache=cache)
        per_config.run(list(ladder_jobs))
        assert per_config.simulate_count == 0
        assert per_config.cache_hits == len(ladder_jobs)

    def test_warm_ladder_fuses_nothing(self, tmp_path, ladder_jobs):
        cache = JobCache(tmp_path / "cache")
        cold = SweepRunner(cache=cache)
        cold_results = cold.gather(cold.submit_ladder(ladder_jobs))

        warm = SweepRunner(cache=cache)
        futures = warm.submit_ladder(ladder_jobs)
        assert all(future.done() for future in futures)
        assert warm.fused_skipped == len(ladder_jobs)
        assert warm.fused_rungs == 0
        assert warm.simulate_count == 0
        assert warm.pending_count == 0
        warm_results = warm.gather(futures)
        assert [r.to_dict() for r in warm_results] == [
            r.to_dict() for r in cold_results
        ]

    def test_partially_warm_ladder_fuses_only_missing_rungs(self, tmp_path, ladder_jobs):
        """Per-rung cache consultation at submit time: rungs simulated by an
        earlier per-config run are served from disk, the rest fuse."""
        cache = JobCache(tmp_path / "cache")
        SweepRunner(cache=cache).run(list(ladder_jobs[:2]))

        partial = SweepRunner(cache=cache)
        futures = partial.submit_ladder(ladder_jobs)
        assert partial.fused_skipped == 2
        assert partial.fused_rungs == len(ladder_jobs) - 2
        results = partial.gather(futures)
        assert partial.simulate_count == len(ladder_jobs) - 2
        standalone = SweepRunner().run(list(ladder_jobs))
        assert [r.to_dict() for r in results] == [r.to_dict() for r in standalone]

    def test_duplicate_rungs_share_one_execution(self, system, ladder_jobs):
        runner = SweepRunner()
        futures = runner.submit_ladder([ladder_jobs[0], ladder_jobs[1], ladder_jobs[0]])
        assert futures[0] is futures[2]
        assert runner.fused_skipped == 1  # the duplicate
        assert runner.fused_rungs == 2
        runner.drain()
        assert runner.simulate_count == 2

    def test_ladder_failure_fails_every_missing_rung(self, ladder_jobs):
        from repro.common.errors import WorkloadError

        bad = SimJob(
            trace=TraceSpec("no-such-app", 3_000),
            system=ladder_jobs[0].system,
            interval_instructions=500,
        )
        runner = SweepRunner()
        # The bad rung shares every fused field (trace spec equality is on
        # the spec, which only fails at materialisation time in the worker).
        futures = runner.submit_ladder([bad])
        runner.drain()
        assert futures[0].failed()
        with pytest.raises(WorkloadError):
            futures[0].result()


class TestSweepIntegration:
    @pytest.mark.parametrize("target", [DCACHE, ICACHE])
    def test_profile_static_modes_identical(self, system, organization, target):
        trace = TraceSpec("m88ksim", 3_000)
        simulator = Simulator(system)
        profiles = {}
        for mode in (FUSED, PER_CONFIG):
            profiles[mode] = profile_static(
                simulator, trace, organization, target=target,
                warmup_instructions=300, runner=SweepRunner(), ladder_mode=mode,
            )
        fused, per_config = profiles[FUSED], profiles[PER_CONFIG]
        assert fused.best_config == per_config.best_config
        assert fused.baseline.to_dict() == per_config.baseline.to_dict()
        for config in organization.ladder():
            assert fused.results[config].to_dict() == per_config.results[config].to_dict()

    def test_submit_profile_static_fuses_baseline_and_ladder(self, system, organization):
        runner = SweepRunner()
        profile = submit_profile_static(
            runner, Simulator(system), TraceSpec("m88ksim", 3_000), organization,
            target=DCACHE, warmup_instructions=300,
        )
        # Baseline + whole ladder ride one fused execution.
        assert runner.pending_count == 1
        assert runner.fused_rungs == len(organization.ladder()) + 1
        profile.result()
        assert runner.simulate_count == len(organization.ladder()) + 1

    def test_shared_baseline_future_is_not_refused(self, system, organization):
        from repro.sim.sweep import submit_baseline

        runner = SweepRunner()
        simulator = Simulator(system)
        trace = TraceSpec("m88ksim", 3_000)
        baseline = submit_baseline(runner, simulator, trace, warmup_instructions=300)
        profile = submit_profile_static(
            runner, simulator, trace, organization,
            target=DCACHE, baseline=baseline, warmup_instructions=300,
        )
        assert profile.baseline is baseline
        profile.result()
        # Baseline simulated once (as its own job), ladder fused.
        assert runner.simulate_count == len(organization.ladder()) + 1
        assert runner.fused_rungs == len(organization.ladder())

    def test_unknown_ladder_mode_rejected(self, system, organization):
        with pytest.raises(SimulationError, match="unknown ladder mode"):
            submit_profile_static(
                SweepRunner(), Simulator(system), TraceSpec("m88ksim", 3_000),
                organization, ladder_mode="vectorized",
            )

    def test_fused_and_per_config_make_identical_jobs(self, system, organization):
        """Both modes fingerprint rungs identically — the cache contract."""
        simulator = Simulator(system)
        trace = TraceSpec("m88ksim", 3_000)
        config = organization.ladder()[0]
        spec = L1SetupSpec(
            organization=organization.name,
            strategy=StrategySpec.static(config),
            geometry=organization.geometry,
        )
        job = make_job(simulator, trace, d_setup=spec, warmup_instructions=300)

        runner = SweepRunner()
        submit_profile_static(
            runner, simulator, trace, organization,
            target=DCACHE, warmup_instructions=300,
        )
        fingerprints = [
            fp
            for entry in runner._pending
            for fp in entry.fingerprints
        ]
        assert job.fingerprint() in fingerprints
