"""Tests for the deferred-submission job graph (SimFuture + SweepRunner).

Covers the futures contract the experiment pipeline is built on:
out-of-order gather, duplicate-job dedup within a batch, dependency
ordering (profile -> dynamic), and exception propagation from a failed
worker job into direct, sibling and dependent futures.
"""

import dataclasses

import pytest

from repro.common.config import SystemConfig
from repro.common.errors import SimulationError, WorkloadError
from repro.resizing.selective_sets import SelectiveSets
from repro.sim.jobcache import JobCache
from repro.sim.runner import L1SetupSpec, SimJob, StrategySpec, SweepRunner, TraceSpec
from repro.sim.simulator import Simulator
from repro.sim.sweep import (
    DCACHE,
    run_dynamic,
    submit_baseline,
    submit_dynamic,
    submit_profile_static,
)


@pytest.fixture(scope="module")
def system():
    return SystemConfig()


@pytest.fixture(scope="module")
def organization(system):
    return SelectiveSets(system.l1d)


def make_jobs(system, organization, n=3):
    """A baseline job plus static-ladder jobs (small trace, distinct specs)."""
    trace = TraceSpec("m88ksim", 3_000)
    jobs = [SimJob(trace=trace, system=system, interval_instructions=500)]
    for config in organization.ladder()[: n - 1]:
        jobs.append(
            SimJob(
                trace=trace,
                system=system,
                d_setup=L1SetupSpec(
                    organization=organization.name, strategy=StrategySpec.static(config)
                ),
                interval_instructions=500,
            )
        )
    return jobs


def results_equal(a, b) -> bool:
    return dataclasses.asdict(a) == dataclasses.asdict(b)


class TestSubmitAndGather:
    def test_submit_is_lazy_until_drain(self, system, organization):
        runner = SweepRunner()
        futures = [runner.submit(job) for job in make_jobs(system, organization)]
        assert all(not future.done() for future in futures)
        assert runner.simulate_count == 0
        assert runner.pending_count == len(futures)
        runner.drain()
        assert all(future.done() for future in futures)
        assert runner.simulate_count == len(futures)
        assert runner.pending_count == 0

    def test_out_of_order_gather(self, system, organization):
        jobs = make_jobs(system, organization)
        reference = SweepRunner().run(jobs)

        runner = SweepRunner(jobs=2)
        futures = [runner.submit(job) for job in jobs]
        # Gather in reverse order of submission: results must follow the
        # *gather* order, matching each future's own job.
        reversed_results = runner.gather(list(reversed(futures)))
        for result, expected in zip(reversed_results, reversed(reference)):
            assert results_equal(result, expected)
        # A future can be gathered again (and mixed into a new order).
        again = runner.gather([futures[1], futures[0]])
        assert results_equal(again[0], reference[1])
        assert results_equal(again[1], reference[0])

    def test_result_matches_serial_execution(self, system, organization):
        jobs = make_jobs(system, organization)
        serial = SweepRunner().run(jobs)
        runner = SweepRunner(jobs=2)
        futures = [runner.submit(job) for job in jobs]
        # Resolving the *last* future drains the whole graph in one batch.
        assert results_equal(futures[-1].result(), serial[-1])
        assert runner.pool_batches == 1
        assert runner.inline_executions == 0
        for future, expected in zip(futures, serial):
            assert results_equal(future.result(), expected)

    def test_duplicate_submissions_share_one_execution(self, system, organization):
        runner = SweepRunner()
        job = make_jobs(system, organization)[0]
        twin = SimJob(
            trace=TraceSpec("m88ksim", 3_000), system=system, interval_instructions=500
        )
        first, second = runner.submit(job), runner.submit(twin)
        assert first is second  # identical spec -> identical future
        assert runner.pending_count == 1
        assert runner.dedup_hits == 1
        runner.drain()
        assert runner.simulate_count == 1

    def test_duplicates_within_run_batch_simulate_once(self, system, organization):
        jobs = make_jobs(system, organization)
        runner = SweepRunner()
        results = runner.run([jobs[0], jobs[1], jobs[0]])
        assert runner.simulate_count == 2
        assert results_equal(results[0], results[2])

    def test_cache_hit_resolves_at_submit_time(self, tmp_path, system, organization):
        cache = JobCache(tmp_path / "cache")
        jobs = make_jobs(system, organization)
        SweepRunner(cache=cache).run(jobs)

        warm = SweepRunner(cache=cache)
        future = warm.submit(jobs[0])
        assert future.done()  # resolved from disk, no drain needed
        assert warm.cache_hits == 1
        assert warm.simulate_count == 0


class TestDependencies:
    def test_profile_then_dynamic_drains_in_two_batches(self, system, organization):
        simulator = Simulator(system)
        trace = TraceSpec("m88ksim", 3_000)
        runner = SweepRunner(jobs=2)
        profile = submit_profile_static(
            runner, simulator, trace, organization, target=DCACHE, warmup_instructions=300
        )
        dynamic = submit_dynamic(
            runner, simulator, trace, organization, profile,
            target=DCACHE, warmup_instructions=300, sense_interval_accesses=2048,
        )
        assert not dynamic.done()
        assert runner.deferred_count == 1
        runner.drain()
        assert runner.deferred_count == 0
        # Ladder+baseline in wave one, the dynamic job in wave two.
        assert runner.pool_batches == 2
        assert runner.inline_executions == 0

        # Byte-identical to the eager path that derives parameters by hand.
        resolved = profile.result()
        eager = run_dynamic(
            simulator, trace, organization,
            resolved.dynamic_parameters(sense_interval_accesses=2048),
            target=DCACHE, warmup_instructions=300,
            initial_config=resolved.best_config,
        )
        assert results_equal(dynamic.result(), eager)

    def test_deferred_builder_runs_after_dependencies(self, system, organization):
        runner = SweepRunner()
        dep = submit_baseline(runner, Simulator(system), TraceSpec("gcc", 2_000))
        seen = []

        def builder():
            seen.append(dep.done())  # must already be resolved
            return SimJob(trace=TraceSpec("gcc", 2_000), system=system,
                          interval_instructions=500)

        deferred = runner.submit_deferred(builder, [dep])
        assert not seen  # builder is lazy
        deferred.result()
        assert seen == [True]

    def test_deferred_dedups_against_identical_concrete_job(self, system):
        runner = SweepRunner()
        concrete = runner.submit(
            SimJob(trace=TraceSpec("gcc", 2_000), system=system, interval_instructions=500)
        )
        dep = submit_baseline(runner, Simulator(system), TraceSpec("m88ksim", 2_000))
        deferred = runner.submit_deferred(
            lambda: SimJob(trace=TraceSpec("gcc", 2_000), system=system,
                           interval_instructions=500),
            [dep],
        )
        runner.drain()
        # The deferred job's spec was identical to the concrete one: they
        # resolve to the same result without simulating twice.
        assert results_equal(deferred.result(), concrete.result())
        assert runner.dedup_hits >= 1
        assert runner.simulate_count == 2  # gcc job + m88ksim dependency

    def test_unresolvable_dependency_fails_cleanly(self, system):
        other = SweepRunner()
        foreign_dep = other.submit(
            SimJob(trace=TraceSpec("gcc", 1_500), system=system, interval_instructions=500)
        )
        runner = SweepRunner()
        stuck = runner.submit_deferred(
            lambda: SimJob(trace=TraceSpec("gcc", 1_500), system=system,
                           interval_instructions=500),
            [foreign_dep],
        )
        runner.drain()  # must terminate, not spin
        with pytest.raises(SimulationError, match="never resolve"):
            stuck.result()

    def test_orphan_future_never_reads_as_success(self, system):
        # A future its runner does not know about (library misuse or a
        # discarded runner) must raise from BOTH result() and exception()
        # rather than letting exception() == None imply success.
        from repro.sim.future import SimFuture

        orphan = SimFuture(SweepRunner())
        with pytest.raises(SimulationError, match="not resolved"):
            orphan.result()
        with pytest.raises(SimulationError, match="not resolved"):
            orphan.exception()


class TestFailurePropagation:
    def bad_job(self, system):
        return SimJob(trace=TraceSpec("no-such-app", 1_500), system=system)

    def test_failed_job_raises_from_future(self, system, organization):
        runner = SweepRunner()
        good = runner.submit(make_jobs(system, organization)[0])
        bad = runner.submit(self.bad_job(system))
        with pytest.raises(WorkloadError):
            bad.result()
        # The sibling completed and is unaffected.
        assert good.done() and not good.failed()
        assert bad.exception() is not None
        assert good.exception() is None

    def test_gather_raises_after_draining_siblings(self, system, organization):
        runner = SweepRunner(jobs=2)
        futures = [runner.submit(job) for job in make_jobs(system, organization)]
        bad = runner.submit(self.bad_job(system))
        with pytest.raises(WorkloadError):
            runner.gather([*futures, bad])
        assert all(future.done() for future in futures)

    def test_dependent_future_inherits_dependency_failure(self, system):
        runner = SweepRunner()
        bad = runner.submit(self.bad_job(system))
        calls = []

        def builder():
            calls.append("built")
            return SimJob(trace=TraceSpec("gcc", 1_500), system=system)

        dependent = runner.submit_deferred(builder, [bad])
        runner.drain()
        assert not calls  # builder never ran
        assert dependent.failed()
        with pytest.raises(WorkloadError):  # the *original* error type
            dependent.result()

    def test_builder_reading_undeclared_future_fails_diagnosably(self, system, organization):
        # A builder that resolves a future it did not declare as a dep
        # reenters drain(); the guard converts that into a clear
        # per-future error instead of a RecursionError.  `undeclared` is
        # itself deferred (and queued after the sneaky builder), so it is
        # still pending when the sneaky builder reads it.
        runner = SweepRunner()
        declared = runner.submit(make_jobs(system, organization)[0])

        def sneaky_builder():
            undeclared.result()  # still pending, not in deps -> reentrant drain
            return SimJob(trace=TraceSpec("gcc", 2_000), system=system,
                          interval_instructions=500)

        sneaky = runner.submit_deferred(sneaky_builder, [declared])
        undeclared = runner.submit_deferred(
            lambda: SimJob(trace=TraceSpec("m88ksim", 2_000), system=system,
                           interval_instructions=500),
            [declared],
        )
        runner.drain()  # must terminate and keep siblings healthy
        assert declared.done() and not declared.failed()
        assert undeclared.done() and not undeclared.failed()
        with pytest.raises(SimulationError, match="did not declare"):
            sneaky.result()

    def test_failed_job_is_retried_on_resubmission(self, system):
        # Failures are not memoised: resubmitting the identical job on the
        # same runner gets a fresh attempt (the failing condition may have
        # been transient), matching how repeated run() calls always
        # re-executed.
        from repro.common.config import CacheGeometry

        runner = SweepRunner()
        bad = SimJob(
            trace=TraceSpec("gcc", 1_500),
            system=system,
            # Registered organization, wrong geometry: fingerprints fine,
            # fails at build time inside the worker.
            d_setup=L1SetupSpec(
                organization="selective-sets", geometry=CacheGeometry(64 * 1024, 2)
            ),
        )
        first = runner.submit(bad)
        with pytest.raises(SimulationError, match="does not match"):
            first.result()
        second = runner.submit(bad)
        assert second is not first  # fresh future, not the stale failure
        with pytest.raises(SimulationError, match="does not match"):
            second.result()

    def test_builder_exception_fails_only_its_future(self, system, organization):
        runner = SweepRunner()
        dep = runner.submit(make_jobs(system, organization)[0])

        def exploding_builder():
            raise ValueError("builder bug")

        broken = runner.submit_deferred(exploding_builder, [dep])
        runner.drain()
        assert dep.done() and not dep.failed()
        with pytest.raises(ValueError, match="builder bug"):
            broken.result()
