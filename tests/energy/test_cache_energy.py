"""Tests for the L1 and L2 cache energy models.

The key property resizing exploits: dynamic energy per access scales with
the number of enabled subarrays, and per-cycle (clock + leakage) energy
scales with the enabled capacity.
"""

import pytest

from repro.cache.subarray import SubarrayMap
from repro.common.config import CacheGeometry
from repro.common.units import KIB
from repro.energy.cache_energy import CacheEnergyModel, L2EnergyModel
from repro.energy.technology import TechnologyParameters


@pytest.fixture
def geometry() -> CacheGeometry:
    return CacheGeometry(32 * KIB, 2)


@pytest.fixture
def technology() -> TechnologyParameters:
    return TechnologyParameters()


@pytest.fixture
def model(geometry, technology) -> CacheEnergyModel:
    return CacheEnergyModel(geometry, technology)


class TestAccessEnergy:
    def test_access_energy_scales_with_enabled_subarrays(self, geometry, model):
        subarrays = SubarrayMap(geometry)
        full = model.access_energy(subarrays.full_state(), enabled_ways=2)
        half = model.access_energy(subarrays.subarrays_for(2, 256), enabled_ways=2)
        assert half < full
        # The subarray-dependent portion halves exactly.
        technology = model.technology
        expected_delta = 16 * technology.subarray_access_energy
        assert full - half == pytest.approx(expected_delta)

    def test_write_access_costs_more_than_read(self, geometry, model):
        state = SubarrayMap(geometry).full_state()
        read = model.access_energy(state, 2, is_write=False)
        write = model.access_energy(state, 2, is_write=True)
        assert write == pytest.approx(read * model.technology.write_energy_factor)

    def test_fewer_enabled_ways_cost_less_at_equal_capacity(self, technology):
        # The paper's applu observation: at the same size, a lower-associative
        # configuration reads fewer subarrays per access.
        geometry = CacheGeometry(32 * KIB, 4)
        model = CacheEnergyModel(geometry, technology)
        subarrays = SubarrayMap(geometry)
        sets_16k = model.access_energy(subarrays.subarrays_for(4, 128), enabled_ways=4)
        ways_16k = model.access_energy(subarrays.subarrays_for(2, 256), enabled_ways=2)
        assert ways_16k < sets_16k

    def test_resizing_tag_bits_add_energy(self, geometry, technology):
        plain = CacheEnergyModel(geometry, technology, resizing_tag_bits=0)
        selective_sets = CacheEnergyModel(geometry, technology, resizing_tag_bits=4)
        state = SubarrayMap(geometry).full_state()
        assert selective_sets.access_energy(state, 2) > plain.access_energy(state, 2)

    def test_interval_access_energy_combines_reads_and_writes(self, geometry, model):
        state = SubarrayMap(geometry).full_state()
        combined = model.interval_access_energy(state, 2, reads=10, writes=5)
        expected = 10 * model.access_energy(state, 2) + 5 * model.access_energy(
            state, 2, is_write=True
        )
        assert combined == pytest.approx(expected)


class TestCycleEnergy:
    def test_cycle_energy_scales_with_enabled_capacity(self, geometry, model):
        subarrays = SubarrayMap(geometry)
        full = model.cycle_energy(subarrays.full_state())
        quarter = model.cycle_energy(subarrays.subarrays_for(2, 128))
        assert quarter == pytest.approx(full / 4.0)

    def test_interval_cycle_energy_is_linear_in_cycles(self, geometry, model):
        state = SubarrayMap(geometry).full_state()
        assert model.interval_cycle_energy(state, 100.0) == pytest.approx(
            100.0 * model.cycle_energy(state)
        )

    def test_fetch_array_energy_scales_with_lookups(self, geometry, model):
        state = SubarrayMap(geometry).full_state()
        one = model.fetch_array_energy(state, 2, lookups=1)
        many = model.fetch_array_energy(state, 2, lookups=10)
        assert many == pytest.approx(10 * one)


class TestL2Energy:
    def test_l2_energy_scales_with_accesses(self, technology):
        model = L2EnergyModel(
            CacheGeometry(512 * KIB, 4, block_bytes=64, subarray_bytes=4 * KIB), technology
        )
        low = model.interval_energy(accesses=10, cycles=1000)
        high = model.interval_energy(accesses=100, cycles=1000)
        assert high - low == pytest.approx(90 * technology.l2_access_energy)

    def test_l2_access_energy_exceeds_l1_access_energy(self, geometry, technology, model):
        state = SubarrayMap(geometry).full_state()
        l1_access = model.access_energy(state, 2)
        assert technology.l2_access_energy > l1_access
