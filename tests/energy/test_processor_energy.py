"""Tests for the rest-of-processor and memory energy model."""

import pytest

from repro.common.config import CoreConfig, CoreKind
from repro.energy.processor_energy import ProcessorEnergyModel
from repro.energy.technology import TechnologyParameters
from repro.metrics.counts import IntervalCounts


@pytest.fixture
def technology() -> TechnologyParameters:
    return TechnologyParameters()


def test_energy_grows_with_cycles_and_instructions(technology):
    model = ProcessorEnergyModel(CoreConfig(), technology)
    short = model.interval_energy(IntervalCounts(instructions=100), cycles=100)
    longer = model.interval_energy(IntervalCounts(instructions=100), cycles=200)
    more_work = model.interval_energy(IntervalCounts(instructions=200), cycles=100)
    assert longer > short
    assert more_work > short


def test_stalled_cycles_still_burn_core_energy(technology):
    # This is what makes over-aggressive downsizing unattractive: the rest of
    # the processor keeps dissipating while it waits on extra misses.
    model = ProcessorEnergyModel(CoreConfig(), technology)
    counts = IntervalCounts(instructions=1000)
    assert model.interval_energy(counts, cycles=2000) > model.interval_energy(counts, cycles=1000)


def test_inorder_core_has_lower_per_cycle_overhead(technology):
    counts = IntervalCounts(instructions=1000)
    ooo = ProcessorEnergyModel(CoreConfig(kind=CoreKind.OUT_OF_ORDER_NONBLOCKING), technology)
    inorder = ProcessorEnergyModel(CoreConfig(kind=CoreKind.IN_ORDER_BLOCKING), technology)
    assert inorder.interval_energy(counts, 1000) < ooo.interval_energy(counts, 1000)


def test_memory_energy_counts_block_transfers(technology):
    model = ProcessorEnergyModel(CoreConfig(), technology)
    counts = IntervalCounts(memory_accesses=7)
    assert model.memory_energy(counts) == pytest.approx(7 * technology.memory_access_energy)
