"""Tests for interval-level energy accounting across structures."""

import pytest

from repro.cache.subarray import SubarrayMap
from repro.energy.accounting import EnergyAccountant
from repro.metrics.counts import IntervalCounts


@pytest.fixture
def accountant(base_system) -> EnergyAccountant:
    return EnergyAccountant(base_system)


@pytest.fixture
def full_states(base_system):
    return (
        SubarrayMap(base_system.l1d).full_state(),
        SubarrayMap(base_system.l1i).full_state(),
    )


def _typical_counts() -> IntervalCounts:
    return IntervalCounts(
        instructions=1000,
        l1d_accesses=400,
        l1d_stores=120,
        l1d_misses=8,
        l1i_accesses=220,
        l1i_misses=2,
        l2_accesses=10,
        memory_accesses=1,
        branches=180,
        branch_mispredicts=9,
    )


class TestBreakdownStructure:
    def test_all_components_are_positive_for_typical_activity(self, accountant, full_states):
        l1d_state, l1i_state = full_states
        breakdown = accountant.interval_breakdown(
            _typical_counts(), cycles=700, l1d_state=l1d_state, l1d_ways=2,
            l1i_state=l1i_state, l1i_ways=2,
        )
        assert breakdown.l1d > 0
        assert breakdown.l1i > 0
        assert breakdown.l2 > 0
        assert breakdown.memory > 0
        assert breakdown.core > 0

    def test_cache_fractions_match_paper_ballpark(self, accountant, full_states):
        # Section 4: d-cache ~18.5% and i-cache ~17.5% of processor energy on
        # average.  The synthetic calibration should land in that ballpark
        # (generous bounds: 10-30%).
        l1d_state, l1i_state = full_states
        breakdown = accountant.interval_breakdown(
            _typical_counts(), cycles=700, l1d_state=l1d_state, l1d_ways=2,
            l1i_state=l1i_state, l1i_ways=2,
        )
        assert 0.10 < breakdown.fraction("l1d") < 0.30
        assert 0.10 < breakdown.fraction("l1i") < 0.30
        assert breakdown.fraction("core") > 0.30


class TestResizingEffects:
    def test_disabling_subarrays_reduces_l1d_energy_only(self, base_system, accountant):
        l1d_map = SubarrayMap(base_system.l1d)
        l1i_state = SubarrayMap(base_system.l1i).full_state()
        counts = _typical_counts()
        full = accountant.interval_breakdown(
            counts, 700, l1d_state=l1d_map.full_state(), l1d_ways=2,
            l1i_state=l1i_state, l1i_ways=2,
        )
        shrunk = accountant.interval_breakdown(
            counts, 700, l1d_state=l1d_map.subarrays_for(2, 64), l1d_ways=2,
            l1i_state=l1i_state, l1i_ways=2,
        )
        assert shrunk.l1d < full.l1d
        assert shrunk.l1i == pytest.approx(full.l1i)
        assert shrunk.core == pytest.approx(full.core)

    def test_resizing_tag_bits_increase_l1_energy(self, base_system, full_states):
        l1d_state, l1i_state = full_states
        counts = _typical_counts()
        plain = EnergyAccountant(base_system).interval_breakdown(
            counts, 700, l1d_state, 2, l1i_state, 2
        )
        with_tags = EnergyAccountant(
            base_system, l1d_resizing_tag_bits=4, l1i_resizing_tag_bits=4
        ).interval_breakdown(counts, 700, l1d_state, 2, l1i_state, 2)
        assert with_tags.l1d > plain.l1d
        assert with_tags.l1i > plain.l1i

    def test_extra_l2_traffic_increases_l2_energy(self, accountant, full_states):
        l1d_state, l1i_state = full_states
        calm = _typical_counts()
        busy = _typical_counts()
        busy.l2_accesses += 50
        calm_breakdown = accountant.interval_breakdown(calm, 700, l1d_state, 2, l1i_state, 2)
        busy_breakdown = accountant.interval_breakdown(busy, 700, l1d_state, 2, l1i_state, 2)
        assert busy_breakdown.l2 > calm_breakdown.l2
