"""Tests for technology parameter validation."""

import pytest

from repro.common.errors import ConfigurationError
from repro.energy.technology import TechnologyParameters


def test_defaults_are_valid():
    technology = TechnologyParameters()
    assert technology.subarray_access_energy > 0
    assert technology.l2_access_energy > technology.subarray_access_energy


def test_negative_energy_rejected():
    with pytest.raises(ConfigurationError):
        TechnologyParameters(subarray_access_energy=-0.001)
    with pytest.raises(ConfigurationError):
        TechnologyParameters(l2_access_energy=-1.0)


def test_write_factor_must_be_at_least_one():
    with pytest.raises(ConfigurationError):
        TechnologyParameters(write_energy_factor=0.9)


def test_fetch_accesses_per_lookup_must_be_positive():
    with pytest.raises(ConfigurationError):
        TechnologyParameters(fetch_accesses_per_lookup=0.0)


def test_parameters_are_immutable():
    technology = TechnologyParameters()
    with pytest.raises(AttributeError):
        technology.l2_access_energy = 5.0
