"""Tests for the static and no-resizing strategies plus the strategy protocol."""

import pytest

from repro.common.config import CacheGeometry
from repro.common.errors import ResizingError
from repro.common.units import KIB
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.static_strategy import StaticResizing
from repro.resizing.strategy import NoResizing, ResizingStrategy


@pytest.fixture
def organization(base_l1_geometry):
    return SelectiveSets(base_l1_geometry)


class TestBaseStrategy:
    def test_unbound_strategy_raises_on_use(self):
        strategy = ResizingStrategy()
        with pytest.raises(RuntimeError):
            _ = strategy.organization

    def test_base_strategy_is_passive(self, organization):
        strategy = ResizingStrategy()
        strategy.bind(organization)
        assert strategy.initial_config() is None
        assert strategy.observe_interval(1000, 10, organization.full_config) is None
        assert not strategy.is_dynamic


class TestNoResizing:
    def test_initial_config_is_full_size(self, organization):
        strategy = NoResizing()
        strategy.bind(organization)
        assert strategy.initial_config() == organization.full_config

    def test_never_resizes(self, organization):
        strategy = NoResizing()
        strategy.bind(organization)
        assert strategy.observe_interval(10_000, 9_000, organization.full_config) is None


class TestStaticResizing:
    def test_initial_config_is_the_profiled_size(self, organization):
        config = organization.config_for_capacity(8 * KIB)
        strategy = StaticResizing(config)
        strategy.bind(organization)
        assert strategy.initial_config() == config
        assert strategy.config == config

    def test_never_reacts_to_intervals(self, organization):
        config = organization.config_for_capacity(8 * KIB)
        strategy = StaticResizing(config)
        strategy.bind(organization)
        assert strategy.observe_interval(1000, 999, config) is None
        assert not strategy.is_dynamic

    def test_bind_rejects_config_not_offered_by_organization(self, base_l1_geometry):
        foreign_org = SelectiveSets(CacheGeometry(32 * KIB, 4))
        config = foreign_org.config_for_capacity(4 * KIB)  # 4-way config
        strategy = StaticResizing(config)
        with pytest.raises(ResizingError):
            strategy.bind(SelectiveSets(base_l1_geometry))

    def test_name_used_in_reports(self, organization):
        assert StaticResizing(organization.full_config).name == "static"
