"""Tests for offline profiling: static size selection and dynamic parameters."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import KIB
from repro.resizing.organization import make_config
from repro.resizing.profiler import (
    ProfilePoint,
    derive_dynamic_parameters,
    select_static_config,
)


def _point(
    capacity_kib: int, energy: float, cycles: float, miss_ratio: float = 0.01
) -> ProfilePoint:
    accesses = 100_000
    return ProfilePoint(
        config=make_config(2, capacity_kib * KIB // (2 * 32), 32),
        energy=energy,
        cycles=cycles,
        l1_accesses=accesses,
        l1_misses=int(accesses * miss_ratio),
    )


class TestProfilePoint:
    def test_energy_delay_product(self):
        point = _point(32, energy=10.0, cycles=5.0)
        assert point.energy_delay == pytest.approx(50.0)

    def test_miss_ratio(self):
        point = _point(32, 10, 5, miss_ratio=0.03)
        assert point.miss_ratio == pytest.approx(0.03)

    def test_miss_ratio_with_no_accesses(self):
        point = ProfilePoint(config=make_config(2, 512, 32), energy=1, cycles=1)
        assert point.miss_ratio == 0.0


class TestSelectStaticConfig:
    def test_picks_lowest_energy_delay(self):
        points = [
            _point(32, energy=100, cycles=100),
            _point(16, energy=90, cycles=101),
            _point(8, energy=85, cycles=120),
        ]
        best = select_static_config(points)
        assert best.config.capacity_bytes == 16 * KIB

    def test_tie_breaks_toward_larger_capacity(self):
        points = [
            _point(32, energy=10, cycles=10),
            _point(16, energy=10, cycles=10),
        ]
        assert select_static_config(points).config.capacity_bytes == 32 * KIB

    def test_slowdown_bound_excludes_slow_candidates(self):
        points = [
            _point(32, energy=100, cycles=100),
            _point(8, energy=50, cycles=120),  # 20% slower but lowest E*D
        ]
        unbounded = select_static_config(points)
        bounded = select_static_config(points, baseline_cycles=100, max_slowdown=0.06)
        assert unbounded.config.capacity_bytes == 8 * KIB
        assert bounded.config.capacity_bytes == 32 * KIB

    def test_slowdown_bound_ignored_if_nothing_qualifies(self):
        points = [_point(16, energy=90, cycles=120), _point(8, energy=80, cycles=130)]
        best = select_static_config(points, baseline_cycles=100, max_slowdown=0.05)
        assert best.config.capacity_bytes == 8 * KIB

    def test_slowdown_bound_requires_baseline(self):
        with pytest.raises(ConfigurationError):
            select_static_config([_point(32, 1, 1)], max_slowdown=0.06)

    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            select_static_config([])


class TestDeriveDynamicParameters:
    def test_miss_bound_scales_with_sense_interval(self):
        points = [
            _point(32, 100, 100, miss_ratio=0.01),
            _point(16, 95, 102, miss_ratio=0.02),
        ]
        parameters = derive_dynamic_parameters(points, sense_interval_accesses=1000, slack=0.0)
        # Best static is 16K (lowest E*D); its miss ratio anchors the bound.
        assert parameters.miss_bound == pytest.approx(0.02 * 1.5 * 1000)
        assert parameters.sense_interval_accesses == 1000

    def test_size_bound_allows_sizes_below_the_static_choice(self):
        points = [
            _point(32, 100, 100, miss_ratio=0.01),
            _point(16, 99, 100, miss_ratio=0.02),
            _point(8, 101, 104, miss_ratio=0.05),
            _point(4, 120, 130, miss_ratio=0.30),
        ]
        parameters = derive_dynamic_parameters(points, size_bound_miss_allowance=0.10)
        # 8K is within the 10-point allowance, 4K is not.
        assert parameters.size_bound_bytes == 8 * KIB

    def test_size_bound_never_exceeds_static_choice(self):
        points = [
            _point(32, 100, 100, miss_ratio=0.01),
            _point(16, 90, 100, miss_ratio=0.02),
        ]
        parameters = derive_dynamic_parameters(points, size_bound_miss_allowance=0.0)
        assert parameters.size_bound_bytes <= 16 * KIB

    def test_streaming_application_keeps_full_size_bound(self):
        # Mimics swim: every smaller size misses far more than the allowance.
        points = [
            _point(32, 100, 100, miss_ratio=0.15),
            _point(16, 110, 130, miss_ratio=0.40),
        ]
        parameters = derive_dynamic_parameters(points, size_bound_miss_allowance=0.10)
        assert parameters.size_bound_bytes == 32 * KIB

    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_dynamic_parameters([])
