"""Tests for the selective-ways organization."""

import pytest

from repro.common.config import CacheGeometry
from repro.common.units import KIB
from repro.resizing.selective_ways import SelectiveWays


class TestSizeSpectrum:
    def test_four_way_cache_offers_paper_sizes(self, four_way_geometry):
        # Section 2.1: a 32K 4-way selective-ways cache offers 32K, 24K, 16K, 8K.
        organization = SelectiveWays(four_way_geometry)
        assert organization.distinct_sizes == [32 * KIB, 24 * KIB, 16 * KIB, 8 * KIB]

    def test_two_way_cache_offers_two_sizes(self, base_l1_geometry):
        organization = SelectiveWays(base_l1_geometry)
        assert organization.distinct_sizes == [32 * KIB, 16 * KIB]

    def test_sixteen_way_cache_has_fine_granularity(self):
        organization = SelectiveWays(CacheGeometry(32 * KIB, 16))
        sizes = organization.distinct_sizes
        assert len(sizes) == 16
        assert sizes[0] - sizes[1] == 2 * KIB  # 2K steps across the whole range

    def test_granularity_is_constant(self, four_way_geometry):
        organization = SelectiveWays(four_way_geometry)
        sizes = organization.distinct_sizes
        steps = {upper - lower for upper, lower in zip(sizes, sizes[1:])}
        assert steps == {8 * KIB}

    def test_number_of_sets_never_changes(self, four_way_geometry):
        organization = SelectiveWays(four_way_geometry)
        assert {config.sets for config in organization.configs} == {four_way_geometry.num_sets}

    def test_associativity_decreases_down_the_ladder(self, four_way_geometry):
        organization = SelectiveWays(four_way_geometry)
        ways = [config.ways for config in organization.ladder()]
        assert ways == [4, 3, 2, 1]


class TestProperties:
    def test_no_resizing_tag_bits(self, four_way_geometry):
        assert SelectiveWays(four_way_geometry).resizing_tag_bits == 0

    def test_minimum_size_is_one_way(self, four_way_geometry):
        assert SelectiveWays(four_way_geometry).min_config.capacity_bytes == 8 * KIB

    def test_direct_mapped_cache_offers_no_downsizing(self):
        organization = SelectiveWays(CacheGeometry(16 * KIB, 1))
        assert organization.distinct_sizes == [16 * KIB]

    @pytest.mark.parametrize("associativity", [2, 4, 8, 16])
    def test_number_of_configs_equals_associativity(self, associativity):
        organization = SelectiveWays(CacheGeometry(32 * KIB, associativity))
        assert len(organization.configs) == associativity
