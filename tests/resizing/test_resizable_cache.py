"""Tests for the resizable cache: access behaviour and Section 2.1 flush rules."""

import pytest

from repro.common.config import CacheGeometry
from repro.common.errors import ResizingError
from repro.common.units import KIB
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.organization import make_config
from repro.resizing.resizable_cache import ResizableCache
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays


def _sets_cache(geometry=None) -> ResizableCache:
    geometry = geometry or CacheGeometry(4 * KIB, 2, subarray_bytes=KIB)
    return ResizableCache(geometry, SelectiveSets(geometry), name="l1d")


def _ways_cache(geometry=None) -> ResizableCache:
    geometry = geometry or CacheGeometry(4 * KIB, 4, subarray_bytes=KIB)
    return ResizableCache(geometry, SelectiveWays(geometry), name="l1d")


class TestBasicAccess:
    def test_behaves_like_a_cache_at_full_size(self):
        cache = _sets_cache()
        assert not cache.access(0x1000).hit
        assert cache.access(0x1000).hit
        assert cache.stats.accesses == 2

    def test_starts_at_full_configuration(self):
        cache = _sets_cache()
        assert cache.current_config == cache.organization.full_config
        assert cache.current_capacity_bytes == 4 * KIB
        assert cache.subarray_state.enabled_subarrays == 4

    def test_rejects_mismatched_organization(self):
        geometry = CacheGeometry(4 * KIB, 2, subarray_bytes=KIB)
        other_geometry = CacheGeometry(8 * KIB, 2, subarray_bytes=KIB)
        with pytest.raises(ResizingError):
            ResizableCache(geometry, SelectiveSets(other_geometry))

    def test_rejects_resize_to_unoffered_config(self):
        cache = _sets_cache()
        with pytest.raises(ResizingError):
            cache.resize_to(make_config(8, 8, 32))


class TestSelectiveSetsResizing:
    def test_downsizing_halves_enabled_sets_and_subarrays(self):
        cache = _sets_cache()
        target = cache.organization.config_for_capacity(2 * KIB)
        outcome = cache.resize_to(target)
        assert outcome.changed
        assert cache.num_sets == 32
        assert cache.associativity == 2
        assert cache.subarray_state.enabled_subarrays == 2

    def test_downsizing_flushes_blocks_in_disabled_sets(self):
        cache = _sets_cache()
        # Fill every set with one clean block.
        for index in range(64):
            cache.access(index * 32)
        outcome = cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        # Half of the sets are disabled, and their blocks must leave the cache.
        assert outcome.discarded_blocks == 32
        assert cache.resident_blocks() == 32

    def test_downsizing_writes_back_dirty_blocks_from_disabled_sets(self):
        cache = _sets_cache()
        for index in range(64):
            cache.access(index * 32, is_write=True)
        outcome = cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        assert len(outcome.writeback_addresses) == 32
        assert all(address >= 32 * 32 for address in outcome.writeback_addresses)

    def test_blocks_in_remaining_sets_survive_a_downsize(self):
        cache = _sets_cache()
        cache.access(0x0)  # maps to set 0 in every configuration
        cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        assert cache.access(0x0).hit

    def test_accesses_after_downsize_stay_within_enabled_sets(self):
        cache = _sets_cache()
        cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        # An address whose full-size set index is above the enabled range
        # must now map into the enabled sets (index masking).
        high_index_address = 48 * 32
        cache.access(high_index_address)
        assert cache.access(high_index_address).hit
        assert cache.resident_blocks() <= 64

    def test_upsizing_flushes_blocks_whose_mapping_changes(self):
        cache = _sets_cache()
        small = cache.organization.config_for_capacity(2 * KIB)
        cache.resize_to(small)
        # Address 48*32 maps to set 16 when 32 sets are enabled, but to set
        # 48 when 64 sets are enabled, so its mapping changes on upsize.
        moving = 48 * 32
        staying = 8 * 32
        cache.access(moving, is_write=True)
        cache.access(staying, is_write=True)
        outcome = cache.resize_to(cache.organization.full_config)
        assert moving in outcome.writeback_addresses
        assert staying not in outcome.writeback_addresses
        assert not cache.probe(moving)
        assert cache.probe(staying)

    def test_upsizing_flushes_clean_blocks_with_changed_mapping_silently(self):
        cache = _sets_cache()
        cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        cache.access(48 * 32)  # clean block whose mapping will change
        outcome = cache.resize_to(cache.organization.full_config)
        assert outcome.writeback_addresses == []
        assert outcome.discarded_blocks == 1

    def test_resize_to_current_config_is_a_noop(self):
        cache = _sets_cache()
        outcome = cache.resize_to(cache.current_config)
        assert not outcome.changed
        assert cache.resize_count == 0


class TestSelectiveWaysResizing:
    def test_downsizing_ways_keeps_set_mapping(self):
        cache = _ways_cache()
        cache.access(0x0)
        cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        assert cache.associativity == 2
        assert cache.num_sets == cache.geometry.num_sets
        assert cache.access(0x0).hit

    def test_downsizing_ways_writes_back_only_dirty_victims(self):
        cache = _ways_cache()
        # Fill one set with 4 blocks: two dirty, two clean.
        stride = cache.geometry.num_sets * 32
        for way in range(4):
            cache.access(way * stride, is_write=(way < 2))
        outcome = cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        assert len(outcome.writeback_addresses) + outcome.discarded_blocks == 2
        assert cache.resident_blocks() == 2

    def test_upsizing_ways_flushes_nothing(self):
        cache = _ways_cache()
        small = cache.organization.config_for_capacity(2 * KIB)
        cache.resize_to(small)
        cache.access(0x0, is_write=True)
        outcome = cache.resize_to(cache.organization.full_config)
        assert outcome.writeback_addresses == []
        assert outcome.discarded_blocks == 0
        assert cache.access(0x0).hit

    def test_way_mask_tracks_enabled_ways(self):
        cache = _ways_cache()
        cache.resize_to(cache.organization.config_for_capacity(3 * KIB))
        assert cache.way_mask.enabled_ways == 3
        assert cache.associativity == 3


class TestHybridResizing:
    def test_hybrid_can_change_both_dimensions(self):
        geometry = CacheGeometry(32 * KIB, 4)
        cache = ResizableCache(geometry, HybridSetsAndWays(geometry))
        cache.resize_to(cache.organization.config_for_capacity(6 * KIB))
        assert cache.associativity == 3
        assert cache.num_sets == 64
        assert cache.current_capacity_bytes == 6 * KIB

    def test_resizing_tag_bits_follow_organization(self):
        geometry = CacheGeometry(32 * KIB, 4)
        hybrid_cache = ResizableCache(geometry, HybridSetsAndWays(geometry))
        ways_cache = ResizableCache(geometry, SelectiveWays(geometry))
        assert hybrid_cache.resizing_tag_bits == 3
        assert ways_cache.resizing_tag_bits == 0


class TestAccounting:
    def test_resize_counters_accumulate(self):
        cache = _sets_cache()
        for _ in range(3):
            cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
            cache.resize_to(cache.organization.full_config)
        assert cache.resize_count == 6

    def test_flush_writebacks_counted_in_stats(self):
        cache = _sets_cache()
        for index in range(64):
            cache.access(index * 32, is_write=True)
        before = cache.stats.writebacks
        outcome = cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        assert cache.stats.writebacks == before + len(outcome.writeback_addresses)
        assert cache.flush_writebacks == len(outcome.writeback_addresses)

    def test_reset_stats_clears_resize_counters(self):
        cache = _sets_cache()
        cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        cache.reset_stats()
        assert cache.resize_count == 0
        assert cache.stats.accesses == 0

    def test_flush_all_returns_dirty_addresses(self):
        cache = _sets_cache()
        cache.access(0x0, is_write=True)
        cache.access(0x40)
        dirty = cache.flush_all()
        assert dirty == [0x0]
        assert cache.resident_blocks() == 0
