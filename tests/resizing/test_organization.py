"""Tests for the organization base class and SizeConfig."""

import pytest

from repro.common.errors import ResizingError
from repro.common.units import KIB
from repro.resizing.organization import make_config
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays


class TestSizeConfig:
    def test_label_formats_ways(self):
        assert make_config(4, 256, 32).label == "32K 4-way"
        assert make_config(1, 256, 32).label == "8K dm"
        assert make_config(3, 256, 32).label == "24K 3-way"

    def test_ordering_by_capacity(self):
        small = make_config(2, 64, 32)
        large = make_config(2, 512, 32)
        assert small < large
        assert sorted([large, small])[0] is small

    def test_capacity_consistency(self):
        config = make_config(4, 128, 32)
        assert config.capacity_bytes == 4 * 128 * 32


class TestNavigation:
    def test_ladder_is_strictly_decreasing(self, base_l1_geometry):
        organization = SelectiveSets(base_l1_geometry)
        sizes = [config.capacity_bytes for config in organization.ladder()]
        assert sizes == sorted(sizes, reverse=True)
        assert len(set(sizes)) == len(sizes)

    def test_full_and_min_configs(self, base_l1_geometry):
        organization = SelectiveSets(base_l1_geometry)
        assert organization.full_config.capacity_bytes == 32 * KIB
        assert organization.min_config.capacity_bytes == 2 * KIB

    def test_next_smaller_and_larger_are_inverses(self, base_l1_geometry):
        organization = SelectiveSets(base_l1_geometry)
        ladder = organization.ladder()
        for upper, lower in zip(ladder, ladder[1:]):
            assert organization.next_smaller(upper) == lower
            assert organization.next_larger(lower) == upper

    def test_ends_of_ladder_return_none(self, base_l1_geometry):
        organization = SelectiveSets(base_l1_geometry)
        assert organization.next_larger(organization.full_config) is None
        assert organization.next_smaller(organization.min_config) is None

    def test_navigation_rejects_foreign_config(self, base_l1_geometry):
        organization = SelectiveSets(base_l1_geometry)
        foreign = make_config(8, 8, 32)
        with pytest.raises(ResizingError):
            organization.next_smaller(foreign)

    def test_config_for_capacity_lookup(self, base_l1_geometry):
        organization = SelectiveSets(base_l1_geometry)
        assert organization.config_for_capacity(16 * KIB).sets == 256
        with pytest.raises(ResizingError):
            organization.config_for_capacity(24 * KIB)

    def test_contains(self, base_l1_geometry):
        organization = SelectiveWays(base_l1_geometry)
        assert organization.contains(organization.full_config)
        assert not organization.contains(make_config(2, 64, 32))

    def test_repr_lists_sizes(self, four_way_geometry):
        text = repr(SelectiveWays(four_way_geometry))
        assert "32K 4-way" in text
        assert "24K 3-way" in text
