"""Tests for way and set masks."""

import pytest

from repro.common.errors import ConfigurationError, ResizingError
from repro.resizing.masks import SetMask, WayMask


class TestWayMask:
    def test_all_ways_enabled_by_default(self):
        mask = WayMask(4)
        assert mask.enabled_ways == 4
        assert mask.bits == (1, 1, 1, 1)

    def test_enable_subset_of_ways(self):
        mask = WayMask(4, enabled_ways=2)
        assert mask.bits == (1, 1, 0, 0)
        assert mask.is_enabled(0)
        assert not mask.is_enabled(3)

    def test_set_enabled_bounds(self):
        mask = WayMask(4)
        with pytest.raises(ResizingError):
            mask.set_enabled(0)
        with pytest.raises(ResizingError):
            mask.set_enabled(5)

    def test_way_index_bounds_checked(self):
        mask = WayMask(2)
        with pytest.raises(ConfigurationError):
            mask.is_enabled(2)

    def test_zero_ways_rejected(self):
        with pytest.raises(ConfigurationError):
            WayMask(0)


class TestSetMask:
    def test_all_sets_enabled_by_default(self):
        mask = SetMask(total_sets=512, min_sets=32)
        assert mask.enabled_sets == 512
        assert mask.masked_index_bits == 0

    def test_enabling_fewer_sets_masks_index_bits(self):
        mask = SetMask(total_sets=512, min_sets=32, enabled_sets=128)
        assert mask.masked_index_bits == 2

    def test_resizing_tag_bits_cover_smallest_size(self):
        # 512 -> 32 sets is four halvings, so four extra tag bits are needed,
        # matching the paper's "usually between 1 and 4" observation.
        mask = SetMask(total_sets=512, min_sets=32)
        assert mask.resizing_tag_bits == 4

    def test_enabled_sets_must_be_power_of_two(self):
        mask = SetMask(total_sets=512, min_sets=32)
        with pytest.raises(ResizingError):
            mask.set_enabled(96)

    def test_enabled_sets_must_respect_bounds(self):
        mask = SetMask(total_sets=512, min_sets=32)
        with pytest.raises(ResizingError):
            mask.set_enabled(16)
        with pytest.raises(ResizingError):
            mask.set_enabled(1024)

    def test_total_sets_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            SetMask(total_sets=48, min_sets=16)

    def test_min_sets_cannot_exceed_total(self):
        with pytest.raises(ConfigurationError):
            SetMask(total_sets=32, min_sets=64)
