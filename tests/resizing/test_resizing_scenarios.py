"""Scenario tests: the mechanisms behind the paper's organization comparison.

These tests drive the resizable cache with small, hand-constructed reference
streams and check the *reasons* the paper gives for each organization's
strengths — associativity preservation, minimum size, granularity — rather
than end-to-end energy numbers (those are covered by the benchmarks).
"""

import pytest

from repro.common.config import CacheGeometry
from repro.common.units import KIB
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.resizable_cache import ResizableCache
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays

#: 32 KiB strides always collide into one set in every configuration used here.
CONFLICT_STRIDE = 32 * KIB


def _miss_ratio_for_conflict_stream(cache, group_size: int, rounds: int = 50) -> float:
    """Round-robin over ``group_size`` conflicting blocks; return the miss ratio."""
    cache.reset_stats()
    for _ in range(rounds):
        for index in range(group_size):
            cache.access(index * CONFLICT_STRIDE)
    return cache.stats.miss_ratio


class TestAssociativityPreservation:
    """Selective-sets keeps conflict groups resident while shrinking; ways does not."""

    def test_selective_sets_keeps_a_four_way_conflict_group_after_halving(self):
        geometry = CacheGeometry(32 * KIB, 4)
        cache = ResizableCache(geometry, SelectiveSets(geometry))
        cache.resize_to(cache.organization.config_for_capacity(16 * KIB))
        assert cache.associativity == 4
        assert _miss_ratio_for_conflict_stream(cache, group_size=4) < 0.05

    def test_selective_ways_thrashes_the_same_group_after_halving(self):
        geometry = CacheGeometry(32 * KIB, 4)
        cache = ResizableCache(geometry, SelectiveWays(geometry))
        cache.resize_to(cache.organization.config_for_capacity(16 * KIB))
        assert cache.associativity == 2
        assert _miss_ratio_for_conflict_stream(cache, group_size=4) > 0.9

    def test_three_way_hybrid_point_handles_groups_of_three(self):
        geometry = CacheGeometry(32 * KIB, 4)
        cache = ResizableCache(geometry, HybridSetsAndWays(geometry))
        cache.resize_to(cache.organization.config_for_capacity(24 * KIB))
        assert cache.associativity == 3
        assert _miss_ratio_for_conflict_stream(cache, group_size=3) < 0.05
        assert _miss_ratio_for_conflict_stream(cache, group_size=4) > 0.9


class TestCapacityBehaviour:
    """Shrinking below the working set produces capacity misses; above it does not."""

    def _working_set_miss_ratio(self, cache, working_set_bytes: int, rounds: int = 8) -> float:
        blocks = working_set_bytes // 32
        # Warm the cache with one pass, then measure steady-state reuse.
        for block in range(blocks):
            cache.access(0x1000_0000 + block * 32)
        cache.reset_stats()
        for _ in range(rounds):
            for block in range(blocks):
                cache.access(0x1000_0000 + block * 32)
        return cache.stats.miss_ratio

    def test_downsizing_above_the_working_set_is_free(self):
        geometry = CacheGeometry(32 * KIB, 2)
        cache = ResizableCache(geometry, SelectiveSets(geometry))
        cache.resize_to(cache.organization.config_for_capacity(8 * KIB))
        assert self._working_set_miss_ratio(cache, working_set_bytes=4 * KIB) < 0.01

    def test_downsizing_below_the_working_set_thrashes_a_sequential_sweep(self):
        geometry = CacheGeometry(32 * KIB, 2)
        cache = ResizableCache(geometry, SelectiveSets(geometry))
        cache.resize_to(cache.organization.config_for_capacity(4 * KIB))
        assert self._working_set_miss_ratio(cache, working_set_bytes=16 * KIB) > 0.9

    @pytest.mark.parametrize("factory", [SelectiveWays, SelectiveSets, HybridSetsAndWays])
    def test_full_size_behaviour_is_identical_across_organizations(self, factory):
        geometry = CacheGeometry(32 * KIB, 4)
        cache = ResizableCache(geometry, factory(geometry))
        miss_ratio = self._working_set_miss_ratio(cache, working_set_bytes=16 * KIB)
        assert miss_ratio < 0.01


class TestMinimumSizeAdvantage:
    """Selective-sets reaches smaller sizes than selective-ways at low associativity."""

    def test_minimum_sizes_at_four_way(self):
        geometry = CacheGeometry(32 * KIB, 4)
        assert SelectiveSets(geometry).min_config.capacity_bytes == 4 * KIB
        assert SelectiveWays(geometry).min_config.capacity_bytes == 8 * KIB
        assert HybridSetsAndWays(geometry).min_config.capacity_bytes == 1 * KIB

    def test_small_working_set_fits_the_selective_sets_minimum(self):
        geometry = CacheGeometry(32 * KIB, 4)
        cache = ResizableCache(geometry, SelectiveSets(geometry))
        cache.resize_to(cache.organization.min_config)
        blocks = (3 * KIB) // 32  # an ammp-like 3 KiB working set
        for block in range(blocks):
            cache.access(0x1000_0000 + block * 32)
        cache.reset_stats()
        for block in range(blocks):
            assert cache.access(0x1000_0000 + block * 32).hit

    def test_enabled_subarrays_track_the_minimum_configuration(self):
        geometry = CacheGeometry(32 * KIB, 4)
        for factory, expected_subarrays in ((SelectiveSets, 4), (SelectiveWays, 8)):
            cache = ResizableCache(geometry, factory(geometry))
            cache.resize_to(cache.organization.min_config)
            assert cache.subarray_state.enabled_subarrays == expected_subarrays


class TestResizeTrafficAccounting:
    """Resizes report exactly the writeback traffic the paper charges for."""

    def test_downsize_then_upsize_roundtrip_counts_flushes(self):
        geometry = CacheGeometry(8 * KIB, 2, subarray_bytes=KIB)
        cache = ResizableCache(geometry, SelectiveSets(geometry))
        for block in range(256):  # fill the whole cache with dirty data
            cache.access(block * 32, is_write=True)
        down = cache.resize_to(cache.organization.config_for_capacity(4 * KIB))
        up = cache.resize_to(cache.organization.full_config)
        # Downsizing wrote back the disabled half; upsizing flushed whatever
        # had to move; both are visible in the cache's flush accounting.
        assert len(down.writeback_addresses) == 128
        assert cache.flush_writebacks == len(down.writeback_addresses) + len(up.writeback_addresses)
        assert cache.resize_count == 2

    def test_ways_roundtrip_preserves_still_enabled_contents(self):
        geometry = CacheGeometry(8 * KIB, 4, subarray_bytes=KIB)
        cache = ResizableCache(geometry, SelectiveWays(geometry))
        cache.access(0x0, is_write=True)
        cache.resize_to(cache.organization.config_for_capacity(2 * KIB))
        cache.resize_to(cache.organization.full_config)
        assert cache.access(0x0).hit
