"""Tests for the hybrid selective-sets-and-ways organization (Table 1)."""

import pytest

from repro.common.config import CacheGeometry
from repro.common.units import KIB
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays


class TestTable1:
    def test_paper_size_spectrum_for_32k_4way(self, four_way_geometry):
        # Table 1: 32K, 24K, 16K, 12K, 8K, 6K, 4K, 3K, 2K and 1K.
        organization = HybridSetsAndWays(four_way_geometry)
        expected = [32, 24, 16, 12, 8, 6, 4, 3, 2, 1]
        assert organization.distinct_sizes == [size * KIB for size in expected]

    def test_ladder_follows_paper_resizing_scheme(self, four_way_geometry):
        # Sizes between 32K and 3K alternate between 4-way and 3-way; below
        # 3K only associativity reductions remain (Table 1 discussion).
        organization = HybridSetsAndWays(four_way_geometry)
        labels = [config.label for config in organization.ladder()]
        assert labels == [
            "32K 4-way",
            "24K 3-way",
            "16K 4-way",
            "12K 3-way",
            "8K 4-way",
            "6K 3-way",
            "4K 4-way",
            "3K 3-way",
            "2K 2-way",
            "1K dm",
        ]

    def test_redundant_sizes_resolve_to_highest_associativity(self, four_way_geometry):
        organization = HybridSetsAndWays(four_way_geometry)
        redundant = organization.redundant_sizes()
        # 16K is offered as 4-way (128 sets) and 2-way (256 sets); the ladder
        # must pick the 4-way option.
        assert 16 * KIB in redundant
        assert organization.config_for_capacity(16 * KIB).ways == 4

    def test_size_table_rows_match_way_capacities(self, four_way_geometry):
        organization = HybridSetsAndWays(four_way_geometry)
        table = organization.size_table()
        assert sorted(table, reverse=True) == [8 * KIB, 4 * KIB, 2 * KIB, KIB]
        assert table[8 * KIB][4].capacity_bytes == 32 * KIB
        assert table[8 * KIB][3].capacity_bytes == 24 * KIB
        assert table[KIB][1].capacity_bytes == KIB

    def test_format_size_table_contains_paper_row(self, four_way_geometry):
        rendered = HybridSetsAndWays(four_way_geometry).format_size_table()
        assert "32K" in rendered and "24K" in rendered and "1K" in rendered
        assert "dm" in rendered


class TestSupersetProperty:
    @pytest.mark.parametrize("associativity", [2, 4, 8, 16])
    def test_hybrid_offers_superset_of_both_organizations(self, associativity):
        geometry = CacheGeometry(32 * KIB, associativity)
        hybrid_sizes = set(HybridSetsAndWays(geometry).distinct_sizes)
        ways_sizes = set(SelectiveWays(geometry).distinct_sizes)
        sets_sizes = set(SelectiveSets(geometry).distinct_sizes)
        assert ways_sizes <= hybrid_sizes
        assert sets_sizes <= hybrid_sizes

    @pytest.mark.parametrize("associativity", [4, 8, 16])
    def test_hybrid_offers_sizes_neither_basic_organization_has(self, associativity):
        geometry = CacheGeometry(32 * KIB, associativity)
        hybrid_sizes = set(HybridSetsAndWays(geometry).distinct_sizes)
        union = set(SelectiveWays(geometry).distinct_sizes) | set(
            SelectiveSets(geometry).distinct_sizes
        )
        assert hybrid_sizes - union, "hybrid should enrich the size spectrum"

    def test_hybrid_minimum_is_at_most_either_organization(self, four_way_geometry):
        hybrid = HybridSetsAndWays(four_way_geometry)
        ways = SelectiveWays(four_way_geometry)
        sets = SelectiveSets(four_way_geometry)
        assert hybrid.min_config.capacity_bytes <= ways.min_config.capacity_bytes
        assert hybrid.min_config.capacity_bytes <= sets.min_config.capacity_bytes

    def test_resizing_tag_bits_match_selective_sets(self, four_way_geometry):
        assert (
            HybridSetsAndWays(four_way_geometry).resizing_tag_bits
            == SelectiveSets(four_way_geometry).resizing_tag_bits
        )
