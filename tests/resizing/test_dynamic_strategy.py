"""Tests for the miss-ratio based dynamic resizing strategy."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import KIB
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.selective_sets import SelectiveSets


@pytest.fixture
def organization(base_l1_geometry):
    return SelectiveSets(base_l1_geometry)


def _bound_strategy(organization, miss_bound=50.0, size_bound=2 * KIB, **kwargs):
    strategy = DynamicResizing(
        miss_bound=miss_bound,
        size_bound_bytes=size_bound,
        sense_interval_accesses=1000,
        settle_intervals=0,
        **kwargs,
    )
    strategy.bind(organization)
    return strategy


class TestConstruction:
    def test_defaults_start_at_full_size(self, organization):
        strategy = _bound_strategy(organization)
        assert strategy.initial_config() == organization.full_config
        assert strategy.is_dynamic

    def test_explicit_initial_config(self, organization):
        config = organization.config_for_capacity(8 * KIB)
        strategy = DynamicResizing(
            miss_bound=10, size_bound_bytes=2 * KIB, initial_config=config
        )
        strategy.bind(organization)
        assert strategy.initial_config() == config

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            DynamicResizing(miss_bound=-1, size_bound_bytes=2 * KIB)
        with pytest.raises(ConfigurationError):
            DynamicResizing(miss_bound=1, size_bound_bytes=2 * KIB, sense_interval_accesses=0)
        with pytest.raises(ConfigurationError):
            DynamicResizing(miss_bound=1, size_bound_bytes=2 * KIB, downsize_fraction=1.5)
        with pytest.raises(ConfigurationError):
            DynamicResizing(miss_bound=1, size_bound_bytes=2 * KIB, settle_intervals=-1)


class TestDecisions:
    def test_low_misses_trigger_downsize(self, organization):
        strategy = _bound_strategy(organization, miss_bound=50)
        decision = strategy.observe_interval(1000, 5, organization.full_config)
        assert decision == organization.next_smaller(organization.full_config)
        assert strategy.downsizes == 1

    def test_high_misses_trigger_upsize(self, organization):
        strategy = _bound_strategy(organization, miss_bound=50)
        current = organization.config_for_capacity(8 * KIB)
        decision = strategy.observe_interval(1000, 500, current)
        assert decision == organization.next_larger(current)
        assert strategy.upsizes == 1

    def test_upsize_impossible_at_full_size(self, organization):
        strategy = _bound_strategy(organization, miss_bound=50)
        assert strategy.observe_interval(1000, 500, organization.full_config) is None

    def test_size_bound_blocks_downsizing(self, organization):
        strategy = _bound_strategy(organization, miss_bound=50, size_bound=16 * KIB)
        current = organization.config_for_capacity(16 * KIB)
        assert strategy.observe_interval(1000, 0, current) is None

    def test_incomplete_sense_interval_defers_decision(self, organization):
        strategy = _bound_strategy(organization, miss_bound=50)
        assert strategy.observe_interval(400, 0, organization.full_config) is None
        decision = strategy.observe_interval(700, 0, organization.full_config)
        assert decision is not None

    def test_misses_are_scaled_to_the_sense_interval(self, organization):
        strategy = _bound_strategy(organization, miss_bound=50)
        # 120 misses over 2000 accesses is 60 per 1000-access interval, which
        # exceeds the bound even though the accumulation spans two intervals.
        current = organization.config_for_capacity(8 * KIB)
        decision = strategy.observe_interval(2000, 120, current)
        assert decision == organization.next_larger(current)

    def test_downsize_hysteresis_fraction(self, organization):
        strategy = _bound_strategy(organization, miss_bound=100, downsize_fraction=0.5)
        # 60 misses: below the upsize bound but above the downsize threshold.
        assert strategy.observe_interval(1000, 60, organization.full_config) is None
        assert strategy.observe_interval(1000, 40, organization.full_config) is not None


class TestSettling:
    def test_settle_interval_skips_post_resize_window(self, organization):
        strategy = DynamicResizing(
            miss_bound=50,
            size_bound_bytes=2 * KIB,
            sense_interval_accesses=1000,
            settle_intervals=1,
        )
        strategy.bind(organization)
        first = strategy.observe_interval(1000, 0, organization.full_config)
        assert first is not None
        # The next full window is the flush transient and must be ignored.
        assert strategy.observe_interval(1000, 500, first) is None
        # After settling, decisions resume.
        assert strategy.observe_interval(1000, 500, first) == organization.full_config

    def test_reset_clears_settling_and_counters(self, organization):
        strategy = _bound_strategy(organization, miss_bound=50)
        strategy.observe_interval(1000, 0, organization.full_config)
        strategy.reset()
        assert strategy.upsizes == 0
        assert strategy.downsizes == 0
