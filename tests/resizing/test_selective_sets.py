"""Tests for the selective-sets organization."""

import pytest

from repro.common.config import CacheGeometry
from repro.common.units import KIB
from repro.resizing.selective_sets import SelectiveSets


class TestSizeSpectrum:
    def test_four_way_cache_offers_powers_of_two(self, four_way_geometry):
        # Section 2.1: a 32K 4-way selective-sets cache offers 32K, 16K, 8K, 4K.
        organization = SelectiveSets(four_way_geometry)
        assert organization.distinct_sizes == [32 * KIB, 16 * KIB, 8 * KIB, 4 * KIB]

    def test_two_way_cache_reaches_two_kib(self, base_l1_geometry):
        organization = SelectiveSets(base_l1_geometry)
        assert organization.distinct_sizes == [
            32 * KIB,
            16 * KIB,
            8 * KIB,
            4 * KIB,
            2 * KIB,
        ]

    def test_sixteen_way_cache_is_granularity_limited(self):
        # With one 1K subarray per way as the floor, a 16-way cache can only
        # halve its sets once — the limitation Figure 4 attributes to
        # selective-sets at high associativity.
        organization = SelectiveSets(CacheGeometry(32 * KIB, 16))
        assert organization.distinct_sizes == [32 * KIB, 16 * KIB]

    def test_associativity_never_changes(self, four_way_geometry):
        organization = SelectiveSets(four_way_geometry)
        assert {config.ways for config in organization.configs} == {4}

    def test_sets_are_powers_of_two(self, base_l1_geometry):
        organization = SelectiveSets(base_l1_geometry)
        for config in organization.configs:
            assert config.sets & (config.sets - 1) == 0

    def test_minimum_is_one_subarray_per_way(self, four_way_geometry):
        organization = SelectiveSets(four_way_geometry)
        smallest = organization.min_config
        assert smallest.sets == four_way_geometry.min_sets
        assert smallest.capacity_bytes == 4 * KIB


class TestProperties:
    def test_resizing_tag_bits_match_set_mask(self, base_l1_geometry):
        # 512 -> 32 sets requires 4 extra tag bits.
        assert SelectiveSets(base_l1_geometry).resizing_tag_bits == 4

    def test_resizing_tag_bits_small_for_high_associativity(self):
        assert SelectiveSets(CacheGeometry(32 * KIB, 16)).resizing_tag_bits == 1

    @pytest.mark.parametrize(
        "associativity,expected_count", [(2, 5), (4, 4), (8, 3), (16, 2)]
    )
    def test_offered_size_count_shrinks_with_associativity(self, associativity, expected_count):
        organization = SelectiveSets(CacheGeometry(32 * KIB, associativity))
        assert len(organization.configs) == expected_count

    def test_larger_subarrays_reduce_the_spectrum(self):
        coarse = SelectiveSets(CacheGeometry(32 * KIB, 2, subarray_bytes=4 * KIB))
        fine = SelectiveSets(CacheGeometry(32 * KIB, 2, subarray_bytes=KIB))
        assert len(coarse.configs) < len(fine.configs)
        assert coarse.min_config.capacity_bytes == 8 * KIB
