"""Tests for cache block metadata."""

from repro.mem.block import CacheBlock


def test_new_block_is_clean_by_default():
    block = CacheBlock(0x1000)
    assert block.address == 0x1000
    assert not block.dirty


def test_block_can_be_created_dirty():
    assert CacheBlock(0x2000, dirty=True).dirty


def test_mark_dirty_and_clean():
    block = CacheBlock(0x1000)
    block.mark_dirty()
    assert block.dirty
    block.mark_clean()
    assert not block.dirty


def test_repr_mentions_state():
    assert "clean" in repr(CacheBlock(0x20))
    assert "dirty" in repr(CacheBlock(0x20, dirty=True))
