"""Tests for the main-memory model."""

from repro.common.config import MemoryConfig
from repro.mem.main_memory import MainMemory


def test_read_latency_matches_table2_formula():
    memory = MainMemory(MemoryConfig())
    assert memory.read_block(0x1000, 64) == 80 + 5 * 8


def test_write_latency_uses_same_formula():
    memory = MainMemory(MemoryConfig())
    assert memory.write_block(0x1000, 32) == 80 + 5 * 4


def test_access_counters_accumulate():
    memory = MainMemory()
    memory.read_block(0x0, 64)
    memory.read_block(0x40, 64)
    memory.write_block(0x80, 64)
    assert memory.total_accesses == 3
    stats = memory.stats.as_dict()
    assert stats["reads"] == 2
    assert stats["writes"] == 1
    assert stats["bytes_transferred"] == 192


def test_reset_stats_clears_counters():
    memory = MainMemory()
    memory.read_block(0x0, 64)
    memory.reset_stats()
    assert memory.total_accesses == 0


def test_custom_latency_configuration():
    memory = MainMemory(MemoryConfig(base_latency=100, cycles_per_chunk=2, chunk_bytes=16))
    assert memory.read_block(0x0, 64) == 100 + 2 * 4
