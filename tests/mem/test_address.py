"""Tests for address splitting and reconstruction."""

import pytest

from repro.common.errors import ConfigurationError
from repro.mem.address import AddressMapper, block_address, block_offset


class TestBlockHelpers:
    def test_block_address_clears_offset(self):
        assert block_address(0x1234, 32) == 0x1220
        assert block_address(0x1220, 32) == 0x1220

    def test_block_offset(self):
        assert block_offset(0x1234, 32) == 0x14
        assert block_offset(0x1220, 32) == 0


class TestAddressMapper:
    def test_split_and_rebuild_roundtrip(self):
        mapper = AddressMapper(block_bytes=32, num_sets=512)
        for address in (0x0, 0x1000, 0xDEADBEE0, 0x7FFFFFE0):
            tag, index = mapper.split(address)
            rebuilt = mapper.rebuild_address(tag, index)
            assert rebuilt == block_address(address, 32)

    def test_set_index_wraps_with_num_sets(self):
        mapper = AddressMapper(block_bytes=32, num_sets=16)
        # Addresses one "cache way" apart map to the same set.
        stride = 16 * 32
        assert mapper.set_index(0x100) == mapper.set_index(0x100 + stride)

    def test_fewer_sets_use_fewer_index_bits(self):
        full = AddressMapper(block_bytes=32, num_sets=512)
        half = AddressMapper(block_bytes=32, num_sets=256)
        assert full.index_bits == 9
        assert half.index_bits == 8
        assert half.tag_bits(32) == full.tag_bits(32) + 1

    def test_downsizing_preserves_low_set_indices(self):
        # The selective-sets flush rule relies on this: a block stored in a
        # set whose index is below the new (smaller) set count maps to the
        # same set after downsizing.
        full = AddressMapper(block_bytes=32, num_sets=512)
        half = AddressMapper(block_bytes=32, num_sets=256)
        for address in range(0, 512 * 32 * 4, 32):
            full_index = full.set_index(address)
            if full_index < 256:
                assert half.set_index(address) == full_index

    def test_same_block_same_mapping(self):
        mapper = AddressMapper(block_bytes=32, num_sets=64)
        assert mapper.split(0x4000) == mapper.split(0x4000 + 31)

    def test_conflict_stride_maps_to_same_set(self):
        # The workload generator's conflict groups are spaced 32 KiB apart;
        # they must collide in every configuration used by the experiments.
        for num_sets in (32, 64, 128, 256, 512, 1024):
            mapper = AddressMapper(block_bytes=32, num_sets=num_sets)
            base = 0x4000_0000
            indices = {mapper.set_index(base + i * 32 * 1024) for i in range(8)}
            assert len(indices) == 1

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(block_bytes=32, num_sets=48)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(block_bytes=40, num_sets=64)
