"""Tests for the synthetic trace generator."""

import pytest

from repro.workloads.generator import CODE_BASE, DATA_BASE, WorkloadGenerator
from repro.workloads.profiles import get_profile
from repro.workloads.trace import Trace


@pytest.fixture(scope="module")
def gcc_trace() -> Trace:
    return WorkloadGenerator(get_profile("gcc")).generate(12_000)


class TestDeterminism:
    def test_same_profile_and_seed_give_identical_traces(self):
        first = WorkloadGenerator(get_profile("ammp")).generate(3_000)
        second = WorkloadGenerator(get_profile("ammp")).generate(3_000)
        assert first.records == second.records

    def test_explicit_seed_overrides_profile_seed(self):
        default = WorkloadGenerator(get_profile("ammp")).generate(2_000)
        reseeded = WorkloadGenerator(get_profile("ammp"), seed=999).generate(2_000)
        assert default.records != reseeded.records

    def test_different_applications_differ(self):
        ammp = WorkloadGenerator(get_profile("ammp")).generate(2_000)
        swim = WorkloadGenerator(get_profile("swim")).generate(2_000)
        assert ammp.records != swim.records


class TestStreamShape:
    def test_requested_length_is_honoured(self, gcc_trace):
        assert len(gcc_trace) == 12_000

    def test_memory_reference_fraction_matches_profile(self, gcc_trace):
        profile = get_profile("gcc")
        fraction = gcc_trace.memory_references / len(gcc_trace)
        assert abs(fraction - profile.mem_ref_fraction) < 0.05

    def test_branch_fraction_matches_profile(self, gcc_trace):
        profile = get_profile("gcc")
        fraction = gcc_trace.branches / len(gcc_trace)
        assert abs(fraction - profile.branch_fraction) < 0.05

    def test_store_fraction_matches_profile(self, gcc_trace):
        profile = get_profile("gcc")
        stores = sum(1 for r in gcc_trace.records if r.is_store)
        fraction = stores / max(1, gcc_trace.memory_references)
        assert abs(fraction - profile.store_fraction) < 0.07

    def test_code_and_data_regions_are_disjoint(self, gcc_trace):
        for record in gcc_trace.records[:3000]:
            assert record.pc >= CODE_BASE
            assert record.pc < DATA_BASE
            if record.data_address is not None:
                assert record.data_address >= DATA_BASE

    def test_data_footprint_tracks_the_profile_working_set(self):
        profile = get_profile("ammp")  # 3 KiB working set, no conflicts
        trace = WorkloadGenerator(profile).generate(20_000)
        blocks = {
            record.data_address & ~31
            for record in trace.records
            if record.data_address is not None and record.data_address < 0x4000_0000
        }
        footprint = len(blocks) * 32
        assert footprint <= profile.max_data_working_set * 1.05

    def test_mlp_metadata_carried_on_the_trace(self, gcc_trace):
        assert gcc_trace.memory_level_parallelism == get_profile("gcc").memory_level_parallelism

    def test_taken_flag_only_set_for_branches(self, gcc_trace):
        for record in gcc_trace.records[:3000]:
            if record.taken:
                assert record.is_branch
