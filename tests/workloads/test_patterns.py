"""Tests for the data/code reference patterns."""

import pytest

from repro.common.errors import WorkloadError
from repro.common.rng import DeterministicRng
from repro.workloads.patterns import CONFLICT_STRIDE, ConflictGroupPattern, WorkingSetPattern


class TestWorkingSetPattern:
    def test_addresses_stay_within_the_working_set(self):
        pattern = WorkingSetPattern(base_address=0x1000_0000, working_set_bytes=8 * 1024)
        rng = DeterministicRng(1)
        for _ in range(2000):
            address = pattern.next_address(rng)
            assert 0x1000_0000 <= address < 0x1000_0000 + 8 * 1024

    def test_touches_most_of_the_working_set_eventually(self):
        pattern = WorkingSetPattern(base_address=0, working_set_bytes=4 * 1024)
        rng = DeterministicRng(2)
        touched = {pattern.next_address(rng) // 32 for _ in range(20_000)}
        assert len(touched) > 0.9 * pattern.num_blocks

    def test_references_are_skewed_toward_the_hot_tier(self):
        pattern = WorkingSetPattern(base_address=0, working_set_bytes=32 * 1024)
        rng = DeterministicRng(3)
        hot_limit = int(32 * 1024 * 0.10)
        hits_in_hot_tier = sum(
            1 for _ in range(10_000) if pattern.next_address(rng) < hot_limit
        )
        # The hot tier holds 10% of the data but should receive far more than
        # 10% of the references (55% nominal for data tiers).
        assert hits_in_hot_tier > 3_500

    def test_code_tiers_are_hotter_than_data_tiers(self):
        data = WorkingSetPattern(0, 32 * 1024, tiers=WorkingSetPattern.DATA_TIERS)
        code = WorkingSetPattern(0, 32 * 1024, tiers=WorkingSetPattern.CODE_TIERS)
        rng_data, rng_code = DeterministicRng(4), DeterministicRng(4)
        hot_limit = int(32 * 1024 * 0.10)
        data_hot = sum(1 for _ in range(8000) if data.next_address(rng_data) < hot_limit)
        code_hot = sum(1 for _ in range(8000) if code.next_address(rng_code) < hot_limit)
        assert code_hot > data_hot

    def test_sequential_component_walks_forward(self):
        pattern = WorkingSetPattern(0, 4 * 1024, sequential_fraction=1.0)
        rng = DeterministicRng(5)
        blocks = [pattern.next_address(rng) // 32 for _ in range(10)]
        assert blocks == sorted(blocks)

    def test_too_small_working_set_rejected(self):
        with pytest.raises(WorkloadError):
            WorkingSetPattern(0, working_set_bytes=16)

    def test_invalid_sequential_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            WorkingSetPattern(0, 4096, sequential_fraction=1.5)


class TestConflictGroupPattern:
    def test_addresses_are_spaced_by_the_conflict_stride(self):
        pattern = ConflictGroupPattern(base_address=0x4000_0000, group_size=4)
        assert pattern.addresses() == [
            0x4000_0000 + i * CONFLICT_STRIDE for i in range(4)
        ]

    def test_round_robin_cycles_all_members(self):
        pattern = ConflictGroupPattern(0, group_size=3, burst_length=1)
        rng = DeterministicRng(6)
        members = [pattern.next_address(rng) // CONFLICT_STRIDE for _ in range(9)]
        assert sorted(set(members)) == [0, 1, 2]
        # Round-robin: consecutive references never repeat a member.
        assert all(a != b for a, b in zip(members, members[1:]))

    def test_bursty_mode_dwells_on_members(self):
        pattern = ConflictGroupPattern(0, group_size=4, burst_length=8)
        rng = DeterministicRng(7)
        members = [pattern.next_address(rng) // CONFLICT_STRIDE for _ in range(400)]
        repeats = sum(1 for a, b in zip(members, members[1:]) if a == b)
        assert repeats > 200

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            ConflictGroupPattern(0, group_size=0)
        with pytest.raises(WorkloadError):
            ConflictGroupPattern(0, group_size=2, burst_length=0)
