"""Tests for the trace container."""

from repro.workloads.trace import InstructionRecord, Trace


def _record(pc: int, data=None, store=False, branch=False, taken=False) -> InstructionRecord:
    return InstructionRecord(pc, data, store, branch, taken)


def test_len_and_iteration():
    trace = Trace("t", [_record(0x400000), _record(0x400004)])
    assert len(trace) == 2
    assert [r.pc for r in trace] == [0x400000, 0x400004]


def test_memory_references_and_branches():
    records = [
        _record(0x0, data=0x1000),
        _record(0x4, branch=True, taken=True),
        _record(0x8),
    ]
    trace = Trace("t", records)
    assert trace.memory_references == 1
    assert trace.branches == 1


def test_slice_preserves_metadata():
    trace = Trace("t", [_record(i * 4) for i in range(10)], memory_level_parallelism=3.0)
    part = trace.slice(2, 5)
    assert len(part) == 3
    assert part.memory_level_parallelism == 3.0
    assert part.records[0].pc == 8


def test_from_records_accepts_iterables():
    trace = Trace.from_records("gen", (_record(i) for i in range(5)))
    assert len(trace) == 5
