"""Tests for the columnar trace container."""

import pickle
from array import array

import pytest

from repro.common.errors import WorkloadError
from repro.workloads.trace import (
    FLAG_BRANCH,
    FLAG_MEM,
    InstructionRecord,
    Trace,
)


def _record(pc: int, data=None, store=False, branch=False, taken=False) -> InstructionRecord:
    return InstructionRecord(pc, data, store, branch, taken)


def _mixed_trace(name="mixed", mlp=2.0) -> Trace:
    records = [
        _record(0x400000, data=0x1000),
        _record(0x400004, branch=True, taken=True),
        _record(0x400008),
        _record(0x40000C, data=0x2000, store=True),
        _record(0x400010, branch=True),
        _record(0x400014, data=0x0),  # address 0 is still a memory reference
    ]
    return Trace(name, records, memory_level_parallelism=mlp)


def test_len_and_iteration():
    trace = Trace("t", [_record(0x400000), _record(0x400004)])
    assert len(trace) == 2
    assert [r.pc for r in trace] == [0x400000, 0x400004]


def test_memory_references_and_branches():
    records = [
        _record(0x0, data=0x1000),
        _record(0x4, branch=True, taken=True),
        _record(0x8),
    ]
    trace = Trace("t", records)
    assert trace.memory_references == 1
    assert trace.branches == 1


def test_slice_preserves_metadata():
    trace = Trace("t", [_record(i * 4) for i in range(10)], memory_level_parallelism=3.0)
    part = trace.slice(2, 5)
    assert len(part) == 3
    assert part.memory_level_parallelism == 3.0
    assert part.records[0].pc == 8


def test_from_records_accepts_iterables():
    trace = Trace.from_records("gen", (_record(i) for i in range(5)))
    assert len(trace) == 5


class TestColumnarStorage:
    def test_round_trips_records_through_columns(self):
        trace = _mixed_trace()
        expected = [
            _record(0x400000, data=0x1000),
            _record(0x400004, branch=True, taken=True),
            _record(0x400008),
            _record(0x40000C, data=0x2000, store=True),
            _record(0x400010, branch=True),
            _record(0x400014, data=0x0),
        ]
        assert list(trace) == expected
        assert list(trace.records) == expected
        assert trace.records[3] == expected[3]
        assert trace.records[-1] == expected[-1]

    def test_zero_address_memory_reference_is_preserved(self):
        trace = Trace("t", [_record(0x0, data=0x0)])
        assert trace.records[0].data_address == 0
        assert trace.memory_references == 1

    def test_records_view_equality(self):
        first, second = _mixed_trace(), _mixed_trace()
        assert first.records == second.records
        different = Trace("t", [_record(0x400000)])
        assert first.records != different.records

    def test_records_view_slicing_and_bounds(self):
        trace = _mixed_trace()
        window = trace.records[1:3]
        assert [r.pc for r in window] == [0x400004, 0x400008]
        with pytest.raises(IndexError):
            trace.records[len(trace)]

    def test_from_columns_rejects_mismatched_lengths(self):
        with pytest.raises(WorkloadError):
            Trace.from_columns("t", array("Q", [1, 2]), array("Q", [0]), array("B", [0, 0]))

    def test_from_columns_rejects_wrong_typecodes(self):
        with pytest.raises(WorkloadError):
            Trace.from_columns("t", array("I", [1]), array("Q", [0]), array("B", [0]))

    def test_non_canonical_flag_combinations_survive(self):
        # A store bit without a memory reference (never generated, but legal
        # in a hand-built record) must round-trip through the flag column.
        odd = _record(0x10, data=None, store=True, taken=True)
        trace = Trace("odd", [odd])
        assert trace.records[0] == odd


class TestCachedStatistics:
    def test_memory_references_and_branches_are_cached(self):
        trace = _mixed_trace()
        assert trace.memory_references == 3
        assert trace.branches == 2
        # Second read must serve the memoised value, not re-scan.
        assert trace._memory_references == 3
        assert trace._branches == 2
        assert trace.memory_references == 3
        assert trace.branches == 2

    def test_cached_statistics_survive_slice(self):
        trace = _mixed_trace()
        assert trace.memory_references == 3  # prime the parent's cache
        part = trace.slice(0, 2)
        assert part.memory_references == 1
        assert part.branches == 1
        # The parent's cache is untouched by the slice's own counts.
        assert trace.memory_references == 3
        assert trace.branches == 2

    def test_cached_statistics_survive_from_records(self):
        trace = Trace.from_records("gen", iter(_mixed_trace().records))
        assert trace.memory_references == 3
        assert trace.branches == 2
        assert trace.memory_references == 3


class TestSlicing:
    def test_slice_is_zero_copy(self):
        trace = _mixed_trace()
        part = trace.slice(1, 4)
        parent_pc, _, _ = trace.columns()
        part_pc, _, _ = part.columns()
        assert isinstance(part_pc, memoryview)
        assert part_pc.obj is parent_pc  # a window, not a copy
        assert len(part) == 3

    def test_slice_of_slice(self):
        part = _mixed_trace().slice(1, 5).slice(1, 3)
        assert [r.pc for r in part] == [0x400008, 0x40000C]

    def test_sliced_trace_replays_like_a_copy(self):
        trace = _mixed_trace()
        part = trace.slice(2, 5)
        assert list(part) == trace.records[2:5]


class TestBinaryFormat:
    def test_save_load_round_trip(self, tmp_path):
        trace = _mixed_trace(mlp=3.5)
        path = tmp_path / "trace.bin"
        trace.save(str(path))
        loaded = Trace.load(str(path))
        assert loaded.name == trace.name
        assert loaded.memory_level_parallelism == trace.memory_level_parallelism
        assert loaded.records == trace.records
        assert loaded.content_digest() == trace.content_digest()

    def test_bytes_round_trip_compacts_slices(self):
        part = _mixed_trace().slice(1, 4)
        rebuilt = Trace.from_bytes(part.to_bytes())
        assert rebuilt.records == part.records
        assert isinstance(rebuilt.columns()[0], array)  # owning buffers again

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"not a trace at all")
        with pytest.raises(WorkloadError):
            Trace.load(str(path))

    def test_load_rejects_truncation(self, tmp_path):
        payload = _mixed_trace().to_bytes()
        path = tmp_path / "short.bin"
        path.write_bytes(payload[:-5])
        with pytest.raises(WorkloadError):
            Trace.load(str(path))

    def test_load_rejects_trailing_bytes(self, tmp_path):
        payload = _mixed_trace().to_bytes()
        path = tmp_path / "long.bin"
        path.write_bytes(payload + b"x")
        with pytest.raises(WorkloadError):
            Trace.load(str(path))

    def test_load_rejects_undecodable_name(self, tmp_path):
        from repro.workloads.trace import _HEADER

        payload = bytearray(_mixed_trace().to_bytes())
        payload[_HEADER.size] = 0xFF  # first name byte: invalid UTF-8 start
        path = tmp_path / "badname.bin"
        path.write_bytes(bytes(payload))
        # Must surface as the documented corruption error (a WorkloadError),
        # never as a raw UnicodeDecodeError that would crash cache readers.
        with pytest.raises(WorkloadError, match="undecodable name"):
            Trace.load(str(path))


class TestPickling:
    def test_pickle_round_trip(self):
        trace = _mixed_trace()
        clone = pickle.loads(pickle.dumps(trace))
        assert clone.records == trace.records
        assert clone.name == trace.name
        assert clone.memory_level_parallelism == trace.memory_level_parallelism

    def test_pickle_of_sliced_trace(self):
        part = _mixed_trace().slice(1, 4)
        clone = pickle.loads(pickle.dumps(part))
        assert clone.records == part.records


class TestContentDigest:
    def test_digest_distinguishes_content(self):
        base = _mixed_trace()
        assert base.content_digest() == _mixed_trace().content_digest()
        assert base.content_digest() != _mixed_trace(name="other").content_digest()
        assert base.content_digest() != _mixed_trace(mlp=1.0).content_digest()
        shifted = Trace("mixed", list(base.records)[1:], memory_level_parallelism=2.0)
        assert base.content_digest() != shifted.content_digest()

    def test_flag_columns_matter(self):
        taken = Trace("t", [_record(0x4, branch=True, taken=True)])
        not_taken = Trace("t", [_record(0x4, branch=True, taken=False)])
        assert taken.content_digest() != not_taken.content_digest()
        assert FLAG_MEM != FLAG_BRANCH  # sanity: distinct bit assignments
