"""Spec-conformance: docs/TRACE_FORMAT.md must match the parser's layout.

The documentation is the normative format description, so these tests parse
its markdown tables and assert every offset, size, record kind and constant
against the layout tables the parser itself exposes
(:mod:`repro.workloads.ingest`).  A change to either side without the other
fails here, which is the whole point.
"""

import os
import re

import pytest

from repro.workloads.ingest import (
    BINARY_FORMAT_VERSION,
    BINARY_HEADER_LAYOUT,
    BINARY_MAGIC,
    BINARY_RECORD_LAYOUT,
    MAX_LINE_CHARS,
    TEXT_FORMAT_VERSION,
    TEXT_KINDS,
    TEXT_MAGIC,
)

DOC_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "docs",
    "TRACE_FORMAT.md",
)


@pytest.fixture(scope="module")
def doc():
    with open(DOC_PATH, "r", encoding="utf-8") as handle:
        return handle.read()


def _section(doc, heading):
    """The markdown under ``heading``, up to the next heading of any level."""
    pattern = rf"^#+ {re.escape(heading)}\n(.*?)(?=^#+ |\Z)"
    match = re.search(pattern, doc, re.MULTILINE | re.DOTALL)
    assert match, f"docs/TRACE_FORMAT.md lost its {heading!r} section"
    return match.group(1)


def _table_rows(text):
    """Parse markdown table body rows into lists of cell strings."""
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if all(set(cell) <= {"-", " "} for cell in cells):
            continue  # the |---|---| separator
        rows.append(cells)
    assert rows, "expected a markdown table in this section"
    return rows[1:]  # drop the header row


def _layout_rows(section):
    """(offset, size, field) triples from a layout table."""
    return [
        (int(row[0]), int(row[1]), row[3].strip("`"))
        for row in _table_rows(section)
    ]


def test_header_layout_matches_parser(doc):
    documented = _layout_rows(_section(doc, "Header layout"))
    assert documented == [
        (offset, size, name) for offset, size, name in BINARY_HEADER_LAYOUT
    ]


def test_record_layout_matches_parser(doc):
    documented = _layout_rows(_section(doc, "Record layout"))
    assert documented == [
        (offset, size, name) for offset, size, name in BINARY_RECORD_LAYOUT
    ]


def test_layouts_are_dense_and_consistent():
    """The parser's own tables must describe contiguous, gap-free layouts."""
    for layout in (BINARY_HEADER_LAYOUT, BINARY_RECORD_LAYOUT):
        position = 0
        for offset, size, _ in layout:
            assert offset == position, "gap or overlap in layout table"
            position += size
    header_end = BINARY_HEADER_LAYOUT[-1][0] + BINARY_HEADER_LAYOUT[-1][1]
    assert header_end == 28  # the documented header size
    record_end = BINARY_RECORD_LAYOUT[-1][0] + BINARY_RECORD_LAYOUT[-1][1]
    assert record_end == 17  # the documented record size


def test_record_kinds_match_parser(doc):
    documented = {
        row[0].strip("`"): int(row[1], 16)
        for row in _table_rows(_section(doc, "Record kinds"))
    }
    assert documented == TEXT_KINDS


def test_documented_constants_match_parser(doc):
    # magics and versions, spelled exactly as the parsers check them
    assert f"`{TEXT_MAGIC} {TEXT_FORMAT_VERSION}`" in doc
    assert f"`{BINARY_MAGIC.decode('ascii')}`" in doc
    # the line-length limit and the record size appear as bold literals
    assert f"**{MAX_LINE_CHARS}**" in doc
    assert "**17**" in doc
    # the documented binary version is the one this build reads
    assert f"reads `{BINARY_FORMAT_VERSION}`" in doc


def test_flag_table_matches_parser(doc):
    from repro.workloads.trace import FLAG_BRANCH, FLAG_MEM, FLAG_STORE, FLAG_TAKEN

    rows = _table_rows(_section(doc, "Record flags"))
    documented = {row[1].strip("`"): int(row[0], 16) for row in rows}
    assert documented == {
        "MEM": FLAG_MEM,
        "STORE": FLAG_STORE,
        "BRANCH": FLAG_BRANCH,
        "TAKEN": FLAG_TAKEN,
    }
