"""Tests for phase specifications and schedules."""

import pytest

from repro.common.errors import WorkloadError
from repro.common.units import KIB
from repro.workloads.phases import PhaseSchedule, PhaseSpec


class TestPhaseSpec:
    def test_defaults_are_valid(self):
        phase = PhaseSpec(name="steady")
        assert phase.data_working_set == 8 * KIB

    def test_conflict_fraction_requires_a_group(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(name="bad", conflict_fraction=0.1, conflict_group_size=0)

    def test_invalid_weight_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(name="bad", weight=0)

    def test_tiny_working_set_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSpec(name="bad", data_working_set=16)


class TestSequentialSchedule:
    def test_segments_cover_the_whole_run_in_order(self):
        phases = (PhaseSpec(name="a", weight=1.0), PhaseSpec(name="b", weight=3.0))
        schedule = PhaseSchedule(phases)
        segments = list(schedule.segments(40_000))
        assert segments[0][0] == 0
        assert segments[-1][1] == 40_000
        for (_, end_a, _), (start_b, _, _) in zip(segments, segments[1:]):
            assert end_a == start_b

    def test_segment_lengths_follow_weights(self):
        phases = (PhaseSpec(name="a", weight=1.0), PhaseSpec(name="b", weight=3.0))
        segments = list(PhaseSchedule(phases).segments(40_000))
        lengths = {phase.name: end - start for start, end, phase in segments}
        assert lengths["a"] == pytest.approx(10_000, abs=1)
        assert lengths["b"] == pytest.approx(30_000, abs=1)

    def test_single_phase_gets_everything(self):
        segments = list(PhaseSchedule((PhaseSpec(name="only"),)).segments(5_000))
        assert len(segments) == 1
        assert segments[0][1] - segments[0][0] == 5_000


class TestPeriodicSchedule:
    def test_phases_repeat_every_period(self):
        phases = (PhaseSpec(name="a"), PhaseSpec(name="b"))
        schedule = PhaseSchedule(phases, periodic=True, period_instructions=10_000)
        segments = list(schedule.segments(30_000))
        names = [phase.name for _, _, phase in segments]
        assert names == ["a", "b"] * 3
        assert segments[-1][1] == 30_000

    def test_partial_final_period_is_truncated(self):
        phases = (PhaseSpec(name="a"), PhaseSpec(name="b"))
        schedule = PhaseSchedule(phases, periodic=True, period_instructions=10_000)
        segments = list(schedule.segments(15_000))
        assert segments[-1][1] == 15_000

    def test_is_multi_phase(self):
        assert PhaseSchedule((PhaseSpec(name="a"), PhaseSpec(name="b"))).is_multi_phase
        assert not PhaseSchedule((PhaseSpec(name="a"),)).is_multi_phase

    def test_invalid_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseSchedule(())
        with pytest.raises(WorkloadError):
            PhaseSchedule((PhaseSpec(name="a"),)).segments(0).__next__()
