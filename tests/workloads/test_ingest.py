"""Tests for external trace ingestion (text + binary formats)."""

import io
import os
import struct

import pytest

from repro.common.errors import TraceFormatError
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.ingest import (
    CHUNK_RECORDS,
    ExternalTraceSpec,
    INGEST_VERSION,
    MAX_LINE_CHARS,
    file_digest,
    ingest_trace_file,
    read_binary_trace,
    read_text_trace,
    write_binary_trace,
    write_text_trace,
)
from repro.workloads.profiles import get_profile
from repro.workloads.trace import FLAG_MEM, FLAG_STORE, FLAG_TAKEN, Trace

FIXTURE = os.path.join(os.path.dirname(os.path.dirname(__file__)), "data", "sample.rtxt")


def _generated(n=2000, application="gcc"):
    return WorkloadGenerator(get_profile(application)).generate(n)


def _binary_bytes(trace, byteorder=None):
    buffer = io.BytesIO()
    if byteorder is None:
        write_binary_trace(trace, buffer)
    else:
        write_binary_trace(trace, buffer, byteorder=byteorder)
    return buffer.getvalue()


# ---------------------------------------------------------------------- fixture


def test_fixture_parses():
    trace = read_text_trace(FIXTURE)
    assert trace.name == "sample"
    assert len(trace) == 4500
    assert trace.memory_level_parallelism == 1.5
    assert trace.memory_references > 0
    assert trace.branches > 0


def test_ingest_sniffs_text_and_binary(tmp_path):
    text_trace = read_text_trace(FIXTURE)
    binary_path = tmp_path / "sample.rtrc2"
    write_binary_trace(text_trace, str(binary_path))
    assert ingest_trace_file(FIXTURE).columns() == text_trace.columns()
    assert ingest_trace_file(str(binary_path)).columns() == text_trace.columns()


def test_ingest_rejects_unknown_format(tmp_path):
    path = tmp_path / "mystery.bin"
    path.write_bytes(b"GARBAGE!")
    with pytest.raises(TraceFormatError, match="unrecognised"):
        ingest_trace_file(str(path))


# ------------------------------------------------------------------ round trips


def test_text_round_trip_preserves_everything():
    trace = _generated()
    buffer = io.StringIO()
    write_text_trace(trace, buffer)
    buffer.seek(0)
    rebuilt = read_text_trace(buffer)
    assert rebuilt.name == trace.name
    assert rebuilt.memory_level_parallelism == trace.memory_level_parallelism
    assert rebuilt.columns() == trace.columns()


@pytest.mark.parametrize("byteorder", ["<", ">"])
def test_binary_round_trip_both_endians(byteorder):
    trace = _generated()
    buffer = io.BytesIO(_binary_bytes(trace, byteorder))
    rebuilt = read_binary_trace(buffer)
    assert rebuilt.name == trace.name
    assert rebuilt.memory_level_parallelism == trace.memory_level_parallelism
    assert rebuilt.columns() == trace.columns()


def test_binary_round_trip_through_files(tmp_path):
    trace = _generated(500, "compress")
    path = tmp_path / "t.rtrc2"
    write_binary_trace(trace, str(path))
    assert read_binary_trace(str(path)).columns() == trace.columns()


def test_cross_format_round_trip():
    """text -> Trace -> binary -> Trace -> text is the identity."""
    original = read_text_trace(FIXTURE)
    via_binary = read_binary_trace(io.BytesIO(_binary_bytes(original)))
    buffer = io.StringIO()
    write_text_trace(via_binary, buffer)
    buffer.seek(0)
    assert read_text_trace(buffer).columns() == original.columns()


def test_binary_chunking_covers_large_traces():
    trace = _generated(CHUNK_RECORDS + 7)  # forces a second decode chunk
    rebuilt = read_binary_trace(io.BytesIO(_binary_bytes(trace)))
    assert rebuilt.columns() == trace.columns()


def test_name_override_beats_directive_and_stem(tmp_path):
    assert read_text_trace(FIXTURE, name="renamed").name == "renamed"
    path = tmp_path / "stemname.rtxt"
    path.write_text("#RTXT 1\n0x10 I\n")
    assert read_text_trace(str(path)).name == "stemname"


def test_write_binary_rejects_bad_byteorder():
    with pytest.raises(TraceFormatError, match="byte order"):
        write_binary_trace(_generated(10), io.BytesIO(), byteorder="=")


# ----------------------------------------------------------- malformed text


def _text_error(content):
    with pytest.raises(TraceFormatError) as info:
        read_text_trace(io.StringIO(content))
    return info.value


def test_text_missing_magic():
    error = _text_error("0x10 I\n")
    assert error.line == 1
    assert "first line" in str(error)


def test_text_wrong_version():
    error = _text_error("#RTXT 99\n")
    assert error.line == 1
    assert "version" in str(error)


def test_text_empty_file():
    error = _text_error("")
    assert "empty" in str(error)


def test_text_overlong_line():
    long_line = "0x10 L 0x" + "0" * MAX_LINE_CHARS
    error = _text_error(f"#RTXT 1\n{long_line}\n")
    assert error.line == 2
    assert str(MAX_LINE_CHARS) in str(error)


def test_text_directive_after_record_is_out_of_order():
    error = _text_error("#RTXT 1\n0x10 I\n#mlp 2.0\n")
    assert error.line == 3
    assert "precede" in str(error)


def test_text_directive_without_value():
    error = _text_error("#RTXT 1\n#name\n")
    assert error.line == 2


def test_text_bad_mlp():
    assert _text_error("#RTXT 1\n#mlp banana\n").line == 2
    assert _text_error("#RTXT 1\n#mlp -1.0\n").line == 2


def test_text_unknown_kind():
    error = _text_error("#RTXT 1\n0x10 XYZ\n")
    assert error.line == 2
    assert "XYZ" in str(error)


def test_text_memory_kind_requires_address():
    error = _text_error("#RTXT 1\n0x10 L\n")
    assert error.line == 2
    assert "requires a data address" in str(error)


def test_text_plain_kind_forbids_address():
    error = _text_error("#RTXT 1\n0x10 I 0x20\n")
    assert error.line == 2
    assert "no data address" in str(error)


def test_text_unparseable_integers():
    assert _text_error("#RTXT 1\nnope I\n").line == 2
    assert _text_error("#RTXT 1\n0x10 L nope\n").line == 2


def test_text_value_overflows_uint64():
    error = _text_error(f"#RTXT 1\n{1 << 64:#x} I\n")
    assert error.line == 2
    assert "64-bit" in str(error)


def test_text_wrong_field_count():
    error = _text_error("#RTXT 1\n0x10 L 0x20 0x30\n")
    assert error.line == 2


def test_text_comments_and_blank_lines_are_ignored():
    trace = read_text_trace(io.StringIO(
        "#RTXT 1\n# comment\n\n0x10 I\n# another\n\n0x14 S 0x99\n"
    ))
    assert len(trace) == 2
    assert list(trace.columns()[2]) == [0, FLAG_MEM | FLAG_STORE]


# --------------------------------------------------------- malformed binary


def _binary_error(payload):
    with pytest.raises(TraceFormatError) as info:
        read_binary_trace(io.BytesIO(payload))
    return info.value


def _patched(trace, offset, replacement):
    payload = bytearray(_binary_bytes(trace, "<"))
    payload[offset:offset + len(replacement)] = replacement
    return bytes(payload)


def test_binary_bad_magic():
    error = _binary_error(b"NOPE" + b"\x00" * 24)
    assert error.offset == 0
    assert "magic" in str(error)


def test_binary_truncated_header():
    good = _binary_bytes(_generated(10))
    error = _binary_error(good[:17])
    assert error.offset == 17
    assert "truncated header" in str(error)
    # never a bare struct.error, even on an empty file
    assert isinstance(_binary_error(b""), TraceFormatError)


def test_binary_unsupported_version():
    error = _binary_error(_patched(_generated(5), 4, struct.pack("<H", 99)))
    assert error.offset == 4
    assert "version 99" in str(error)


def test_binary_bad_byteorder_tag():
    error = _binary_error(_patched(_generated(5), 6, b"?"))
    assert error.offset == 6
    assert "byte-order" in str(error)


def test_binary_reserved_header_flags():
    error = _binary_error(_patched(_generated(5), 7, b"\x01"))
    assert error.offset == 7
    assert "header flags" in str(error)


def test_binary_nonpositive_mlp():
    error = _binary_error(_patched(_generated(5), 8, struct.pack("<d", 0.0)))
    assert error.offset == 8
    assert "positive" in str(error)


def test_binary_truncated_name():
    good = _binary_bytes(_generated(5))
    error = _binary_error(good[:30])  # header promises a longer name
    assert "truncated name" in str(error)


def test_binary_truncated_record_stream():
    good = _binary_bytes(_generated(5))
    error = _binary_error(good[:-9])  # chop into the final record
    assert "truncated record stream" in str(error)
    assert error.offset == len(good) - 17  # start of the unfinished record


def test_binary_trailing_bytes():
    error = _binary_error(_binary_bytes(_generated(5)) + b"\x00")
    assert "trailing bytes" in str(error)


@pytest.mark.parametrize(
    "bits, complaint",
    [
        (0x10, "unknown flag bits"),
        (FLAG_STORE, "STORE"),                    # store without MEM
        (FLAG_TAKEN, "TAKEN"),                    # taken without BRANCH
        (FLAG_MEM | FLAG_TAKEN, "TAKEN"),
    ],
)
def test_binary_invalid_record_flags(bits, complaint):
    trace = _generated(5)
    flags_offset = len(_binary_bytes(trace, "<")) - 1  # last record's flag byte
    error = _binary_error(_patched(trace, flags_offset, bytes([bits])))
    assert complaint in str(error)
    assert error.offset is not None


def test_error_messages_carry_location():
    error = _text_error("#RTXT 1\n0x10 XYZ\n")
    assert "line 2" in str(error)
    binary_error = _binary_error(b"NOPE" + b"\x00" * 24)
    assert "offset 0" in str(binary_error)


# ------------------------------------------------------------ ExternalTraceSpec


def test_external_spec_materializes_and_digests():
    spec = ExternalTraceSpec(path=FIXTURE)
    trace = spec.materialize()
    assert isinstance(trace, Trace)
    assert trace.name == spec.application == "sample"
    assert spec.content_digest() == file_digest(FIXTURE)

    payload = spec.fingerprint_payload()
    assert payload["kind"] == "external-trace"
    assert payload["ingest_version"] == INGEST_VERSION
    assert payload["content"] == file_digest(FIXTURE)
    # content-addressed: the path itself must not leak into the identity
    assert FIXTURE not in str(payload)


def test_external_spec_name_override():
    spec = ExternalTraceSpec(path=FIXTURE, name="alias")
    assert spec.application == "alias"
    assert spec.materialize().name == "alias"
    assert spec.fingerprint_payload()["name"] == "alias"


def test_external_spec_same_content_same_digest(tmp_path):
    copy = tmp_path / "moved-elsewhere.rtxt"
    copy.write_bytes(open(FIXTURE, "rb").read())
    original = ExternalTraceSpec(path=FIXTURE)
    moved = ExternalTraceSpec(path=str(copy))
    assert original.content_digest() == moved.content_digest()
    assert (
        original.fingerprint_payload()["content"]
        == moved.fingerprint_payload()["content"]
    )


def test_file_digest_detects_edits(tmp_path):
    path = tmp_path / "t.rtxt"
    path.write_text("#RTXT 1\n0x10 I\n")
    first = file_digest(str(path))
    assert file_digest(str(path)) == first  # memoised, stable
    os.utime(str(path), (1, 1))  # force a new stat signature
    path.write_text("#RTXT 1\n0x14 I\n")
    assert file_digest(str(path)) != first
