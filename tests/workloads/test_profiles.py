"""Tests for the twelve SPEC application profiles."""

import pytest

from repro.common.errors import WorkloadError
from repro.common.units import KIB
from repro.workloads.profiles import (
    SPEC_APPLICATION_NAMES,
    WorkloadProfile,
    get_profile,
    iter_profiles,
)
from repro.workloads.phases import PhaseSpec


class TestRegistry:
    def test_all_twelve_paper_applications_exist(self):
        assert len(SPEC_APPLICATION_NAMES) == 12
        expected = {
            "ammp", "applu", "apsi", "compress", "gcc", "ijpeg",
            "m88ksim", "su2cor", "swim", "tomcatv", "vortex", "vpr",
        }
        assert set(SPEC_APPLICATION_NAMES) == expected

    def test_iter_profiles_follows_figure_order(self):
        assert [profile.name for profile in iter_profiles()] == list(SPEC_APPLICATION_NAMES)

    def test_unknown_profile_rejected(self):
        with pytest.raises(WorkloadError):
            get_profile("mcf")

    def test_every_profile_has_a_paper_motivated_description(self):
        for profile in iter_profiles():
            assert len(profile.description) > 40

    def test_seeds_are_unique(self):
        seeds = [profile.seed for profile in iter_profiles()]
        assert len(set(seeds)) == len(seeds)


class TestPaperBehaviours:
    def test_small_working_set_applications(self):
        # "ammp, applu, and m88ksim ... require small cache sizes"
        for name in ("ammp", "applu", "m88ksim"):
            assert get_profile(name).max_data_working_set <= 4 * KIB

    def test_swim_and_gcc_exceed_the_l1_capacity(self):
        # swim's data working set and gcc/tomcatv's instruction working sets
        # are larger than the 32K L1s, so they must not downsize.
        assert get_profile("swim").max_data_working_set > 32 * KIB
        assert get_profile("gcc").max_code_footprint > 32 * KIB
        assert get_profile("tomcatv").max_code_footprint > 32 * KIB

    def test_conflict_sensitive_applications_have_conflict_groups(self):
        # The six d-cache applications the paper says benefit from
        # selective-sets' associativity preservation.
        for name in ("apsi", "gcc", "ijpeg", "su2cor", "vortex", "vpr"):
            profile = get_profile(name)
            assert any(phase.conflict_group_size >= 3 for phase in profile.phases), name

    def test_periodic_applications_are_periodic(self):
        # su2cor (d-cache) and applu/apsi/ijpeg (i-cache) show periodic
        # working-set variation.
        for name in ("su2cor", "applu", "apsi", "ijpeg"):
            assert get_profile(name).periodic, name

    def test_working_set_variation_applications_have_multiple_phases(self):
        for name in ("compress", "gcc", "vortex", "vpr"):
            assert get_profile(name).is_multi_phase, name

    def test_constant_applications_have_a_single_phase(self):
        for name in ("ammp", "m88ksim", "swim", "tomcatv"):
            assert len(get_profile(name).phases) == 1, name

    def test_compress_small_instruction_footprint(self):
        assert get_profile("compress").max_code_footprint <= 4 * KIB


class TestValidation:
    def test_profile_requires_phases(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="empty", description="x", phases=())

    def test_fractions_validated(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(
                name="bad", description="x",
                phases=(PhaseSpec(name="p"),), mem_ref_fraction=1.5,
            )

    def test_mlp_validated(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(
                name="bad", description="x",
                phases=(PhaseSpec(name="p"),), memory_level_parallelism=0.5,
            )
