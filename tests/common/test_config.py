"""Tests for the configuration dataclasses (Table 2 defaults and validation)."""

import pytest

from repro.common.config import (
    CacheGeometry,
    CacheTiming,
    CoreConfig,
    CoreKind,
    L2Config,
    MemoryConfig,
    SystemConfig,
)
from repro.common.errors import ConfigurationError
from repro.common.units import KIB


class TestCacheGeometry:
    def test_base_l1_geometry_matches_table2(self):
        geometry = CacheGeometry(32 * KIB, 2)
        assert geometry.num_sets == 512
        assert geometry.way_bytes == 16 * KIB
        assert geometry.num_subarrays == 32
        assert geometry.blocks_per_subarray == 32
        assert geometry.min_sets == 32

    def test_four_way_geometry(self):
        geometry = CacheGeometry(32 * KIB, 4)
        assert geometry.num_sets == 256
        assert geometry.subarrays_per_way == 8

    def test_sixteen_way_geometry(self):
        geometry = CacheGeometry(32 * KIB, 16)
        assert geometry.num_sets == 64
        assert geometry.subarrays_per_way == 2

    def test_capacity_parses_size_strings(self):
        geometry = CacheGeometry("32K", 2)
        assert geometry.capacity_bytes == 32 * KIB

    def test_index_and_offset_bits(self):
        geometry = CacheGeometry(32 * KIB, 2)
        assert geometry.offset_bits == 5
        assert geometry.index_bits == 9
        assert geometry.tag_bits(32) == 32 - 9 - 5

    def test_three_way_intermediate_geometry_is_valid(self):
        # The hybrid organization enables 3 of 4 ways; that intermediate
        # geometry (24K 3-way) must be expressible.
        geometry = CacheGeometry(24 * KIB, 3)
        assert geometry.num_sets == 256

    def test_invalid_associativity_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(32 * KIB, 0)

    def test_non_power_of_two_block_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(32 * KIB, 2, block_bytes=48)

    def test_subarray_smaller_than_block_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(32 * KIB, 2, block_bytes=64, subarray_bytes=32)

    def test_capacity_not_divisible_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(33 * KIB, 2)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            CacheGeometry(24 * KIB, 2)

    def test_with_capacity_returns_new_geometry(self):
        geometry = CacheGeometry(32 * KIB, 2)
        smaller = geometry.with_capacity(16 * KIB)
        assert smaller.capacity_bytes == 16 * KIB
        assert smaller.associativity == 2
        assert geometry.capacity_bytes == 32 * KIB

    def test_describe_mentions_size_and_ways(self):
        text = CacheGeometry(32 * KIB, 2).describe()
        assert "32K" in text
        assert "2-way" in text


class TestOtherConfigs:
    def test_cache_timing_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            CacheTiming(hit_latency=-1)

    def test_l2_defaults_match_table2(self):
        l2 = L2Config()
        assert l2.geometry.capacity_bytes == 512 * KIB
        assert l2.geometry.associativity == 4
        assert l2.hit_latency == 12

    def test_memory_latency_formula(self):
        memory = MemoryConfig()
        # Table 2: 80 + 5 cycles per 8 bytes; a 64-byte block is 8 chunks.
        assert memory.access_latency(64) == 80 + 5 * 8

    def test_memory_latency_rounds_partial_chunks_up(self):
        memory = MemoryConfig()
        assert memory.access_latency(60) == 80 + 5 * 8

    def test_core_defaults_match_table2(self):
        core = CoreConfig()
        assert core.issue_width == 4
        assert core.rob_entries == 64
        assert core.lsq_entries == 32
        assert core.mshr_entries == 8
        assert core.writeback_buffer_entries == 8
        assert core.is_out_of_order

    def test_inorder_core_flag(self):
        core = CoreConfig(kind=CoreKind.IN_ORDER_BLOCKING)
        assert not core.is_out_of_order

    def test_core_rejects_zero_issue_width(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(issue_width=0)

    def test_core_rejects_zero_rob(self):
        with pytest.raises(ConfigurationError):
            CoreConfig(rob_entries=0)


class TestSystemConfig:
    def test_defaults_are_consistent(self):
        system = SystemConfig()
        assert system.l1d.capacity_bytes == 32 * KIB
        assert system.l1i.associativity == 2
        assert system.core.is_out_of_order

    def test_with_l1_replaces_only_requested_cache(self):
        system = SystemConfig()
        modified = system.with_l1(l1d=CacheGeometry(32 * KIB, 4))
        assert modified.l1d.associativity == 4
        assert modified.l1i.associativity == 2
        assert system.l1d.associativity == 2

    def test_with_core_replaces_core(self):
        system = SystemConfig().with_core(CoreConfig(kind=CoreKind.IN_ORDER_BLOCKING))
        assert system.core.kind is CoreKind.IN_ORDER_BLOCKING

    def test_describe_matches_table2_contents(self):
        text = SystemConfig().describe()
        assert "4 instrs per cycle" in text
        assert "64 entries / 32 entries" in text
        assert "512K 4-way" in text
        assert "80 + 5" in text

    def test_invalid_address_width_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(address_bits=8)
