"""Tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    ResizingError,
    SimulationError,
    WorkloadError,
)


def test_all_errors_derive_from_repro_error():
    for error_type in (ConfigurationError, ResizingError, SimulationError, WorkloadError):
        assert issubclass(error_type, ReproError)


def test_repro_error_derives_from_exception():
    assert issubclass(ReproError, Exception)


def test_catching_base_class_catches_subclasses():
    with pytest.raises(ReproError):
        raise ResizingError("size not offered")


def test_error_messages_are_preserved():
    try:
        raise ConfigurationError("capacity must be positive")
    except ReproError as error:
        assert "capacity must be positive" in str(error)
