"""Tests for the shared atomic-write and checksummed-container helpers."""

import json
import os

import pytest

from repro.common.atomicio import (
    CHECKSUM_MAGIC,
    CorruptPayloadError,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    unwrap_checksummed,
    wrap_checksummed,
)


class TestAtomicWrite:
    def test_bytes_round_trip(self, tmp_path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_text_and_json_round_trip(self, tmp_path):
        atomic_write_text(tmp_path / "note.txt", "héllo")
        assert (tmp_path / "note.txt").read_text(encoding="utf-8") == "héllo"
        atomic_write_json(tmp_path / "rows.json", {"b": 2, "a": 1}, sort_keys=True)
        assert json.loads((tmp_path / "rows.json").read_text()) == {"a": 1, "b": 2}

    def test_overwrite_replaces_atomically(self, tmp_path):
        path = tmp_path / "entry.json"
        atomic_write_text(path, "old")
        atomic_write_text(path, "new")
        assert path.read_text() == "new"
        # No temp files linger after successful writes.
        assert sorted(p.name for p in tmp_path.iterdir()) == ["entry.json"]

    def test_failed_write_leaves_target_and_no_temp(self, tmp_path):
        path = tmp_path / "entry.json"
        atomic_write_text(path, "committed")
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})  # unserialisable
        assert path.read_text() == "committed"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["entry.json"]

    def test_temp_name_carries_pid_and_thread_id(self, tmp_path, monkeypatch):
        # Concurrent writers must never collide on the temp name — across
        # processes (pid suffix) and across threads within one process
        # (thread-id suffix: a service runner next to a CLI sweep).
        import threading

        seen = []
        real_replace = os.replace

        def spy(src, dst):
            seen.append(os.path.basename(src))
            real_replace(src, dst)

        monkeypatch.setattr(os, "replace", spy)
        atomic_write_text(tmp_path / "entry.json", "x")
        assert seen == [f"entry.json.tmp.{os.getpid()}.{threading.get_ident()}"]


class TestChecksummedContainer:
    def test_round_trip(self):
        payload = b"columns" * 100
        assert unwrap_checksummed(wrap_checksummed(payload)) == payload

    def test_empty_payload_round_trips(self):
        assert unwrap_checksummed(wrap_checksummed(b"")) == b""

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda data: data[: len(data) // 2],  # torn write
            lambda data: b"JUNK" + data[4:],  # bad magic
            lambda data: data[:-1] + bytes([data[-1] ^ 0xFF]),  # bit rot
            lambda data: data[: len(CHECKSUM_MAGIC) + 10],  # truncated header
            lambda data: b"",  # empty file
        ],
    )
    def test_corruption_raises_corrupt_payload_error(self, mutate):
        data = wrap_checksummed(b"trace bytes")
        with pytest.raises(CorruptPayloadError):
            unwrap_checksummed(mutate(data))

    def test_corrupt_payload_error_is_a_value_error(self):
        # Pre-checksum cache readers catch ValueError; the subclass keeps
        # them degrading to a miss instead of crashing.
        assert issubclass(CorruptPayloadError, ValueError)
