"""Tests for deterministic random number generation."""

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.uniform() for _ in range(50)] == [b.uniform() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.uniform() for _ in range(10)] != [b.uniform() for _ in range(10)]

    def test_fork_is_deterministic_and_independent(self):
        parent = DeterministicRng(7)
        fork_a = parent.fork(1)
        fork_b = DeterministicRng(7).fork(1)
        fork_c = parent.fork(2)
        sequence_a = [fork_a.randint(0, 100) for _ in range(20)]
        sequence_b = [fork_b.randint(0, 100) for _ in range(20)]
        sequence_c = [fork_c.randint(0, 100) for _ in range(20)]
        assert sequence_a == sequence_b
        assert sequence_a != sequence_c


class TestDraws:
    def test_uniform_in_unit_interval(self):
        rng = DeterministicRng(3)
        for _ in range(200):
            value = rng.uniform()
            assert 0.0 <= value < 1.0

    def test_randint_bounds_inclusive(self):
        rng = DeterministicRng(4)
        values = {rng.randint(2, 5) for _ in range(300)}
        assert values == {2, 3, 4, 5}

    def test_choice_returns_members(self):
        rng = DeterministicRng(5)
        options = ["a", "b", "c"]
        for _ in range(50):
            assert rng.choice(options) in options

    def test_burst_length_at_least_one(self):
        rng = DeterministicRng(6)
        for mean in (1, 2, 5, 20):
            for _ in range(100):
                assert rng.burst_length(mean) >= 1

    def test_burst_length_mean_is_roughly_right(self):
        rng = DeterministicRng(7)
        samples = [rng.burst_length(4) for _ in range(4000)]
        average = sum(samples) / len(samples)
        assert 3.0 < average < 5.0

    def test_shuffled_preserves_elements(self):
        rng = DeterministicRng(8)
        items = list(range(20))
        shuffled = rng.shuffled(items)
        assert sorted(shuffled) == items
        assert items == list(range(20))
