"""Tests for size parsing/formatting and power-of-two helpers."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.units import KIB, MIB, format_size, is_power_of_two, log2_int, parse_size


class TestParseSize:
    def test_plain_integer_is_returned_unchanged(self):
        assert parse_size(4096) == 4096

    def test_integral_float_is_accepted(self):
        assert parse_size(2048.0) == 2048

    def test_kilobyte_suffixes(self):
        assert parse_size("32K") == 32 * KIB
        assert parse_size("32KB") == 32 * KIB
        assert parse_size("32kib") == 32 * KIB

    def test_megabyte_suffixes(self):
        assert parse_size("1M") == MIB
        assert parse_size("2MB") == 2 * MIB

    def test_plain_byte_string(self):
        assert parse_size("512") == 512
        assert parse_size("512B") == 512

    def test_fractional_kilobytes(self):
        assert parse_size("1.5K") == 1536

    def test_whitespace_and_case_are_ignored(self):
        assert parse_size("  32 k ") == 32 * KIB

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size(-1)

    def test_non_integral_byte_count_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size("1.0001K")

    def test_garbage_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size("banana")

    def test_unknown_suffix_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size("32G")

    def test_boolean_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size(True)

    def test_none_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size(None)

    def test_fractional_float_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_size(1.5)


class TestFormatSize:
    def test_kilobytes(self):
        assert format_size(32 * KIB) == "32K"
        assert format_size(24 * KIB) == "24K"

    def test_megabytes(self):
        assert format_size(MIB) == "1M"

    def test_small_sizes_in_bytes(self):
        assert format_size(48) == "48B"

    def test_non_multiple_of_kib_rendered_in_bytes(self):
        assert format_size(KIB + 1) == f"{KIB + 1}B"

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            format_size(-5)

    def test_roundtrip_with_parse(self):
        for size in (KIB, 3 * KIB, 24 * KIB, 512 * KIB, MIB):
            assert parse_size(format_size(size)) == size


class TestPowerOfTwo:
    def test_powers_of_two_detected(self):
        for exponent in range(0, 20):
            assert is_power_of_two(1 << exponent)

    def test_non_powers_rejected(self):
        for value in (0, -2, 3, 6, 12, 24 * KIB):
            assert not is_power_of_two(value)

    def test_log2_of_powers(self):
        assert log2_int(1) == 0
        assert log2_int(512) == 9
        assert log2_int(32 * KIB) == 15

    def test_log2_rejects_non_powers(self):
        with pytest.raises(ConfigurationError):
            log2_int(24 * KIB)
