"""Tests for the statistics containers."""

import pytest

from repro.common.stats import Counter, RatioStat, RunningMean, StatGroup


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("x").value == 0

    def test_increment_default_and_amount(self):
        counter = Counter("x")
        counter.increment()
        counter.increment(5)
        assert counter.value == 6

    def test_reset(self):
        counter = Counter("x")
        counter.increment(3)
        counter.reset()
        assert counter.value == 0

    def test_int_conversion(self):
        counter = Counter("x")
        counter.increment(7)
        assert int(counter) == 7


class TestRunningMean:
    def test_empty_mean_is_zero(self):
        assert RunningMean("m").mean == 0.0

    def test_unweighted_mean(self):
        mean = RunningMean("m")
        for value in (1.0, 2.0, 3.0):
            mean.add(value)
        assert mean.mean == pytest.approx(2.0)

    def test_weighted_mean(self):
        mean = RunningMean("m")
        mean.add(10.0, weight=1.0)
        mean.add(0.0, weight=3.0)
        assert mean.mean == pytest.approx(2.5)
        assert mean.weight == pytest.approx(4.0)

    def test_reset(self):
        mean = RunningMean("m")
        mean.add(5.0)
        mean.reset()
        assert mean.mean == 0.0


class TestRatioStat:
    def test_empty_ratio_is_zero(self):
        assert RatioStat("r").ratio == 0.0

    def test_ratio_counts_numerator_events(self):
        ratio = RatioStat("r")
        for hit in (True, False, False, True):
            ratio.record(hit)
        assert ratio.ratio == pytest.approx(0.5)
        assert ratio.numerator == 2
        assert ratio.denominator == 4


class TestStatGroup:
    def test_counters_are_memoised_by_name(self):
        group = StatGroup("g")
        assert group.counter("a") is group.counter("a")

    def test_type_conflict_raises(self):
        group = StatGroup("g")
        group.counter("a")
        with pytest.raises(TypeError):
            group.ratio("a")

    def test_as_dict_exports_all_kinds(self):
        group = StatGroup("g")
        group.counter("hits").increment(3)
        group.running_mean("size").add(8.0)
        group.ratio("miss").record(True)
        exported = group.as_dict()
        assert exported == {"hits": 3, "size": 8.0, "miss": 1.0}

    def test_reset_resets_everything(self):
        group = StatGroup("g")
        group.counter("hits").increment(3)
        group.ratio("miss").record(True)
        group.reset()
        assert group.as_dict() == {"hits": 0, "miss": 0.0}

    def test_contains(self):
        group = StatGroup("g")
        group.counter("hits")
        assert "hits" in group
        assert "misses" not in group
