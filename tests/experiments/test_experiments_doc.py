"""Spec-conformance: docs/EXPERIMENTS.md must match the validator.

The documentation is the normative schema description, so these tests
parse its markdown tables and assert every field name, type, requiredness
and meaning against the field registries the validator itself exposes
(:mod:`repro.experiments.spec`).  A change to either side without the
other fails here, which is the whole point — same pattern as
``tests/workloads/test_trace_format_spec.py`` for docs/TRACE_FORMAT.md.
"""

import os
import re

import pytest

from repro.experiments import registered_kinds
from repro.experiments.spec import (
    ANALYSIS_FIELDS,
    AXES_FIELDS,
    SPEC_FIELDS,
    SPEC_VERSION,
)

DOC_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "docs",
    "EXPERIMENTS.md",
)


@pytest.fixture(scope="module")
def doc():
    with open(DOC_PATH, "r", encoding="utf-8") as handle:
        return handle.read()


def _section(doc, heading):
    """The markdown under ``heading``, up to the next heading of any level."""
    pattern = rf"^#+ {re.escape(heading)}\n(.*?)(?=^#+ |\Z)"
    match = re.search(pattern, doc, re.MULTILINE | re.DOTALL)
    assert match, f"docs/EXPERIMENTS.md lost its {heading!r} section"
    return match.group(1)


def _table_rows(text):
    """Parse markdown table body rows into lists of cell strings."""
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line.startswith("|"):
            continue
        cells = [cell.strip() for cell in line.strip("|").split("|")]
        if all(set(cell) <= {"-", " "} for cell in cells):
            continue  # the |---|---| separator
        rows.append(cells)
    assert rows, "expected a markdown table in this section"
    return rows[1:]  # drop the header row


def _field_rows(section):
    """(field, type, required, meaning) tuples from a schema table."""
    return [
        (row[0].strip("`"), row[1], row[2], row[3])
        for row in _table_rows(section)
        if len(row) == 4  # skip rows of other tables in the same section
    ]


def test_top_level_fields_match_validator(doc):
    assert _field_rows(_section(doc, "Top-level fields")) == SPEC_FIELDS


def test_axes_fields_match_validator(doc):
    assert _field_rows(_section(doc, "Axes fields")) == AXES_FIELDS


def test_analysis_fields_match_validator(doc):
    # The Analysis section holds two tables (fields, then kinds); only the
    # four-column fields table is compared here.
    assert _field_rows(_section(doc, "Analysis fields")) == ANALYSIS_FIELDS


def test_documented_analyzer_kinds_are_exactly_the_registered_ones(doc):
    rows = _table_rows(_section(doc, "Analysis fields"))
    documented = {
        row[0].strip("`")
        for row in rows
        # The three-column kinds table, minus its own header row (only the
        # section's first table header is dropped by _table_rows).
        if len(row) == 3 and row[0] != "kind"
    }
    assert documented == set(registered_kinds())


def test_documented_spec_version_matches(doc):
    rows = dict(
        (field, meaning)
        for field, _, _, meaning in _field_rows(_section(doc, "Top-level fields"))
    )
    assert str(SPEC_VERSION) in rows["spec"]
    # The worked example at the top pins the same version.
    assert f"spec: {SPEC_VERSION}" in doc
