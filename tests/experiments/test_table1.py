"""Tests for the Table 1 reproduction (analytic, no simulation)."""

from repro.common.units import KIB
from repro.experiments import table1


def test_table1_reproduces_paper_sizes():
    result = table1.run()
    assert result.hybrid_sizes == [s * KIB for s in (32, 24, 16, 12, 8, 6, 4, 3, 2, 1)]
    assert result.selective_ways_sizes == [s * KIB for s in (32, 24, 16, 8)]
    assert result.selective_sets_sizes == [s * KIB for s in (32, 16, 8, 4)]


def test_table1_rows_and_rendering():
    result = table1.run()
    rows = result.rows()
    assert len(rows) == 4  # way capacities 8K, 4K, 2K, 1K
    assert rows[0]["way_capacity"] == 8 * KIB
    assert rows[0]["4-way"] == 32 * KIB
    text = result.format_table()
    assert "24K" in text and "3-way" in text and "dm" in text


def test_table1_for_other_geometries():
    result = table1.run(capacity_bytes=32 * KIB, associativity=2)
    assert 32 * KIB in result.hybrid_sizes
    assert result.hybrid_sizes[-1] == KIB
