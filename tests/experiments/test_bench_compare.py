"""Tests for the CI perf-regression gate (`python -m repro bench-compare`).

The ISSUE-2 acceptance criterion: CI must fail on a synthetic benchmark
regression, verified here by perturbing the baseline JSON and asserting a
non-zero exit code.
"""

import json

import pytest

from repro.__main__ import main
from repro.benchgate import (
    BenchGateError,
    MIN_GATED_SECONDS,
    compare_benchmarks,
    load_baseline,
    load_benchmark_means,
    write_baseline,
)


def pytest_benchmark_payload(means):
    """A minimal but schema-faithful pytest-benchmark JSON document."""
    return {
        "machine_info": {"cpu": "test"},
        "benchmarks": [
            {"name": name, "stats": {"mean": mean, "stddev": 0.0, "rounds": 1}}
            for name, mean in means.items()
        ],
    }


@pytest.fixture
def results_file(tmp_path):
    def write(means, name="results.json"):
        path = tmp_path / name
        path.write_text(json.dumps(pytest_benchmark_payload(means)))
        return str(path)

    return write


@pytest.fixture
def baseline_file(tmp_path):
    def write(means, name="baseline.json"):
        path = tmp_path / name
        write_baseline(path, means)
        return str(path)

    return write


class TestCompare:
    def test_classification(self):
        comparison = compare_benchmarks(
            results={"stable": 1.0, "faster": 0.5, "slower": 2.0, "brand_new": 1.0},
            baseline={"stable": 1.1, "faster": 1.0, "slower": 1.0, "gone": 1.0},
            tolerance=0.25,
        )
        assert set(comparison.stable) == {"stable"}
        assert set(comparison.improvements) == {"faster"}
        assert set(comparison.regressions) == {"slower"}
        assert comparison.new == ["brand_new"]
        assert comparison.missing == ["gone"]
        assert not comparison.ok  # regression + missing both fail

    def test_sub_floor_benchmarks_never_regress(self):
        # An 8x blowup on a millisecond benchmark is scheduler noise, not a
        # perf signal; both sides under the floor are always stable.
        tiny = MIN_GATED_SECONDS / 10.0
        comparison = compare_benchmarks(
            results={"tiny": tiny * 8}, baseline={"tiny": tiny}, tolerance=0.25
        )
        assert comparison.ok
        assert set(comparison.stable) == {"tiny"}

    def test_crossing_the_floor_is_gated(self):
        comparison = compare_benchmarks(
            results={"grew": MIN_GATED_SECONDS * 10},
            baseline={"grew": MIN_GATED_SECONDS * 2},
            tolerance=0.25,
        )
        assert set(comparison.regressions) == {"grew"}

    def test_negative_tolerance_rejected(self):
        with pytest.raises(BenchGateError):
            compare_benchmarks({"a": 1.0}, {"a": 1.0}, tolerance=-0.1)

    def test_uniform_hardware_slowdown_gates_clean(self):
        # A 2x-slower host shifts every benchmark identically; the median
        # ratio absorbs it and nothing regresses.
        baseline = {f"bench{i}": 1.0 + i * 0.1 for i in range(5)}
        results = {name: mean * 2.0 for name, mean in baseline.items()}
        comparison = compare_benchmarks(results, baseline, tolerance=0.25)
        assert comparison.ok
        assert comparison.scale == pytest.approx(2.0)
        assert len(comparison.stable) == 5

    def test_single_spike_survives_normalization(self):
        baseline = {f"bench{i}": 1.0 for i in range(5)}
        results = dict.fromkeys(baseline, 1.0)
        results["bench3"] = 3.0
        comparison = compare_benchmarks(results, baseline)
        assert set(comparison.regressions) == {"bench3"}

    def test_too_few_samples_disable_normalization(self):
        # With fewer benchmarks than MIN_NORMALIZE_SAMPLES the regressed
        # benchmark would dominate its own normalizer; raw means gate.
        comparison = compare_benchmarks({"only": 2.0}, {"only": 1.0})
        assert comparison.scale == 1.0
        assert set(comparison.regressions) == {"only"}

    def test_suite_wide_blowup_beyond_max_scale_fails(self):
        # Normalization must not absorb an order-of-magnitude uniform
        # regression: the scale leaves the trusted band and the gate
        # fails on the RAW deltas.
        baseline = {f"bench{i}": 1.0 for i in range(5)}
        results = dict.fromkeys(baseline, 6.0)  # 6x > DEFAULT_MAX_SCALE
        comparison = compare_benchmarks(results, baseline)
        assert not comparison.ok
        assert comparison.scale_out_of_bounds
        assert len(comparison.regressions) == 5  # raw means gated
        assert "SCALE" in comparison.format_report()
        # A wider explicit band waves the same uniform shift through.
        assert compare_benchmarks(results, baseline, max_scale=8.0).ok

    def test_bad_max_scale_rejected(self):
        with pytest.raises(BenchGateError):
            compare_benchmarks({"a": 1.0}, {"a": 1.0}, max_scale=0.5)

    def test_absolute_mode_disables_normalization(self):
        baseline = {f"bench{i}": 1.0 for i in range(5)}
        results = dict.fromkeys(baseline, 2.0)
        assert compare_benchmarks(results, baseline).ok
        absolute = compare_benchmarks(results, baseline, normalize=False)
        assert len(absolute.regressions) == 5
        assert absolute.scale == 1.0

    def test_report_mentions_verdicts(self):
        comparison = compare_benchmarks(
            results={"slow": 2.0, "ok": 1.0}, baseline={"slow": 1.0, "ok": 1.0}
        )
        report = comparison.format_report()
        assert "REGRESSED" in report and "gate FAILED" in report
        assert "slow" in report


class TestRoundTrip:
    def test_baseline_write_read_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, {"b": 2.5, "a": 1.25})
        assert load_baseline(path) == {"a": 1.25, "b": 2.5}

    def test_results_parser_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"not": "pytest-benchmark"}))
        with pytest.raises(BenchGateError):
            load_benchmark_means(str(bad))

    def test_foreign_version_baseline_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "benchmarks": {"a": 1.0}}))
        with pytest.raises(BenchGateError, match="version"):
            load_baseline(path)


class TestCliGate:
    MEANS = {"test_bench_figure4": 10.0, "test_bench_table2": 0.5}

    def test_gate_passes_on_matching_baseline(self, results_file, baseline_file, capsys):
        code = main(
            ["bench-compare", results_file(self.MEANS),
             "--baseline", baseline_file(self.MEANS)]
        )
        assert code == 0
        assert "gate PASSED" in capsys.readouterr().out

    def test_gate_fails_on_perturbed_baseline(self, results_file, baseline_file, capsys):
        # The acceptance check: shrink one baseline mean so today's (same)
        # measurement reads as a >25% regression -> CI exit code 1.
        perturbed = dict(self.MEANS, test_bench_figure4=self.MEANS["test_bench_figure4"] / 2)
        code = main(
            ["bench-compare", results_file(self.MEANS),
             "--baseline", baseline_file(perturbed)]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out and "gate FAILED" in out

    def test_gate_fails_on_missing_benchmark(self, results_file, baseline_file):
        shrunk = {"test_bench_figure4": 10.0}
        code = main(
            ["bench-compare", results_file(shrunk),
             "--baseline", baseline_file(self.MEANS)]
        )
        assert code == 1  # losing a benchmark must not read as a win

    def test_wider_tolerance_waves_the_same_delta_through(
        self, results_file, baseline_file
    ):
        perturbed = dict(self.MEANS, test_bench_figure4=7.0)  # ~43% slower
        args = ["bench-compare", results_file(self.MEANS),
                "--baseline", baseline_file(perturbed)]
        assert main(args) == 1
        assert main([*args, "--tolerance", "0.60"]) == 0

    def test_update_rewrites_baseline(self, results_file, tmp_path, capsys):
        target = tmp_path / "fresh-baseline.json"
        code = main(
            ["bench-compare", results_file(self.MEANS),
             "--baseline", str(target), "--update"]
        )
        assert code == 0
        assert load_baseline(target) == self.MEANS
        # And the freshly written baseline gates its own results cleanly.
        assert main(
            ["bench-compare", results_file(self.MEANS), "--baseline", str(target)]
        ) == 0

    def test_unreadable_results_exit_2(self, tmp_path, capsys):
        code = main(
            ["bench-compare", str(tmp_path / "missing.json"),
             "--baseline", str(tmp_path / "missing-too.json")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_unwritable_baseline_update_exit_2(self, results_file, tmp_path, capsys):
        code = main(
            ["bench-compare", results_file(self.MEANS), "--update",
             "--baseline", str(tmp_path / "no" / "such" / "dir" / "baseline.json")]
        )
        assert code == 2  # BenchGateError, not a raw OSError traceback
        assert "cannot write baseline" in capsys.readouterr().err


def test_committed_baseline_is_loadable_and_covers_the_suite():
    """The baseline shipped in the repo must parse and track every benchmark
    module present under benchmarks/ (one mean per test function there)."""
    import pathlib

    repo_root = pathlib.Path(__file__).resolve().parents[2]
    baseline = load_baseline(repo_root / "benchmarks" / "baseline.json")
    assert baseline, "committed baseline must not be empty"
    covered = {name.split("[")[0] for name in baseline}
    # Every figure/table benchmark file contributes its gated mean (the
    # ablations file groups several test_bench_ablation_* functions).
    for path in (repo_root / "benchmarks").glob("test_bench_*.py"):
        prefix = path.stem.rstrip("s")  # test_bench_ablations -> _ablation
        assert any(name.startswith(prefix) for name in covered), (
            f"{path.stem} not represented in baseline"
        )
