"""Tests for the ``python -m repro`` CLI and end-to-end sweep caching.

The warm-cache test is the acceptance check for the sweep engine: a full
``run-all`` against a warm job cache must perform **zero** new simulations,
and must reproduce the cold run's outputs exactly.
"""

import json

import pytest

from repro.__main__ import (
    EXPERIMENTS,
    build_context,
    experiment_names,
    main,
    parse_args,
    run_experiments,
)

#: Tiny-but-valid evaluation: one application, short traces.
TINY = ["--instructions", "1500", "--applications", "gcc"]


def tiny_args(command, cache_dir, *extra):
    return parse_args([command, *extra, *TINY, "--cache-dir", str(cache_dir)])


class TestArgs:
    def test_run_figure_requires_known_names(self, capsys):
        with pytest.raises(SystemExit):
            parse_args(["run-figure", "figure99"])

    def test_run_all_selects_every_experiment(self, tmp_path):
        args = tiny_args("run-all", tmp_path / "cache")
        assert experiment_names(args) == list(EXPERIMENTS)

    def test_run_figure_deduplicates(self, tmp_path):
        args = parse_args(["run-figure", "table2", "figure4", "table2", *TINY])
        assert experiment_names(args) == ["table2", "figure4"]

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out and "table1" in out


class TestMain:
    def test_run_figure_writes_output_json(self, tmp_path, capsys):
        output = tmp_path / "rows.json"
        code = main(
            ["run-figure", "table2", *TINY, "--no-cache", "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert set(payload) == {"table2"}
        assert payload["table2"]  # non-empty rows
        out = capsys.readouterr().out
        assert "1 simulated" in out

    def test_unwritable_output_fails_before_running(self, tmp_path, capsys):
        code = main(
            ["run-figure", "table2", *TINY, "--no-cache",
             "--output", str(tmp_path / "no" / "such" / "dir" / "rows.json")]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "cannot write --output" in captured.err
        # Failed fast: no experiment output was produced first.
        assert "table2" not in captured.out

    def test_parallel_flag_produces_identical_rows(self, tmp_path):
        outputs = {}
        for jobs in ("1", "2"):
            output = tmp_path / f"rows-{jobs}.json"
            main(
                ["run-figure", "figure4", *TINY, "--no-cache",
                 "--jobs", jobs, "--output", str(output)]
            )
            outputs[jobs] = output.read_text()
        assert outputs["1"] == outputs["2"]


class TestWarmCacheAcceptance:
    def test_run_all_second_invocation_simulates_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"

        cold_args = tiny_args("run-all", cache_dir)
        cold_context = build_context(cold_args)
        sink = lambda *args, **kwargs: None  # noqa: E731 - silence table output
        cold = run_experiments(experiment_names(cold_args), cold_context, echo=sink)
        assert cold_context.runner.simulate_count > 0
        assert cold_context.runner.cache_hits == 0

        warm_args = tiny_args("run-all", cache_dir)
        warm_context = build_context(warm_args)
        warm = run_experiments(experiment_names(warm_args), warm_context, echo=sink)
        # The acceptance criterion: a warm cache means zero new simulations.
        assert warm_context.runner.simulate_count == 0
        assert warm_context.runner.cache_hits == cold_context.runner.simulate_count

        # And the outputs are identical, figure by figure, byte for byte.
        for name in EXPERIMENTS:
            assert cold[name].format_table() == warm[name].format_table()
            assert cold[name].rows() == warm[name].rows()

    def test_cache_invalidates_on_parameter_change(self, tmp_path):
        cache_dir = tmp_path / "cache"
        sink = lambda *args, **kwargs: None  # noqa: E731

        first = build_context(tiny_args("run-figure", cache_dir, "table2"))
        run_experiments(["table2"], first, echo=sink)

        # Longer traces -> different job fingerprints -> full re-simulation.
        changed_args = parse_args(
            ["run-figure", "table2", "--instructions", "2500",
             "--applications", "gcc", "--cache-dir", str(cache_dir)]
        )
        changed = build_context(changed_args)
        run_experiments(["table2"], changed, echo=sink)
        assert changed.runner.cache_hits == 0
        assert changed.runner.simulate_count == first.runner.simulate_count
