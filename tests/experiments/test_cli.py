"""Tests for the ``python -m repro`` CLI and end-to-end sweep caching.

The warm-cache test is the acceptance check for the sweep engine: a full
``run-all`` against a warm job cache must perform **zero** new simulations,
and must reproduce the cold run's outputs exactly.
"""

import json
import os

import pytest

from repro.__main__ import (
    EXPERIMENTS,
    build_context,
    experiment_names,
    list_output,
    main,
    parse_args,
    parse_trace_files,
    run_experiments,
    run_spec_experiments,
)
from repro.common.errors import ConfigurationError

#: Tiny-but-valid evaluation: one application, short traces.
TINY = ["--instructions", "1500", "--applications", "gcc"]


def tiny_args(command, cache_dir, *extra):
    return parse_args([command, *extra, *TINY, "--cache-dir", str(cache_dir)])


class TestArgs:
    def test_run_figure_requires_known_names(self, capsys):
        with pytest.raises(SystemExit):
            parse_args(["run-figure", "figure99"])

    def test_run_all_selects_every_experiment(self, tmp_path):
        args = tiny_args("run-all", tmp_path / "cache")
        assert experiment_names(args) == list(EXPERIMENTS)

    def test_run_figure_deduplicates(self, tmp_path):
        args = parse_args(["run-figure", "table2", "figure4", "table2", *TINY])
        assert experiment_names(args) == ["table2", "figure4"]

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out and "table1" in out
        # The listing documents the replay engines and the cache layout.
        assert "columnar" in out and "reference" in out
        assert "--engine" in out and "--no-cache" in out

    def test_engine_flag_parses_and_rejects_unknown(self, capsys):
        assert parse_args(["run-all", "--engine", "reference"]).engine == "reference"
        assert parse_args(["run-all"]).engine is None
        with pytest.raises(SystemExit):
            parse_args(["run-all", "--engine", "vectorized"])

    def test_run_figure_help_documents_engine_and_trace_cache(self, capsys):
        with pytest.raises(SystemExit):
            parse_args(["run-figure", "--help"])
        out = capsys.readouterr().out
        assert "--engine" in out and "columnar" in out
        assert "traces" in out  # the trace-memo side of --cache-dir
        assert "--ladder-mode" in out and "fused" in out and "per-config" in out

    def test_ladder_mode_flag_parses_and_rejects_unknown(self):
        assert parse_args(["run-all"]).ladder_mode == "fused"
        assert (
            parse_args(["run-all", "--ladder-mode", "per-config"]).ladder_mode
            == "per-config"
        )
        with pytest.raises(SystemExit):
            parse_args(["run-all", "--ladder-mode", "vectorized"])

    def test_list_documents_ladder_modes(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "--ladder-mode" in out
        assert "fused" in out and "per-config" in out


class TestResilienceFlags:
    def test_defaults_build_a_retrying_policy_with_checkpoint(self, tmp_path):
        cache_dir = tmp_path / "cache"
        context = build_context(tiny_args("run-all", cache_dir))
        policy = context.runner.retry_policy
        assert policy.max_attempts == 3 and policy.job_timeout is None
        assert context.runner.checkpoint_path == cache_dir / "checkpoint.json"

    def test_flags_reach_the_policy(self, tmp_path):
        args = tiny_args(
            "run-all", tmp_path / "cache", "--job-timeout", "7.5", "--job-retries", "0"
        )
        policy = build_context(args).runner.retry_policy
        assert policy.max_attempts == 1 and policy.job_timeout == 7.5

    def test_no_cache_disables_the_checkpoint(self):
        context = build_context(parse_args(["run-all", *TINY, "--no-cache"]))
        assert context.runner.checkpoint_path is None

    def test_resume_requires_the_cache(self, capsys):
        assert main(["run-figure", "table2", *TINY, "--no-cache", "--resume"]) == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_negative_retries_rejected(self, capsys):
        assert main(["run-figure", "table2", *TINY, "--no-cache",
                     "--job-retries", "-1"]) == 2
        assert "--job-retries" in capsys.readouterr().err

    def test_resume_reports_checkpoint_and_simulates_only_residue(
        self, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        assert main(["run-figure", "table2", *TINY,
                     "--cache-dir", str(cache_dir)]) == 0
        assert (cache_dir / "checkpoint.json").is_file()
        capsys.readouterr()

        assert main(["run-figure", "table2", *TINY,
                     "--cache-dir", str(cache_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "resume: previous run (completed)" in out
        assert "0 simulated" in out  # warm cache: the residue is empty

    def test_resume_without_manifest_degrades_to_a_note(self, tmp_path, capsys):
        assert main(["run-figure", "table2", *TINY,
                     "--cache-dir", str(tmp_path / "fresh"), "--resume"]) == 0
        assert "no checkpoint manifest" in capsys.readouterr().out

    def test_stats_prints_the_resilience_line(self, tmp_path, capsys):
        assert main(["run-figure", "table2", *TINY,
                     "--cache-dir", str(tmp_path / "cache"), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "resilience:" in out
        assert "0 retrie(s)" in out and "0 worker death(s)" in out
        assert "0 quarantined job(s)" in out and "self-healed" in out

    def test_resume_names_quarantined_fingerprints(self, tmp_path, capsys):
        # A checkpoint whose previous attempt quarantined a job: --resume
        # names the job and its cache fingerprints instead of silently
        # retrying it from scratch.
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        (cache_dir / "checkpoint.json").write_text(json.dumps({
            "version": 1,
            "done": False,
            "simulated": 3,
            "cache_hits": 1,
            "pending": 2,
            "deferred": 0,
            "quarantined": [{
                "job": {"workload": "gcc (1500 instructions)"},
                "attempts": 3,
                "error": "worker crashed on every attempt",
                "fingerprints": ["ab12cd34ef56" + "0" * 52],
            }],
        }))
        assert main(["run-figure", "table2", *TINY,
                     "--cache-dir", str(cache_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "quarantined 1 job(s)" in out
        assert "gcc (1500 instructions)" in out
        assert "ab12cd34ef56" in out  # the truncated fingerprint
        assert "after 3 attempt(s)" in out
        assert "worker crashed on every attempt" in out

    def test_injected_faults_leave_rows_byte_identical(self, tmp_path, monkeypatch):
        from repro.sim import faults

        clean = tmp_path / "clean.json"
        assert main(["run-figure", "table2", *TINY, "--no-cache", "--jobs", "2",
                     "--output", str(clean)]) == 0

        monkeypatch.setenv(
            "REPRO_FAULT_PLAN", "worker_crash:job=1;shm_publish_fail:segment=1"
        )
        faults.reset()  # pick the env plan up lazily, like a fresh process
        faulted = tmp_path / "faulted.json"
        try:
            assert main(["run-figure", "table2", *TINY, "--no-cache", "--jobs", "2",
                         "--output", str(faulted)]) == 0
        finally:
            monkeypatch.delenv("REPRO_FAULT_PLAN")
            faults.reset()
        assert clean.read_bytes() == faulted.read_bytes()


class TestMain:
    def test_run_figure_writes_output_json(self, tmp_path, capsys):
        output = tmp_path / "rows.json"
        code = main(
            ["run-figure", "table2", *TINY, "--no-cache", "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert set(payload) == {"table2"}
        assert payload["table2"]  # non-empty rows
        out = capsys.readouterr().out
        assert "1 simulated" in out

    def test_unwritable_output_fails_before_running(self, tmp_path, capsys):
        code = main(
            ["run-figure", "table2", *TINY, "--no-cache",
             "--output", str(tmp_path / "no" / "such" / "dir" / "rows.json")]
        )
        assert code == 2
        captured = capsys.readouterr()
        assert "cannot write --output" in captured.err
        # Failed fast: no experiment output was produced first.
        assert "table2" not in captured.out

    def test_parallel_flag_produces_identical_rows(self, tmp_path):
        outputs = {}
        for jobs in ("1", "2"):
            output = tmp_path / f"rows-{jobs}.json"
            main(
                ["run-figure", "figure4", *TINY, "--no-cache",
                 "--jobs", jobs, "--output", str(output)]
            )
            outputs[jobs] = output.read_text()
        assert outputs["1"] == outputs["2"]

    def test_engines_produce_identical_rows(self, tmp_path):
        """The CLI-level cross-engine acceptance check (uncached)."""
        outputs = {}
        for engine in ("reference", "columnar"):
            output = tmp_path / f"rows-{engine}.json"
            main(
                ["run-figure", "figure4", *TINY, "--no-cache",
                 "--engine", engine, "--output", str(output)]
            )
            outputs[engine] = output.read_text()
        assert outputs["reference"] == outputs["columnar"]

    def test_ladder_modes_produce_identical_rows(self, tmp_path):
        """The CLI-level fused-vs-per-config acceptance check (uncached)."""
        outputs = {}
        for mode in ("fused", "per-config"):
            output = tmp_path / f"rows-{mode}.json"
            main(
                ["run-figure", "figure4", *TINY, "--no-cache",
                 "--ladder-mode", mode, "--output", str(output)]
            )
            outputs[mode] = output.read_bytes()
        assert outputs["fused"] == outputs["per-config"]

    def test_fused_run_reports_fused_rungs(self, tmp_path, capsys):
        import re

        assert main(["run-figure", "figure4", *TINY, "--no-cache"]) == 0
        out = capsys.readouterr().out
        match = re.search(r"(\d+) ladder rung\(s\) fused", out)
        assert match is not None
        # figure4 is ladder-dominated: the fused default must fuse rungs.
        assert int(match.group(1)) > 0

    def test_modes_share_the_job_cache_both_ways(self, tmp_path):
        """A fused run warms a per-config run's cache and vice versa."""
        cache_dir = tmp_path / "cache"
        sink = lambda *args, **kwargs: None  # noqa: E731

        fused = build_context(tiny_args("run-figure", cache_dir, "figure4"))
        run_experiments(["figure4"], fused, echo=sink)
        assert fused.runner.simulate_count > 0

        per_config = build_context(
            tiny_args("run-figure", cache_dir, "figure4", "--ladder-mode", "per-config")
        )
        run_experiments(["figure4"], per_config, echo=sink)
        assert per_config.runner.simulate_count == 0

        fused_again = build_context(tiny_args("run-figure", cache_dir, "figure4"))
        run_experiments(["figure4"], fused_again, echo=sink)
        assert fused_again.runner.simulate_count == 0
        assert fused_again.runner.fused_rungs == 0
        assert fused_again.runner.fused_skipped > 0


class TestRunSpec:
    """The declarative entry point: ``run-spec`` and the spec-aware list."""

    USER_SPEC = (
        "spec: 1\n"
        "name: probe-sweep\n"
        "axes:\n"
        "  targets: [icache]\n"
        "  organizations: [hybrid]\n"
        "  associativities: [8]\n"
        "  strategies: [static]\n"
        "  applications: [gcc]\n"
        "analysis:\n"
        "  kind: grid\n"
    )

    def write_spec(self, tmp_path, text=None, stem="probe"):
        path = tmp_path / f"{stem}.yaml"
        path.write_text(text if text is not None else self.USER_SPEC)
        return str(path)

    def test_parse_run_spec_collects_paths_and_common_flags(self):
        args = parse_args(["run-spec", "a.yaml", "b.yaml", "--jobs", "2"])
        assert args.command == "run-spec"
        assert args.specs == ["a.yaml", "b.yaml"]
        assert args.jobs == 2 and args.ladder_mode == "fused"

    def test_user_spec_runs_end_to_end(self, tmp_path, capsys):
        spec_path = self.write_spec(tmp_path)
        output = tmp_path / "rows.json"
        code = main(["run-spec", spec_path, *TINY, "--no-cache",
                     "--output", str(output)])
        assert code == 0
        payload = json.loads(output.read_text())
        assert set(payload) == {"probe-sweep"}
        assert payload["probe-sweep"]
        out = capsys.readouterr().out
        # The plan line, the pipeline echoes and the summary all print.
        assert "probe-sweep:" in out and "cell(s)" in out and "[spec " in out
        assert "two-phase pipeline:" in out
        assert "1 experiment(s) in" in out

    def test_malformed_spec_fails_fast(self, tmp_path, capsys):
        bad = self.write_spec(
            tmp_path, self.USER_SPEC.replace("kind: grid", "kind: mystery"),
        )
        assert main(["run-spec", bad, *TINY, "--no-cache"]) == 2
        captured = capsys.readouterr()
        assert "mystery" in captured.err
        assert "two-phase pipeline" not in captured.out  # nothing ran

    def test_missing_spec_file_fails_fast(self, tmp_path, capsys):
        assert main(["run-spec", str(tmp_path / "ghost.yaml"),
                     *TINY, "--no-cache"]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_duplicate_spec_names_rejected(self, tmp_path):
        first = self.write_spec(tmp_path, stem="first")
        second = self.write_spec(tmp_path, stem="second")
        context = build_context(
            parse_args(["run-spec", first, second, *TINY, "--no-cache"])
        )
        sink = lambda *args, **kwargs: None  # noqa: E731
        with pytest.raises(ConfigurationError, match="duplicate spec name"):
            run_spec_experiments([first, second], context, echo=sink)

    def test_specs_share_one_drain(self, tmp_path, capsys):
        # Two specs over the same axes: the second dedups onto the first's
        # futures, and the whole batch drains before any table prints.
        first = self.write_spec(tmp_path, stem="first")
        second = self.write_spec(
            tmp_path, self.USER_SPEC.replace("probe-sweep", "other-sweep"),
            stem="second",
        )
        context = build_context(
            parse_args(["run-spec", first, second, *TINY, "--no-cache"])
        )
        sink = lambda *args, **kwargs: None  # noqa: E731
        results = run_spec_experiments([first, second], context, echo=sink)
        assert set(results) == {"probe-sweep", "other-sweep"}
        assert results["probe-sweep"].rows() == results["other-sweep"].rows()

    def test_committed_spec_matches_run_figure(self, tmp_path):
        committed = os.path.join(
            "src", "repro", "experiments", "specs", "table2.yaml"
        )
        legacy_out = tmp_path / "legacy.json"
        spec_out = tmp_path / "spec.json"
        assert main(["run-figure", "table2", *TINY, "--no-cache",
                     "--output", str(legacy_out)]) == 0
        assert main(["run-spec", committed, *TINY, "--no-cache",
                     "--output", str(spec_out)]) == 0
        assert legacy_out.read_bytes() == spec_out.read_bytes()

    def test_list_enumerates_committed_specs_with_job_counts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "run-spec" in out and "docs/EXPERIMENTS.md" in out
        # Every committed spec appears with a planned job count (table1 is
        # analytic and says so instead).
        assert "analytic" in out
        import re

        assert re.search(r"figure4\s+\d+ job\(s\)", out)

    def test_list_output_is_the_single_source_for_the_listing(self, capsys):
        assert main(["list"]) == 0
        assert capsys.readouterr().out == list_output() + "\n"


class TestTraceCacheWiring:
    def test_cache_dir_hosts_the_trace_memo(self, tmp_path):
        from repro.sim.runner import _TRACE_MEMO

        _TRACE_MEMO.clear()  # force materialisation so the disk memo is written
        cache_dir = tmp_path / "cache"
        context = build_context(tiny_args("run-figure", cache_dir, "table2"))
        sink = lambda *args, **kwargs: None  # noqa: E731
        run_experiments(["table2"], context, echo=sink)
        trace_dir = cache_dir / "traces"
        assert trace_dir.is_dir()
        assert list(trace_dir.glob("*/*.trace"))

    def test_no_cache_bypasses_the_trace_memo_too(self, tmp_path, monkeypatch):
        from repro.sim import runner as runner_module

        # Even with a process-level trace cache left over from earlier work,
        # --no-cache must clear it: no trace may be read from or written to
        # disk during the run.
        leftover = tmp_path / "leftover"
        runner_module.set_trace_cache(str(leftover))
        monkeypatch.chdir(tmp_path)
        assert main(["run-figure", "table2", *TINY, "--no-cache"]) == 0
        assert runner_module.get_trace_cache() is None
        assert not list(leftover.glob("*/*.trace"))
        assert not (tmp_path / ".repro-cache").exists()


class TestWarmCacheAcceptance:
    def test_run_all_second_invocation_simulates_nothing(self, tmp_path):
        cache_dir = tmp_path / "cache"

        cold_args = tiny_args("run-all", cache_dir)
        cold_context = build_context(cold_args)
        sink = lambda *args, **kwargs: None  # noqa: E731 - silence table output
        cold = run_experiments(experiment_names(cold_args), cold_context, echo=sink)
        assert cold_context.runner.simulate_count > 0
        assert cold_context.runner.cache_hits == 0

        warm_args = tiny_args("run-all", cache_dir)
        warm_context = build_context(warm_args)
        warm = run_experiments(experiment_names(warm_args), warm_context, echo=sink)
        # The acceptance criterion: a warm cache means zero new simulations.
        assert warm_context.runner.simulate_count == 0
        assert warm_context.runner.cache_hits == cold_context.runner.simulate_count

        # And the outputs are identical, figure by figure, byte for byte.
        for name in EXPERIMENTS:
            assert cold[name].format_table() == warm[name].format_table()
            assert cold[name].rows() == warm[name].rows()

    def test_cache_invalidates_on_parameter_change(self, tmp_path):
        cache_dir = tmp_path / "cache"
        sink = lambda *args, **kwargs: None  # noqa: E731

        first = build_context(tiny_args("run-figure", cache_dir, "table2"))
        run_experiments(["table2"], first, echo=sink)

        # Longer traces -> different job fingerprints -> full re-simulation.
        changed_args = parse_args(
            ["run-figure", "table2", "--instructions", "2500",
             "--applications", "gcc", "--cache-dir", str(cache_dir)]
        )
        changed = build_context(changed_args)
        run_experiments(["table2"], changed, echo=sink)
        assert changed.runner.cache_hits == 0
        assert changed.runner.simulate_count == first.runner.simulate_count


class TestTraceFileAndSamplingFlags:
    FIXTURE = os.path.join(
        os.path.dirname(os.path.dirname(__file__)), "data", "sample.rtxt"
    )

    def test_parse_trace_files_names_and_stems(self, tmp_path):
        other = tmp_path / "capture.rtxt"
        other.write_text("#RTXT 1\n0x10 I\n")
        parsed = parse_trace_files([f"ref={self.FIXTURE}", str(other)])
        assert parsed == {"ref": self.FIXTURE, "capture": str(other)}

    def test_parse_trace_files_rejects_duplicates_and_missing(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            parse_trace_files([f"a={self.FIXTURE}", f"a={self.FIXTURE}"])
        with pytest.raises(ConfigurationError, match="no such file"):
            parse_trace_files(["ghost=/nonexistent/trace.rtxt"])
        with pytest.raises(ConfigurationError, match="needs a path"):
            parse_trace_files(["name="])

    def test_build_context_registers_external_workloads(self, tmp_path):
        args = parse_args(
            ["run-figure", "table2", "--no-cache",
             "--trace-file", f"sample={self.FIXTURE}"]
        )
        context = build_context(args)
        # external names join the default application list…
        assert "sample" in context.applications
        # …and resolve to a content-addressed external spec, not a profile
        spec = context.trace_spec("sample")
        assert spec.application == "sample"
        assert context.trace("sample").name == "sample"
        assert len(context.trace("sample")) == 4500

    def test_applications_flag_accepts_external_names(self):
        args = parse_args(
            ["run-figure", "table2", "--no-cache",
             "--trace-file", f"sample={self.FIXTURE}",
             "--applications", "gcc,sample"]
        )
        context = build_context(args)
        assert context.applications == ("gcc", "sample")

    def test_unknown_application_still_fails_fast(self):
        args = parse_args(
            ["run-figure", "table2", "--no-cache", "--applications", "sample"]
        )
        with pytest.raises(Exception, match="sample"):
            build_context(args)

    def test_sampling_flags_reach_the_context(self):
        args = parse_args(
            ["run-all", "--sample-every", "4", "--sample-warmup", "600", *TINY]
        )
        assert args.sample_every == 4 and args.sample_warmup == 600
        context = build_context(
            parse_args(["run-all", "--no-cache", "--sample-every", "4",
                        "--sample-warmup", "600", *TINY])
        )
        assert context.sample_every == 4
        assert context.sample_warmup == 600

    def test_external_trace_runs_a_figure_end_to_end(self, tmp_path, capsys):
        output = tmp_path / "rows.json"
        code = main(
            ["run-figure", "table2", "--no-cache",
             "--trace-file", f"sample={self.FIXTURE}",
             "--applications", "sample",
             "--sample-every", "2", "--sample-warmup", "300",
             "--output", str(output)]
        )
        assert code == 0
        payload = json.loads(output.read_text())
        assert any("sample" in str(row) for row in payload["table2"])

    def test_list_documents_trace_files_and_sampling(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "--trace-file" in out and ".rtxt" in out and ".rtrc2" in out
        assert "--sample-every" in out and "error bars" in out
