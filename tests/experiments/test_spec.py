"""Declarative experiment specs: schema, validation, fingerprints.

Every committed spec under ``src/repro/experiments/specs/`` must load,
validate, fingerprint stably and plan cleanly; malformed user specs must
fail with precise `ConfigurationError`\\ s rather than silently dropping
an axis.  The mini-YAML fallback must agree with PyYAML whenever the
latter is installed, because CI reads the committed specs without it.
"""

import dataclasses
import json

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments import (
    DoEOrchestrator,
    builtin_spec_names,
    builtin_spec_path,
    load_builtin_spec,
    load_spec,
    spec_from_dict,
)
from repro.experiments.spec import load_spec_text

#: Canonical job counts for the committed paper specs (the numbers
#: ``python -m repro list`` prints with the default twelve applications).
EXPECTED_JOBS = {
    "table1": 0,  # analytic: planning yields zero cells
    "table2": 12,
    "figure4": 240,
    "figure5": 60,
    "figure6": 336,
    "figure7": 72,
    "figure8": 72,
    "figure9": 48,
}


def minimal(**overrides):
    """A small valid spec dict to perturb in validation tests."""
    data = {
        "spec": 1,
        "name": "probe",
        "axes": {
            "targets": ["icache"],
            "organizations": ["hybrid"],
            "associativities": [8],
            "strategies": ["static"],
            "applications": ["gcc"],
        },
        "analysis": {"kind": "grid"},
    }
    data.update(overrides)
    return data


class TestCommittedSpecs:
    def test_the_full_figure_set_is_committed(self):
        assert builtin_spec_names() == [
            "table1", "table2", "figure4", "figure5", "figure6",
            "figure7", "figure8", "figure9",
        ]

    @pytest.mark.parametrize("name", sorted(EXPECTED_JOBS))
    def test_loads_validates_and_fingerprints_stably(self, name):
        spec = load_builtin_spec(name)
        assert spec.name == name
        # Canonical-form stability: a reload and a dict round-trip both
        # fingerprint identically.
        assert spec.fingerprint() == load_builtin_spec(name).fingerprint()
        assert spec_from_dict(spec.to_dict()).fingerprint() == spec.fingerprint()
        # Fingerprints are full SHA-256 hex digests.
        assert len(spec.fingerprint()) == 64
        int(spec.fingerprint(), 16)

    @pytest.mark.parametrize("name", sorted(EXPECTED_JOBS))
    def test_plans_the_expected_job_count(self, name):
        plan = DoEOrchestrator().plan(load_builtin_spec(name))
        assert plan.job_count == EXPECTED_JOBS[name]

    def test_fingerprints_are_pairwise_distinct(self):
        prints = {
            load_builtin_spec(name).fingerprint() for name in EXPECTED_JOBS
        }
        assert len(prints) == len(EXPECTED_JOBS)

    @pytest.mark.parametrize("name", sorted(EXPECTED_JOBS))
    def test_mini_yaml_agrees_with_pyyaml(self, name):
        yaml = pytest.importorskip("yaml")
        with open(builtin_spec_path(name), "r", encoding="utf-8") as handle:
            text = handle.read()
        from repro.experiments.spec import _mini_yaml_load

        assert _mini_yaml_load(text) == yaml.safe_load(text)


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        spec = spec_from_dict(minimal())
        assert spec_from_dict(spec.to_dict()) == spec

    def test_json_specs_load_too(self, tmp_path):
        path = tmp_path / "probe.json"
        path.write_text(json.dumps(minimal()))
        assert load_spec(str(path)) == spec_from_dict(minimal())

    def test_yaml_text_loader_handles_the_spec_subset(self):
        text = (
            "spec: 1\n"
            "name: probe\n"
            "axes:\n"
            "  targets: [icache]\n"
            "  organizations: [hybrid]\n"
            "  associativities: [8]\n"
            "  strategies: [static]\n"
            "  applications: [gcc]\n"
            "analysis:\n"
            "  kind: grid\n"
        )
        assert spec_from_dict(load_spec_text(text)) == spec_from_dict(minimal())

    def test_with_axes_revalidates(self):
        spec = spec_from_dict(minimal())
        varied = spec.with_axes(associativities=(2, 4))
        assert varied.axes.associativities == (2, 4)
        assert varied.fingerprint() != spec.fingerprint()
        with pytest.raises(ConfigurationError):
            spec.with_axes(strategies=("mystery",))

    def test_fingerprint_ignores_prose_only_when_it_should(self):
        # Title and description are part of the canonical form: two specs
        # differing only in prose are different designs by fingerprint.
        spec = spec_from_dict(minimal())
        titled = spec_from_dict(minimal(title="Probe sweep"))
        assert titled.fingerprint() != spec.fingerprint()


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            spec_from_dict(minimal(surprise=1))

    def test_unknown_axes_key(self):
        data = minimal()
        data["axes"]["cache_sizes"] = [1]
        with pytest.raises(ConfigurationError, match="cache_sizes"):
            spec_from_dict(data)

    def test_unknown_analysis_key(self):
        data = minimal()
        data["analysis"]["mode"] = "fast"
        with pytest.raises(ConfigurationError, match="mode"):
            spec_from_dict(data)

    def test_wrong_spec_version(self):
        with pytest.raises(ConfigurationError, match="version"):
            spec_from_dict(minimal(spec=2))

    def test_missing_version(self):
        data = minimal()
        del data["spec"]
        with pytest.raises(ConfigurationError, match="version"):
            spec_from_dict(data)

    def test_bad_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            spec_from_dict(minimal(name="Has Spaces"))

    def test_unknown_strategy(self):
        data = minimal()
        data["axes"]["strategies"] = ["static", "oracle"]
        with pytest.raises(ConfigurationError, match="oracle"):
            spec_from_dict(data)

    def test_unknown_target(self):
        data = minimal()
        data["axes"]["targets"] = ["l2"]
        with pytest.raises(ConfigurationError, match="l2"):
            spec_from_dict(data)

    def test_unknown_core_kind(self):
        data = minimal()
        data["axes"]["core_kinds"] = ["quantum"]
        with pytest.raises(ConfigurationError, match="quantum"):
            spec_from_dict(data)

    def test_unknown_organization(self):
        data = minimal()
        data["axes"]["organizations"] = ["magic-ways"]
        with pytest.raises(ConfigurationError, match="magic-ways"):
            spec_from_dict(data)

    def test_resizing_strategy_requires_an_organization(self):
        data = minimal()
        data["axes"]["organizations"] = []
        with pytest.raises(ConfigurationError, match="organization"):
            spec_from_dict(data)

    def test_joint_static_requires_both_targets(self):
        data = minimal()
        data["axes"]["strategies"] = ["joint-static"]
        data["axes"]["targets"] = ["dcache"]
        with pytest.raises(ConfigurationError, match="both"):
            spec_from_dict(data)

    def test_baseline_only_needs_no_organizations(self):
        data = minimal()
        data["axes"]["strategies"] = ["baseline"]
        data["axes"]["organizations"] = []
        assert spec_from_dict(data).axes.strategies == ("baseline",)

    def test_specs_are_immutable(self):
        spec = spec_from_dict(minimal())
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.name = "other"

    def test_load_spec_names_the_file_on_failure(self, tmp_path):
        path = tmp_path / "broken.yaml"
        path.write_text("spec: 1\nname: broken\n")  # missing axes/analysis
        with pytest.raises(ConfigurationError, match="broken.yaml"):
            load_spec(str(path))

    def test_load_spec_missing_file(self):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_spec("/nonexistent/spec.yaml")
