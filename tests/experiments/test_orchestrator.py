"""The DoE orchestrator: plan enumeration, dedup accounting, run, analyze.

The plan phase must be inspectable for free (no simulation, no enqueue),
the run phase must dedup shared work through the context memo, and the
analyze phase must dispatch on the spec's analysis kind — with the
generic ``grid`` analyzer serving ad-hoc specs no figure module covers.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments import (
    DoEOrchestrator,
    ExperimentContext,
    figure5,
    load_builtin_spec,
    registered_kinds,
    spec_from_dict,
)

TINY = dict(n_instructions=1500, applications=("gcc",))


def tiny_context():
    return ExperimentContext(**TINY)


def user_spec(**axes_overrides):
    axes = {
        "targets": ["icache"],
        "organizations": ["hybrid"],
        "associativities": [8],
        "strategies": ["static", "dynamic"],
        "applications": ["gcc", "compress"],
    }
    axes.update(axes_overrides)
    return spec_from_dict({
        "spec": 1,
        "name": "probe",
        "axes": axes,
        "analysis": {"kind": "grid"},
    })


class TestPlan:
    def test_planning_enumerates_without_enqueueing(self):
        context = tiny_context()
        orchestrator = DoEOrchestrator(context)
        plan = orchestrator.plan(load_builtin_spec("figure5"))
        assert plan.cells and plan.job_count > 0
        # Nothing was enqueued and nothing simulated.
        assert context.runner.pending_count == 0
        assert context.runner.simulate_count == 0

    def test_dedup_accounting_static_plus_dynamic(self):
        # One application, one organization, one target: the static cell
        # requests (profile, baseline), the dynamic cell (dynamic, profile,
        # baseline) — 5 requests collapsing onto 3 unique jobs.
        plan = DoEOrchestrator(tiny_context()).plan(
            user_spec(applications=["gcc"])
        )
        assert len(plan.cells) == 2
        assert plan.requested_futures == 5
        assert plan.unique_futures == 3
        assert plan.dedup_savings == 2
        assert plan.job_count == 3

    def test_all_applications_resolve_from_the_context(self):
        plan = DoEOrchestrator(tiny_context()).plan(
            user_spec(applications="all")
        )
        assert plan.applications == ("gcc",)

    def test_describe_mentions_cells_jobs_and_dedup(self):
        text = DoEOrchestrator(tiny_context()).plan(
            user_spec(applications=["gcc"])
        ).describe()
        assert "2 cell(s)" in text
        assert "3 job(s)" in text
        assert "2 shared" in text

    def test_unknown_analysis_kind_fails_at_plan_time(self):
        spec = spec_from_dict({
            "spec": 1,
            "name": "probe",
            "axes": {"strategies": ["baseline"]},
            "analysis": {"kind": "mystery"},
        })
        with pytest.raises(ConfigurationError, match="mystery"):
            DoEOrchestrator(tiny_context()).plan(spec)

    def test_analytic_specs_plan_zero_cells(self):
        plan = DoEOrchestrator(tiny_context()).plan(load_builtin_spec("table1"))
        assert plan.cells == []
        assert plan.job_count == 0
        assert plan.estimated_simulations == 0


class TestRunAndAnalyze:
    def test_grid_analyzer_end_to_end(self):
        context = tiny_context()
        orchestrator = DoEOrchestrator(context)
        store = orchestrator.execute(user_spec(applications=["gcc"]))
        rows = store.rows()
        # One row per cell; no AVG. rows with a single application.
        assert len(rows) == 2
        assert {row["strategy"] for row in rows} == {"static", "dynamic"}
        assert all(row["cache"] == "icache" for row in rows)
        assert all(row["associativity"] == 8 for row in rows)
        assert "strategy" in store.format_table()

    def test_grid_appends_average_rows_per_group(self):
        context = ExperimentContext(n_instructions=1500,
                                    applications=("gcc", "compress"))
        store = DoEOrchestrator(context).execute(user_spec())
        rows = store.rows()
        averages = [row for row in rows if row["application"] == "AVG."]
        # One AVG. row per (strategy) group of two applications.
        assert len(averages) == 2
        assert all("energy_delay_reduction_percent" in row for row in averages)

    def test_execute_equals_plan_run_analyze(self):
        spec = user_spec(applications=["gcc"])
        combined = DoEOrchestrator(tiny_context()).execute(spec)
        orchestrator = DoEOrchestrator(tiny_context())
        staged = orchestrator.analyze(orchestrator.run(orchestrator.plan(spec)))
        assert combined.rows() == staged.rows()
        assert combined.format_table() == staged.format_table()

    def test_shared_context_dedups_across_specs(self):
        # Two specs sharing axes: the second run must not add simulations
        # beyond what its own new cells require — here none at all.
        context = tiny_context()
        orchestrator = DoEOrchestrator(context)
        orchestrator.execute(user_spec(applications=["gcc"]))
        simulated = context.runner.simulate_count
        orchestrator.execute(user_spec(applications=["gcc"]))
        assert context.runner.simulate_count == simulated

    def test_spec_path_matches_the_legacy_module_path(self):
        # The acceptance check in miniature: figure5 through the
        # orchestrator emits exactly what the historical module emits.
        spec_store = DoEOrchestrator(tiny_context()).execute(
            load_builtin_spec("figure5")
        )
        legacy_context = tiny_context()
        figure5.prepare(legacy_context)
        legacy_context.drain()
        legacy = figure5.run(legacy_context)
        assert spec_store.rows() == legacy.rows()
        assert spec_store.format_table() == legacy.format_table()


class TestRegistry:
    def test_every_figure_kind_is_registered(self):
        kinds = registered_kinds()
        for kind in (
            "grid", "size-lattice", "energy-breakdown", "organization-grid",
            "organization-comparison", "hybrid-organization-grid",
            "strategy-comparison", "joint-resizing",
        ):
            assert kind in kinds
