"""Smoke tests for the experiment harnesses on a reduced context.

These use a handful of applications and short traces so they stay fast; the
full twelve-application, paper-scale runs live in ``benchmarks/``.
"""

import pytest

from repro.common.config import CoreKind
from repro.experiments import figure4, figure5, figure6, figure7, figure8, figure9, table2
from repro.experiments.context import (
    D_CACHE,
    I_CACHE,
    SELECTIVE_SETS,
    SELECTIVE_WAYS,
    ExperimentContext,
)


@pytest.fixture(scope="module")
def small_context() -> ExperimentContext:
    return ExperimentContext(
        n_instructions=12_000,
        applications=("ammp", "compress", "gcc"),
    )


class TestContext:
    def test_traces_and_baselines_are_memoised(self, small_context):
        assert small_context.trace("ammp") is small_context.trace("ammp")
        assert small_context.baseline("ammp") is small_context.baseline("ammp")

    def test_profiles_are_memoised_per_key(self, small_context):
        first = small_context.static_profile("ammp", SELECTIVE_SETS, D_CACHE, 2)
        again = small_context.static_profile("ammp", SELECTIVE_SETS, D_CACHE, 2)
        other = small_context.static_profile("ammp", SELECTIVE_WAYS, D_CACHE, 2)
        assert first is again
        assert first is not other

    def test_unknown_organization_rejected(self, small_context):
        from repro.common.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            small_context.organization("selective-banks", 2)


class TestTable2:
    def test_breakdown_rows_cover_all_applications(self, small_context):
        result = table2.run(small_context)
        assert set(result.per_application_fractions) == set(small_context.applications)
        mean = result.mean_fractions
        assert abs(sum(mean.values()) - 1.0) < 1e-6
        assert "512K 4-way" in result.format_table()


class TestFigureHarnesses:
    def test_figure4_produces_all_bars(self, small_context):
        result = figure4.run(small_context)
        assert len(result.rows()) == 2 * 2 * 4  # caches x organizations x associativities
        for row in result.rows():
            assert -100.0 < row["energy_delay_reduction_percent"] < 100.0
        assert set(result.crossover_summary()) == {D_CACHE, I_CACHE}

    def test_figure5_rows_per_application(self, small_context):
        result = figure5.run(small_context)
        assert len(result.panel(D_CACHE)) == len(small_context.applications)
        ammp = next(r for r in result.panel(D_CACHE) if r.application == "ammp")
        # ammp's small working set downsizes under selective-sets.
        assert ammp.sets_size_reduction > 50.0
        assert "AVG." in result.format_table()

    def test_figure6_hybrid_at_least_matches_both(self, small_context):
        result = figure6.run(small_context)
        for target in (D_CACHE, I_CACHE):
            for associativity in result.associativities:
                assert result.hybrid_matches_best(target, associativity, tolerance=1.5)

    def test_figure7_compares_cores_and_strategies(self, small_context):
        result = figure7.run(small_context)
        assert set(result.panels) == {
            CoreKind.IN_ORDER_BLOCKING,
            CoreKind.OUT_OF_ORDER_NONBLOCKING,
        }
        average = result.average(CoreKind.OUT_OF_ORDER_NONBLOCKING)
        assert average.static_size_reduction >= 0.0
        assert "static" in result.format_table().lower()

    def test_figure8_targets_the_icache(self, small_context):
        result = figure8.run(small_context)
        assert result.target == I_CACHE
        rows = result.panel(CoreKind.OUT_OF_ORDER_NONBLOCKING)
        ammp = next(r for r in rows if r.application == "ammp")
        assert ammp.static_size_reduction > 50.0

    def test_figure9_additivity(self, small_context):
        result = figure9.run(small_context)
        assert len(result.applications) == len(small_context.applications)
        for row in result.applications:
            stacked = row.stacked_energy_delay_reduction
            assert row.both_energy_delay_reduction == pytest.approx(stacked, abs=6.0)
        assert result.average().both_energy_delay_reduction >= 0.0
