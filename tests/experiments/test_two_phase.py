"""Acceptance tests for the two-phase (deferred-submission) evaluation.

The ISSUE-2 acceptance criterion: ``run-all --jobs N`` must push *every*
simulation — baselines, profiling ladders, dynamic runs, figure9's
combined runs — through the worker pool in at most two batches per phase,
with zero inline executions when ``jobs > 1``, and the results must be
byte-identical to a serial ``--jobs 1`` run.
"""

import json

import pytest

from repro.__main__ import (
    EXPERIMENTS,
    build_context,
    experiment_names,
    main,
    parse_args,
    prepare_experiments,
    run_experiments,
)

#: Tiny-but-complete evaluation: one application, short traces.
TINY = ["--instructions", "1500", "--applications", "gcc"]

_SINK = lambda *args, **kwargs: None  # noqa: E731 - silence table output


def tiny_context(jobs: int):
    return build_context(parse_args(["run-all", *TINY, "--no-cache", "--jobs", str(jobs)]))


class TestTwoPhasePipeline:
    def test_prepare_enqueues_both_phases_without_executing(self):
        context = tiny_context(jobs=1)
        for name in EXPERIMENTS:
            prepare = getattr(EXPERIMENTS[name], "prepare", None)
            if prepare is not None:
                prepare(context)
        runner = context.runner
        assert runner.simulate_count == 0
        # Phase 1: every profiling ladder + every baseline, as concrete jobs.
        assert runner.pending_count > 0
        # Phase 2: dynamic runs (figures 7/8, two cores each) and figure9's
        # combined run, all deferred on their profiles.
        assert runner.deferred_count == 5
        runner.drain()
        assert runner.pending_count == 0
        assert runner.deferred_count == 0
        assert runner.simulate_count > 0

    def test_parallel_run_all_uses_two_pool_batches_and_no_inline(self):
        context = tiny_context(jobs=2)
        names = list(EXPERIMENTS)
        results = run_experiments(names, context, echo=_SINK)
        runner = context.runner
        assert set(results) == set(EXPERIMENTS)
        # Every simulation went through the pool: profiles/baselines in one
        # batch, profile-dependent jobs in a second.  Nothing ran inline.
        assert runner.simulate_count > 0
        assert runner.pool_batches <= 2
        assert runner.inline_executions == 0

    def test_experiments_add_no_simulations_after_the_drain(self):
        context = tiny_context(jobs=1)
        names = experiment_names(parse_args(["run-all", *TINY, "--no-cache"]))
        prepare_experiments(names, context, echo=_SINK)
        simulated = context.runner.simulate_count
        run_experiments(names, context, echo=_SINK)
        # The figure harnesses only *consume* already-resolved futures.
        assert context.runner.simulate_count == simulated

    @pytest.mark.parametrize("second_jobs", [2])
    def test_batched_parallel_rows_byte_identical_to_serial(self, tmp_path, second_jobs):
        payloads = {}
        for jobs in (1, second_jobs):
            output = tmp_path / f"rows-{jobs}.json"
            code = main(
                ["run-all", *TINY, "--no-cache", "--jobs", str(jobs),
                 "--output", str(output)]
            )
            assert code == 0
            payloads[jobs] = output.read_bytes()
        assert payloads[1] == payloads[second_jobs]

    def test_run_figure_single_module_still_batches(self, capsys):
        # A lone figure (with dynamic runs) must also flow through the
        # two-phase pipeline rather than submitting jobs one at a time.
        context = build_context(
            parse_args(["run-figure", "figure7", *TINY, "--no-cache", "--jobs", "2"])
        )
        run_experiments(["figure7"], context, echo=_SINK)
        assert context.runner.pool_batches <= 2
        assert context.runner.inline_executions == 0

    def test_prepare_phase_is_reported(self, capsys):
        code = main(["run-figure", "table2", *TINY, "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "two-phase pipeline" in out
        assert "phase 1" in out and "phase 2" in out


def test_warm_cache_still_free_through_the_batched_path(tmp_path):
    """A warm job cache resolves futures at submit time: the second run-all
    performs zero simulations and zero pool batches."""
    cache_dir = tmp_path / "cache"
    args = ["run-all", *TINY, "--cache-dir", str(cache_dir), "--jobs", "1"]

    cold = build_context(parse_args(args))
    cold_rows = {
        name: result.rows()
        for name, result in run_experiments(list(EXPERIMENTS), cold, echo=_SINK).items()
    }
    assert cold.runner.simulate_count > 0

    warm = build_context(parse_args(args))
    warm_rows = {
        name: result.rows()
        for name, result in run_experiments(list(EXPERIMENTS), warm, echo=_SINK).items()
    }
    assert warm.runner.simulate_count == 0
    assert warm.runner.pool_batches == 0
    assert warm.runner.inline_executions == 0
    assert json.dumps(cold_rows, sort_keys=True) == json.dumps(warm_rows, sort_keys=True)
