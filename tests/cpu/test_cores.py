"""Tests for the in-order and out-of-order interval timing models."""

import pytest

from repro.common.config import CoreKind
from repro.common.errors import ConfigurationError
from repro.cpu.core_model import make_core_model
from repro.cpu.inorder import InOrderCore
from repro.cpu.ooo import OutOfOrderCore
from repro.cpu.timing import CoreTimingParameters
from repro.metrics.counts import IntervalCounts


def _counts(**overrides) -> IntervalCounts:
    counts = IntervalCounts(
        instructions=10_000,
        l1d_accesses=4_000,
        l1d_misses=40,
        l1i_accesses=2_200,
        l1i_misses=10,
        branches=1_800,
        branch_mispredicts=90,
        memory_level_parallelism=2.0,
    )
    for name, value in overrides.items():
        setattr(counts, name, value)
    return counts


class TestFactory:
    def test_factory_builds_matching_model(self, base_system, inorder_system):
        assert isinstance(make_core_model(base_system), OutOfOrderCore)
        assert isinstance(make_core_model(inorder_system), InOrderCore)

    def test_kind_property(self, base_system, inorder_system):
        assert make_core_model(base_system).kind is CoreKind.OUT_OF_ORDER_NONBLOCKING
        assert make_core_model(inorder_system).kind is CoreKind.IN_ORDER_BLOCKING


class TestRelativeBehaviour:
    def test_ooo_is_faster_than_inorder_on_identical_work(self, base_system, inorder_system):
        counts = _counts()
        ooo = make_core_model(base_system).interval_cycles(counts)
        inorder = make_core_model(inorder_system).interval_cycles(counts)
        assert ooo < inorder

    def test_dcache_misses_cost_more_on_the_inorder_core(self, base_system, inorder_system):
        few = _counts(l1d_misses=10)
        many = _counts(l1d_misses=400)
        ooo_penalty = (
            make_core_model(base_system).interval_cycles(many)
            - make_core_model(base_system).interval_cycles(few)
        )
        inorder_penalty = (
            make_core_model(inorder_system).interval_cycles(many)
            - make_core_model(inorder_system).interval_cycles(few)
        )
        assert inorder_penalty > ooo_penalty

    def test_icache_misses_are_exposed_on_both_cores(self, base_system, inorder_system):
        few = _counts(l1i_misses=0)
        many = _counts(l1i_misses=300)
        for system in (base_system, inorder_system):
            model = make_core_model(system)
            assert model.interval_cycles(many) > model.interval_cycles(few)

    def test_icache_miss_relative_impact_is_larger_on_ooo(self, base_system, inorder_system):
        # Section 4.2.2: i-cache miss latency is more exposed relative to the
        # total execution time on the out-of-order engine.
        few = _counts(l1i_misses=0)
        many = _counts(l1i_misses=300)
        ooo = make_core_model(base_system)
        inorder = make_core_model(inorder_system)
        ooo_relative = ooo.interval_cycles(many) / ooo.interval_cycles(few)
        inorder_relative = inorder.interval_cycles(many) / inorder.interval_cycles(few)
        assert ooo_relative > inorder_relative

    def test_memory_level_parallelism_hides_ooo_data_misses(self, base_system):
        model = make_core_model(base_system)
        low_mlp = _counts(l1d_misses=400, memory_level_parallelism=1.0)
        high_mlp = _counts(l1d_misses=400, memory_level_parallelism=4.0)
        assert model.interval_cycles(high_mlp) < model.interval_cycles(low_mlp)

    def test_mlp_is_capped_by_mshr_count(self, base_system):
        model = make_core_model(base_system)
        at_cap = _counts(l1d_misses=400, memory_level_parallelism=8.0)
        beyond_cap = _counts(l1d_misses=400, memory_level_parallelism=100.0)
        assert model.interval_cycles(at_cap) == pytest.approx(model.interval_cycles(beyond_cap))

    def test_branch_mispredictions_add_cycles(self, base_system):
        model = make_core_model(base_system)
        clean = _counts(branch_mispredicts=0)
        messy = _counts(branch_mispredicts=500)
        expected_penalty = 500 * base_system.core.branch_mispredict_penalty
        assert model.interval_cycles(messy) - model.interval_cycles(clean) == pytest.approx(
            expected_penalty
        )

    def test_memory_accesses_cost_more_than_l2_hits(self, base_system):
        model = make_core_model(base_system)
        l2_only = _counts(l1d_misses=100, l1d_memory_accesses=0)
        to_memory = _counts(l1d_misses=100, l1d_memory_accesses=100)
        assert model.interval_cycles(to_memory) > model.interval_cycles(l2_only)


class TestTimingParameters:
    def test_invalid_exposure_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreTimingParameters(ooo_dcache_exposure=1.5)

    def test_invalid_cpi_rejected(self):
        with pytest.raises(ConfigurationError):
            CoreTimingParameters(ooo_base_cpi=0.0)

    def test_custom_timing_changes_cycles(self, base_system):
        fast = make_core_model(base_system, CoreTimingParameters(ooo_base_cpi=0.3))
        slow = make_core_model(base_system, CoreTimingParameters(ooo_base_cpi=0.9))
        counts = _counts()
        assert fast.interval_cycles(counts) < slow.interval_cycles(counts)
