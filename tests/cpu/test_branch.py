"""Tests for the bimodal branch predictor."""

import pytest

from repro.common.errors import ConfigurationError
from repro.cpu.branch import BimodalBranchPredictor


def test_learns_an_always_taken_branch():
    predictor = BimodalBranchPredictor()
    mispredicts = [predictor.predict_and_update(0x400, True) for _ in range(20)]
    # The counter starts weakly-taken, so an always-taken branch never mispredicts.
    assert not any(mispredicts)


def test_learns_an_always_not_taken_branch_after_warmup():
    predictor = BimodalBranchPredictor()
    outcomes = [predictor.predict_and_update(0x500, False) for _ in range(20)]
    assert outcomes[0] is True  # initial weakly-taken counter mispredicts once
    assert not any(outcomes[5:])


def test_alternating_branch_mispredicts_often():
    predictor = BimodalBranchPredictor()
    mispredicts = sum(
        predictor.predict_and_update(0x600, taken)
        for taken in [bool(i % 2) for i in range(100)]
    )
    assert mispredicts > 30


def test_biased_branch_mispredicts_rarely():
    predictor = BimodalBranchPredictor()
    pattern = ([True] * 9 + [False]) * 20
    mispredicts = sum(predictor.predict_and_update(0x700, taken) for taken in pattern)
    assert mispredicts / len(pattern) < 0.2


def test_distinct_branches_use_distinct_counters():
    predictor = BimodalBranchPredictor(table_entries=1024)
    for _ in range(10):
        predictor.predict_and_update(0x100, True)
        predictor.predict_and_update(0x200, False)
    assert not predictor.predict_and_update(0x100, True)
    assert not predictor.predict_and_update(0x200, False)


def test_misprediction_ratio_and_reset():
    predictor = BimodalBranchPredictor()
    predictor.predict_and_update(0x100, False)
    assert predictor.predictions == 1
    assert predictor.misprediction_ratio == 1.0
    predictor.reset()
    assert predictor.predictions == 0
    assert predictor.misprediction_ratio == 0.0


def test_table_size_must_be_power_of_two():
    with pytest.raises(ConfigurationError):
        BimodalBranchPredictor(table_entries=1000)
