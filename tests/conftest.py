"""Shared fixtures for the test suite.

The fixtures favour small geometries and short traces so the whole suite
stays fast; the benchmarks (not the tests) exercise paper-scale runs.
"""

from __future__ import annotations

import pytest

from repro.common.config import CacheGeometry, CoreConfig, CoreKind, SystemConfig
from repro.common.units import KIB
from repro.sim.simulator import Simulator
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.profiles import get_profile


@pytest.fixture(autouse=True)
def _reset_process_trace_cache():
    """Keep the process-level on-disk trace memo from leaking between tests.

    ``build_context``/``SweepRunner(trace_cache=...)`` install a
    process-global trace cache; a later test would otherwise silently write
    trace files into an earlier test's (possibly deleted) tmp directory.
    """
    yield
    from repro.sim.runner import set_trace_cache

    set_trace_cache(None)


@pytest.fixture
def small_geometry() -> CacheGeometry:
    """A 4 KiB 2-way cache with 1 KiB subarrays (small but realistic)."""
    return CacheGeometry(
        capacity_bytes=4 * KIB, associativity=2, block_bytes=32, subarray_bytes=KIB
    )


@pytest.fixture
def base_l1_geometry() -> CacheGeometry:
    """The paper's base 32 KiB 2-way L1 geometry."""
    return CacheGeometry(capacity_bytes=32 * KIB, associativity=2)


@pytest.fixture
def four_way_geometry() -> CacheGeometry:
    """The 32 KiB 4-way geometry used by Table 1 and Figure 5."""
    return CacheGeometry(capacity_bytes=32 * KIB, associativity=4)


@pytest.fixture
def base_system() -> SystemConfig:
    """The Table 2 base system (out-of-order core, 32K 2-way L1s)."""
    return SystemConfig()


@pytest.fixture
def inorder_system() -> SystemConfig:
    """The in-order / blocking-d-cache variant used in Section 4.2."""
    return SystemConfig(core=CoreConfig(kind=CoreKind.IN_ORDER_BLOCKING))


@pytest.fixture
def simulator(base_system) -> Simulator:
    """A simulator for the base system."""
    return Simulator(base_system)


@pytest.fixture(scope="session")
def short_trace():
    """A short (8k instruction) gcc trace shared across tests in a session."""
    return WorkloadGenerator(get_profile("gcc")).generate(8_000)


@pytest.fixture(scope="session")
def tiny_trace():
    """A very short (3k instruction) ammp trace for fast end-to-end tests."""
    return WorkloadGenerator(get_profile("ammp")).generate(3_000)
