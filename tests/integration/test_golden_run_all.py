"""Golden-output grid: the evaluation JSON is pinned byte-for-byte.

``tests/data/golden_run_all.json`` is the committed ``run-all`` output for
a fixed smoke configuration, captured before the experiments were ported
onto declarative specs.  Both entry paths — the legacy figure registry
(``run-all``) and the spec orchestrator (``run-spec`` over every committed
spec) — must keep reproducing it byte-identically, serial and parallel.
"""

import os

import pytest

from repro.__main__ import main
from repro.experiments import builtin_spec_names, builtin_spec_path

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "data",
    "golden_run_all.json",
)

#: The exact flags the golden file was captured with.
GOLDEN_FLAGS = [
    "--no-cache", "--instructions", "2000", "--applications", "gcc,m88ksim",
]


@pytest.fixture(scope="module")
def golden():
    with open(GOLDEN_PATH, "rb") as handle:
        return handle.read()


@pytest.mark.parametrize("jobs", ["1", "2"])
def test_run_all_reproduces_the_golden_bytes(tmp_path, capsys, golden, jobs):
    output = tmp_path / f"rows-{jobs}.json"
    assert main(["run-all", "--jobs", jobs, *GOLDEN_FLAGS,
                 "--output", str(output)]) == 0
    assert output.read_bytes() == golden


def test_run_spec_over_committed_specs_reproduces_the_golden_bytes(
    tmp_path, capsys, golden
):
    paths = [builtin_spec_path(name) for name in builtin_spec_names()]
    output = tmp_path / "rows-spec.json"
    assert main(["run-spec", *paths, "--jobs", "1", *GOLDEN_FLAGS,
                 "--output", str(output)]) == 0
    assert output.read_bytes() == golden
