"""End-to-end integration tests exercising the public API as a user would."""

import pytest

from repro import (
    DynamicResizing,
    HybridSetsAndWays,
    L1Setup,
    SelectiveSets,
    SelectiveWays,
    Simulator,
    StaticResizing,
    SystemConfig,
    WorkloadGenerator,
    get_profile,
    profile_static,
    run_baseline,
)
from repro.sim.sweep import DCACHE


@pytest.fixture(scope="module")
def environment():
    system = SystemConfig()
    simulator = Simulator(system)
    trace = WorkloadGenerator(get_profile("m88ksim")).generate(10_000)
    baseline = run_baseline(simulator, trace, warmup_instructions=1_000)
    return system, simulator, trace, baseline


def test_quickstart_flow_reduces_energy_delay(environment):
    """The README quickstart: resize a small-working-set application's d-cache."""
    system, simulator, trace, baseline = environment
    organization = SelectiveSets(system.l1d)
    profile = profile_static(
        simulator, trace, organization, target=DCACHE,
        baseline=baseline, warmup_instructions=1_000,
    )
    assert profile.energy_delay_reduction() > 5.0
    assert profile.best_result.slowdown_vs(baseline) < 0.06


def test_all_three_organizations_run_end_to_end(environment):
    system, simulator, trace, baseline = environment
    reductions = {}
    for factory in (SelectiveWays, SelectiveSets, HybridSetsAndWays):
        organization = factory(system.l1d)
        profile = profile_static(
            simulator, trace, organization, target=DCACHE,
            baseline=baseline, warmup_instructions=1_000,
        )
        reductions[organization.name] = profile.energy_delay_reduction()
    # The hybrid's size spectrum is a superset of both, so it cannot do
    # meaningfully worse than either basic organization.
    assert reductions["hybrid"] >= (
        max(reductions["selective-ways"], reductions["selective-sets"]) - 1.0
    )


def test_energy_accounting_is_internally_consistent(environment):
    _, simulator, trace, baseline = environment
    parts = (
        baseline.energy.l1d + baseline.energy.l1i + baseline.energy.l2
        + baseline.energy.memory + baseline.energy.core
    )
    assert parts == pytest.approx(baseline.energy.total)
    fractions = sum(
        baseline.energy.fraction(name) for name in ("l1d", "l1i", "l2", "memory", "core")
    )
    assert fractions == pytest.approx(1.0)


def test_resizing_both_caches_is_roughly_additive(environment):
    system, simulator, trace, baseline = environment
    d_org = SelectiveSets(system.l1d)
    i_org = SelectiveSets(system.l1i)
    d_cfg = d_org.config_for_capacity(4 * 1024)
    i_cfg = i_org.config_for_capacity(8 * 1024)
    d_only = simulator.run(
        trace, d_setup=L1Setup(d_org, StaticResizing(d_cfg)), warmup_instructions=1_000
    )
    i_only = simulator.run(
        trace, i_setup=L1Setup(i_org, StaticResizing(i_cfg)), warmup_instructions=1_000
    )
    both = simulator.run(
        trace,
        d_setup=L1Setup(d_org, StaticResizing(d_cfg)),
        i_setup=L1Setup(i_org, StaticResizing(i_cfg)),
        warmup_instructions=1_000,
    )
    stacked = d_only.energy_delay_reduction(baseline) + i_only.energy_delay_reduction(baseline)
    assert both.energy_delay_reduction(baseline) == pytest.approx(stacked, abs=4.0)


def test_dynamic_strategy_runs_through_public_api(environment):
    system, simulator, trace, _ = environment
    organization = SelectiveSets(system.l1d)
    strategy = DynamicResizing(
        miss_bound=25.0, size_bound_bytes=2 * 1024, sense_interval_accesses=512,
    )
    result = simulator.run(
        trace, d_setup=L1Setup(organization, strategy), warmup_instructions=1_000
    )
    assert result.average_l1d_capacity <= result.full_l1d_capacity
    assert result.energy.total > 0
