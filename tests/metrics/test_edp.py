"""Tests for energy-delay helpers."""

import pytest

from repro.metrics.edp import (
    energy_delay_product,
    percent_reduction,
    relative_energy_delay,
    slowdown,
)


def test_energy_delay_product():
    assert energy_delay_product(10.0, 5.0) == pytest.approx(50.0)


def test_relative_energy_delay_below_one_means_improvement():
    relative = relative_energy_delay(
        energy=8.0, cycles=10.0, baseline_energy=10.0, baseline_cycles=10.0
    )
    assert relative == pytest.approx(0.8)


def test_relative_energy_delay_handles_zero_baseline():
    assert relative_energy_delay(1.0, 1.0, 0.0, 10.0) == 0.0


def test_percent_reduction():
    assert percent_reduction(80.0, 100.0) == pytest.approx(20.0)
    assert percent_reduction(110.0, 100.0) == pytest.approx(-10.0)
    assert percent_reduction(50.0, 0.0) == 0.0


def test_slowdown():
    assert slowdown(106.0, 100.0) == pytest.approx(0.06)
    assert slowdown(95.0, 100.0) == pytest.approx(-0.05)
    assert slowdown(10.0, 0.0) == 0.0


def test_reduction_and_relative_are_consistent():
    energy, cycles = 9.0, 11.0
    base_energy, base_cycles = 10.0, 10.0
    relative = relative_energy_delay(energy, cycles, base_energy, base_cycles)
    reduction = percent_reduction(
        energy_delay_product(energy, cycles), energy_delay_product(base_energy, base_cycles)
    )
    assert reduction == pytest.approx((1 - relative) * 100.0)
