"""Tests for interval activity counts."""

import pytest

from repro.metrics.counts import IntervalCounts


def test_defaults_are_zero():
    counts = IntervalCounts()
    assert counts.instructions == 0
    assert counts.l1d_miss_ratio == 0.0
    assert counts.l1i_miss_ratio == 0.0


def test_miss_ratios():
    counts = IntervalCounts(l1d_accesses=100, l1d_misses=5, l1i_accesses=50, l1i_misses=10)
    assert counts.l1d_miss_ratio == pytest.approx(0.05)
    assert counts.l1i_miss_ratio == pytest.approx(0.2)


def test_merge_accumulates_counts():
    first = IntervalCounts(instructions=100, l1d_accesses=40, l1d_misses=4, branches=10)
    second = IntervalCounts(instructions=200, l1d_accesses=80, l1d_misses=2, branches=30)
    first.merge(second)
    assert first.instructions == 300
    assert first.l1d_accesses == 120
    assert first.l1d_misses == 6
    assert first.branches == 40


def test_merge_weights_memory_level_parallelism_by_instructions():
    first = IntervalCounts(instructions=100, memory_level_parallelism=1.0)
    second = IntervalCounts(instructions=300, memory_level_parallelism=3.0)
    first.merge(second)
    assert first.memory_level_parallelism == pytest.approx(2.5)


def test_copy_is_independent():
    original = IntervalCounts(instructions=10, l1d_accesses=5, memory_level_parallelism=2.0)
    duplicate = original.copy()
    duplicate.instructions += 1
    assert original.instructions == 10
    assert duplicate.memory_level_parallelism == pytest.approx(2.0)
