"""Tests for the energy breakdown container."""

import pytest

from repro.metrics.breakdown import EnergyBreakdown


def test_total_sums_components():
    breakdown = EnergyBreakdown(l1d=1.0, l1i=2.0, l2=3.0, memory=4.0, core=5.0)
    assert breakdown.total == pytest.approx(15.0)


def test_fraction():
    breakdown = EnergyBreakdown(l1d=2.0, l1i=2.0, l2=1.0, memory=1.0, core=4.0)
    assert breakdown.fraction("l1d") == pytest.approx(0.2)
    assert breakdown.fraction("core") == pytest.approx(0.4)


def test_fraction_of_empty_breakdown_is_zero():
    assert EnergyBreakdown().fraction("l1d") == 0.0


def test_add_accumulates_in_place():
    total = EnergyBreakdown(l1d=1.0)
    total.add(EnergyBreakdown(l1d=2.0, core=3.0))
    assert total.l1d == pytest.approx(3.0)
    assert total.core == pytest.approx(3.0)


def test_scaled_returns_new_breakdown():
    breakdown = EnergyBreakdown(l1d=1.0, core=2.0)
    scaled = breakdown.scaled(2.0)
    assert scaled.l1d == pytest.approx(2.0)
    assert breakdown.l1d == pytest.approx(1.0)


def test_as_dict_includes_total():
    exported = EnergyBreakdown(l1d=1.0, l1i=1.0).as_dict()
    assert exported["total"] == pytest.approx(2.0)
    assert set(exported) == {"l1d", "l1i", "l2", "memory", "core", "total"}
