"""Property tests pinning the packed cache kernel (hypothesis).

Three layers of defence for ``access_packed``:

* a *model check*: the kernel must agree, access by access, with an
  independent ~30-line LRU write-back/write-allocate model implemented here
  with none of the kernel's packing tricks;
* a *twin check*: a cache driven through the legacy object API and an
  identically configured cache driven through ``access_packed`` must report
  the same outcomes and counters over random access/invalidate/flush
  interleavings — the guard that keeps the wrapper and the kernel from
  drifting if they are ever implemented separately again;
* the same twin check for :class:`ResizableCache` over random
  access/resize/flush interleavings, including the resize flush rules.
"""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache, unpack_access_result
from repro.common.config import CacheGeometry
from repro.common.units import KIB
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.resizable_cache import ResizableCache
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays

_GEOMETRIES = st.sampled_from(
    [
        CacheGeometry(2 * KIB, 1, subarray_bytes=KIB),
        CacheGeometry(4 * KIB, 2, subarray_bytes=KIB),
        CacheGeometry(8 * KIB, 4, subarray_bytes=KIB),
    ]
)

_ADDRESSES = st.integers(min_value=0, max_value=0xFFFF)

_ACCESSES = st.lists(st.tuples(_ADDRESSES, st.booleans()), min_size=1, max_size=300)

#: access / invalidate / flush interleavings for the fixed cache.
_CACHE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("access"), _ADDRESSES, st.booleans()),
        st.tuples(st.just("invalidate"), _ADDRESSES),
        st.just(("flush",)),
    ),
    min_size=1,
    max_size=300,
)


class _ModelCache:
    """Straight-line LRU write-back/write-allocate model (no packing)."""

    def __init__(self, geometry: CacheGeometry) -> None:
        self.block = geometry.block_bytes
        self.sets = geometry.num_sets
        self.ways = geometry.associativity
        self.contents = [dict() for _ in range(self.sets)]  # tag -> [address, dirty]

    def access(self, address: int, is_write: bool):
        """Returns (hit, writeback_address_or_None)."""
        block_address = address - (address % self.block)
        index = (address // self.block) % self.sets
        tag = (address // self.block) // self.sets
        resident = self.contents[index]
        if tag in resident:
            entry = resident.pop(tag)  # refresh LRU order
            entry[1] = entry[1] or is_write
            resident[tag] = entry
            return True, None
        writeback = None
        if len(resident) >= self.ways:
            victim_tag = next(iter(resident))
            victim = resident.pop(victim_tag)
            if victim[1]:
                writeback = victim[0]
        resident[tag] = [block_address, is_write]
        return False, writeback


@given(geometry=_GEOMETRIES, accesses=_ACCESSES)
@settings(max_examples=60, deadline=None)
def test_kernel_agrees_with_independent_model(geometry, accesses):
    cache = Cache(geometry)
    model = _ModelCache(geometry)
    for address, is_write in accesses:
        result = unpack_access_result(cache.access_packed(address, is_write))
        model_hit, model_writeback = model.access(address, is_write)
        assert result.hit == model_hit
        assert result.writeback_address == model_writeback
        assert result.filled == (not model_hit)
    model_resident = sum(len(resident) for resident in model.contents)
    assert cache.resident_blocks() == model_resident


@given(geometry=_GEOMETRIES, operations=_CACHE_OPS)
@settings(max_examples=60, deadline=None)
def test_cache_packed_kernel_equals_object_api(geometry, operations):
    object_cache = Cache(geometry)
    packed_cache = Cache(geometry)
    for operation in operations:
        if operation[0] == "access":
            _, address, is_write = operation
            expected = object_cache.access(address, is_write)
            got = unpack_access_result(packed_cache.access_packed(address, is_write))
            assert got.hit == expected.hit
            assert got.filled == expected.filled
            assert got.writeback_address == expected.writeback_address
        elif operation[0] == "invalidate":
            assert object_cache.invalidate(operation[1]) == (
                packed_cache.invalidate(operation[1])
            )
        else:
            assert object_cache.flush_all() == packed_cache.flush_all()
    assert object_cache.stats.as_dict() == packed_cache.stats.as_dict()
    assert object_cache.resident_blocks() == packed_cache.resident_blocks()


_ORGANIZATIONS = st.sampled_from([SelectiveSets, SelectiveWays, HybridSetsAndWays])

_RESIZABLE_GEOMETRY = CacheGeometry(8 * KIB, 4, subarray_bytes=KIB)

#: access / resize / flush interleavings for the resizable cache; resizes
#: pick an offered configuration by index so every draw is valid for every
#: organization.
_RESIZABLE_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("access"), _ADDRESSES, st.booleans()),
        st.tuples(st.just("resize"), st.integers(min_value=0, max_value=30)),
        st.just(("flush",)),
    ),
    min_size=1,
    max_size=300,
)


@given(make_organization=_ORGANIZATIONS, operations=_RESIZABLE_OPS)
@settings(max_examples=60, deadline=None)
def test_resizable_packed_kernel_equals_object_api(make_organization, operations):
    def build():
        return ResizableCache(_RESIZABLE_GEOMETRY, make_organization(_RESIZABLE_GEOMETRY))

    object_cache, packed_cache = build(), build()
    configs = object_cache.organization.configs
    total_writes = 0
    for operation in operations:
        if operation[0] == "access":
            _, address, is_write = operation
            total_writes += 1 if is_write else 0
            expected = object_cache.access(address, is_write)
            got = unpack_access_result(packed_cache.access_packed(address, is_write))
            assert got.hit == expected.hit
            assert got.filled == expected.filled
            assert got.writeback_address == expected.writeback_address
        elif operation[0] == "resize":
            target = configs[operation[1] % len(configs)]
            expected = object_cache.resize_to(target)
            got = packed_cache.resize_to(target)
            assert got.writeback_addresses == expected.writeback_addresses
            assert got.discarded_blocks == expected.discarded_blocks
            assert got.current == expected.current
        else:
            assert object_cache.flush_all() == packed_cache.flush_all()
        # Invariants that hold regardless of the interleaving drawn.
        config = packed_cache.current_config
        assert packed_cache.resident_blocks() <= config.ways * config.sets
        assert packed_cache.stats.writebacks <= total_writes
    assert object_cache.stats.as_dict() == packed_cache.stats.as_dict()
    assert object_cache.current_config == packed_cache.current_config
    assert object_cache.resident_blocks() == packed_cache.resident_blocks()


@given(make_organization=_ORGANIZATIONS, operations=_RESIZABLE_OPS)
@settings(max_examples=40, deadline=None)
def test_resizable_at_full_size_matches_fixed_cache(make_organization, operations):
    """Until the first resize, a resizable cache is just a cache."""
    fixed = Cache(_RESIZABLE_GEOMETRY)
    resizable = ResizableCache(_RESIZABLE_GEOMETRY, make_organization(_RESIZABLE_GEOMETRY))
    for operation in operations:
        if operation[0] == "access":
            _, address, is_write = operation
            assert fixed.access_packed(address, is_write) == (
                resizable.access_packed(address, is_write)
            )
        elif operation[0] == "flush":
            assert fixed.flush_all() == resizable.flush_all()
        # resizes are skipped: this property is about the full-size config
    assert fixed.stats.as_dict() == resizable.stats.as_dict()
