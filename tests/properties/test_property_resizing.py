"""Property-based tests for resizing organizations and the resizable cache."""

from hypothesis import given, settings, strategies as st

from repro.common.config import CacheGeometry
from repro.common.units import KIB
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.resizable_cache import ResizableCache
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays

_ASSOCIATIVITIES = st.sampled_from([1, 2, 4, 8, 16])
_ORG_FACTORIES = st.sampled_from([SelectiveWays, SelectiveSets, HybridSetsAndWays])


@given(associativity=_ASSOCIATIVITIES, factory=_ORG_FACTORIES)
@settings(max_examples=40, deadline=None)
def test_every_offered_config_fits_the_geometry(associativity, factory):
    geometry = CacheGeometry(32 * KIB, associativity)
    organization = factory(geometry)
    for config in organization.configs:
        assert 1 <= config.ways <= geometry.associativity
        assert geometry.min_sets <= config.sets <= geometry.num_sets
        assert config.capacity_bytes == config.ways * config.sets * geometry.block_bytes
        assert config.capacity_bytes <= geometry.capacity_bytes


@given(associativity=_ASSOCIATIVITIES, factory=_ORG_FACTORIES)
@settings(max_examples=40, deadline=None)
def test_ladder_walks_are_closed_and_monotonic(associativity, factory):
    organization = factory(CacheGeometry(32 * KIB, associativity))
    config = organization.full_config
    visited = [config]
    while True:
        smaller = organization.next_smaller(config)
        if smaller is None:
            break
        assert smaller.capacity_bytes < config.capacity_bytes
        assert organization.contains(smaller)
        config = smaller
        visited.append(config)
    assert visited == organization.ladder()


_RESIZE_GEOMETRY = CacheGeometry(8 * KIB, 4, subarray_bytes=KIB)
_ADDRESSES = st.lists(st.integers(min_value=0, max_value=0x3FFF), min_size=10, max_size=200)
_RESIZE_CHOICES = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=6)


@given(addresses=_ADDRESSES, resize_choices=_RESIZE_CHOICES, factory=_ORG_FACTORIES)
@settings(max_examples=60, deadline=None)
def test_resizable_cache_never_exceeds_its_enabled_capacity(addresses, resize_choices, factory):
    organization = factory(_RESIZE_GEOMETRY)
    cache = ResizableCache(_RESIZE_GEOMETRY, organization)
    ladder = organization.ladder()
    choice_index = 0
    for position, address in enumerate(addresses):
        cache.access(address, is_write=(address % 3 == 0))
        if position % 37 == 36 and choice_index < len(resize_choices):
            target = ladder[resize_choices[choice_index] % len(ladder)]
            cache.resize_to(target)
            choice_index += 1
        enabled_blocks = cache.current_capacity_bytes // _RESIZE_GEOMETRY.block_bytes
        assert cache.resident_blocks() <= enabled_blocks


@given(addresses=_ADDRESSES, resize_choices=_RESIZE_CHOICES, factory=_ORG_FACTORIES)
@settings(max_examples=60, deadline=None)
def test_resizing_preserves_correct_lookups(addresses, resize_choices, factory):
    """After any resize sequence, a just-accessed address must hit on re-access."""
    organization = factory(_RESIZE_GEOMETRY)
    cache = ResizableCache(_RESIZE_GEOMETRY, organization)
    ladder = organization.ladder()
    for address, choice in zip(addresses, resize_choices * len(addresses)):
        cache.resize_to(ladder[choice % len(ladder)])
        cache.access(address)
        assert cache.access(address).hit


@given(resize_choices=_RESIZE_CHOICES, factory=_ORG_FACTORIES)
@settings(max_examples=40, deadline=None)
def test_subarray_state_tracks_current_config(resize_choices, factory):
    organization = factory(_RESIZE_GEOMETRY)
    cache = ResizableCache(_RESIZE_GEOMETRY, organization)
    ladder = organization.ladder()
    for choice in resize_choices:
        target = ladder[choice % len(ladder)]
        cache.resize_to(target)
        state = cache.subarray_state
        assert state.enabled_bytes == target.capacity_bytes
        assert 1 <= state.enabled_subarrays <= state.total_subarrays
