"""Property-based cross-engine equivalence for the replay engines.

Hypothesis drives randomly drawn workload mixes, trace lengths (including
odd-length final intervals), warmup boundaries and L1 setups through both
the :class:`ReferenceEngine` and the :class:`ColumnarEngine`, and asserts
byte-identical ``SimulationResult.to_dict()`` payloads.  Any divergence —
a reordered cache access, a dropped flush, a warmup off-by-one — fails with
a shrunken minimal example.
"""

from hypothesis import given, settings, strategies as st

from repro.common.config import SystemConfig
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays
from repro.resizing.static_strategy import StaticResizing
from repro.sim.runner import TraceSpec
from repro.sim.simulator import L1Setup, Simulator

_SYSTEM = SystemConfig()

#: A representative spread of the paper's applications: loop-heavy, large
#: working set, conflict-prone, branchy.
_APPLICATIONS = st.sampled_from(["gcc", "compress", "swim", "vortex"])

#: Trace lengths straddle several interval boundaries and deliberately
#: include values that leave an odd-length final interval.
_LENGTHS = st.integers(min_value=1_001, max_value=5_000)

_INTERVALS = st.sampled_from([97, 250, 1_024, 1_500])

_ORGANIZATIONS = st.sampled_from([SelectiveWays, SelectiveSets, HybridSetsAndWays])

_SETUP_KINDS = st.sampled_from(["fixed", "static-d", "static-i", "dynamic-d", "dynamic-i"])


def _make_setups(kind, factory):
    """Fresh, stateful setup objects for one simulation run."""
    if kind == "fixed":
        return None, None
    target_geometry = _SYSTEM.l1d if kind.endswith("-d") else _SYSTEM.l1i
    organization = factory(target_geometry)
    if kind.startswith("static"):
        ladder = organization.ladder()
        config = ladder[min(1, len(ladder) - 1)]
        setup = L1Setup(organization, StaticResizing(config))
    else:
        setup = L1Setup(
            organization,
            DynamicResizing(
                miss_bound=0.02, size_bound_bytes=8 * 1024, sense_interval_accesses=256
            ),
        )
    if kind.endswith("-d"):
        return setup, None
    return None, setup


@given(
    application=_APPLICATIONS,
    length=_LENGTHS,
    interval=_INTERVALS,
    warmup_fraction=st.sampled_from([0.0, 0.13, 0.5]),
    kind=_SETUP_KINDS,
    factory=_ORGANIZATIONS,
)
@settings(max_examples=20, deadline=None)
def test_engines_agree_on_random_runs(
    application, length, interval, warmup_fraction, kind, factory
):
    trace = TraceSpec(application, length).materialize()
    warmup = int(length * warmup_fraction)
    payloads = {}
    for engine in ("reference", "columnar"):
        d_setup, i_setup = _make_setups(kind, factory)
        payloads[engine] = Simulator(_SYSTEM, engine=engine).run(
            trace,
            d_setup=d_setup,
            i_setup=i_setup,
            interval_instructions=interval,
            warmup_instructions=warmup,
        ).to_dict()
    assert payloads["reference"] == payloads["columnar"]
