"""Property-based fused-vs-per-config equivalence for ladder replay.

Hypothesis drives randomly drawn workload mixes, trace lengths (including
odd-length final intervals), warmup boundaries, resizing targets and rung
mixes (static ladders, dynamic rungs, a fixed baseline rung, heterogeneous
both-sides rungs) through :func:`repro.sim.ladder.run_fused` and asserts
byte-identical ``SimulationResult.to_dict()`` payloads against standalone
:meth:`Simulator.run` executions of every rung.  Any divergence — a
mis-shared branch outcome, a pilot-side op wrongly dropped, an interval
closed in the wrong order — fails with a shrunken minimal example.
"""

from hypothesis import given, settings, strategies as st

from repro.common.config import SystemConfig
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays
from repro.resizing.static_strategy import StaticResizing
from repro.sim.ladder import run_fused
from repro.sim.runner import TraceSpec
from repro.sim.simulator import L1Setup, Simulator

_SYSTEM = SystemConfig()

_APPLICATIONS = st.sampled_from(["gcc", "compress", "swim", "vortex"])

#: Lengths straddle several interval boundaries and deliberately include
#: values that leave an odd-length final interval.
_LENGTHS = st.integers(min_value=1_001, max_value=4_000)

_INTERVALS = st.sampled_from([97, 250, 1_024, 1_500])

_ORGANIZATIONS = st.sampled_from([SelectiveWays, SelectiveSets, HybridSetsAndWays])

#: Ladder shapes: which side resizes (exercising both pilot paths), whether
#: a fixed baseline rung rides along, and whether a rung resizes
#: dynamically.  "both" forces the heterogeneous general path.
_TARGETS = st.sampled_from(["d", "i", "both"])
_WITH_BASELINE = st.booleans()
_WITH_DYNAMIC = st.booleans()


def _build_setups(factory, target, with_baseline, with_dynamic):
    """Fresh, stateful setup objects for one ladder (standalone or fused)."""

    def one_side(side):
        geometry = _SYSTEM.l1d if side == "d" else _SYSTEM.l1i
        organization = factory(geometry)
        ladder = organization.ladder()
        rungs = [
            L1Setup(factory(geometry), StaticResizing(config))
            for config in (ladder[0], ladder[min(1, len(ladder) - 1)])
        ]
        if with_dynamic:
            rungs.append(
                L1Setup(
                    factory(geometry),
                    DynamicResizing(
                        miss_bound=0.02,
                        size_bound_bytes=8 * 1024,
                        sense_interval_accesses=256,
                    ),
                )
            )
        return rungs

    if target == "both":
        setups = [
            (d_setup, i_setup)
            for d_setup, i_setup in zip(one_side("d"), one_side("i"))
        ]
    elif target == "d":
        setups = [(setup, None) for setup in one_side("d")]
    else:
        setups = [(None, setup) for setup in one_side("i")]
    if with_baseline:
        setups.insert(0, (None, None))
    return setups


@given(
    application=_APPLICATIONS,
    length=_LENGTHS,
    interval=_INTERVALS,
    warmup_fraction=st.sampled_from([0.0, 0.13, 0.5]),
    factory=_ORGANIZATIONS,
    target=_TARGETS,
    with_baseline=_WITH_BASELINE,
    with_dynamic=_WITH_DYNAMIC,
)
@settings(max_examples=15, deadline=None)
def test_fused_ladder_agrees_with_standalone_runs(
    application, length, interval, warmup_fraction, factory, target,
    with_baseline, with_dynamic,
):
    trace = TraceSpec(application, length).materialize()
    warmup = int(length * warmup_fraction)

    standalone = [
        Simulator(_SYSTEM).run(
            trace,
            d_setup=d_setup,
            i_setup=i_setup,
            interval_instructions=interval,
            warmup_instructions=warmup,
        ).to_dict()
        for d_setup, i_setup in _build_setups(factory, target, with_baseline, with_dynamic)
    ]
    fused = [
        result.to_dict()
        for result in run_fused(
            Simulator(_SYSTEM),
            trace,
            _build_setups(factory, target, with_baseline, with_dynamic),
            interval_instructions=interval,
            warmup_instructions=warmup,
        )
    ]
    assert fused == standalone
