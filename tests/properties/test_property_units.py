"""Property-based tests for units, address mapping and the RNG."""

from hypothesis import given, settings, strategies as st

from repro.common.rng import DeterministicRng
from repro.common.units import format_size, is_power_of_two, log2_int, parse_size
from repro.mem.address import AddressMapper, block_address


@given(st.integers(min_value=0, max_value=2**40))
def test_format_parse_roundtrip(num_bytes):
    assert parse_size(format_size(num_bytes)) == num_bytes


@given(st.integers(min_value=0, max_value=60))
def test_log2_inverts_shift(exponent):
    assert log2_int(1 << exponent) == exponent
    assert is_power_of_two(1 << exponent)


@given(
    address=st.integers(min_value=0, max_value=2**32 - 1),
    block_exp=st.integers(min_value=4, max_value=7),
    sets_exp=st.integers(min_value=3, max_value=10),
)
@settings(max_examples=200)
def test_address_split_roundtrip(address, block_exp, sets_exp):
    mapper = AddressMapper(1 << block_exp, 1 << sets_exp)
    tag, index = mapper.split(address)
    assert 0 <= index < (1 << sets_exp)
    assert mapper.rebuild_address(tag, index) == block_address(address, 1 << block_exp)


@given(
    address=st.integers(min_value=0, max_value=2**32 - 1),
    block_exp=st.integers(min_value=4, max_value=7),
    sets_exp=st.integers(min_value=4, max_value=10),
)
@settings(max_examples=200)
def test_halving_sets_preserves_low_indices(address, block_exp, sets_exp):
    """The selective-sets downsizing rule: blocks in surviving sets keep their index."""
    full = AddressMapper(1 << block_exp, 1 << sets_exp)
    half = AddressMapper(1 << block_exp, 1 << (sets_exp - 1))
    index = full.set_index(address)
    if index < (1 << (sets_exp - 1)):
        assert half.set_index(address) == index


@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=50)
def test_rng_reproducibility(seed):
    first = DeterministicRng(seed)
    second = DeterministicRng(seed)
    assert [first.randint(0, 1000) for _ in range(20)] == [
        second.randint(0, 1000) for _ in range(20)
    ]
