"""Property-based tests for the cache substrate (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache
from repro.common.config import CacheGeometry
from repro.common.units import KIB

_GEOMETRIES = st.sampled_from(
    [
        CacheGeometry(2 * KIB, 1, subarray_bytes=KIB),
        CacheGeometry(4 * KIB, 2, subarray_bytes=KIB),
        CacheGeometry(8 * KIB, 4, subarray_bytes=KIB),
    ]
)

_ACCESSES = st.lists(
    st.tuples(st.integers(min_value=0, max_value=0xFFFF), st.booleans()),
    min_size=1,
    max_size=400,
)


@given(geometry=_GEOMETRIES, accesses=_ACCESSES)
@settings(max_examples=60, deadline=None)
def test_occupancy_never_exceeds_capacity(geometry, accesses):
    cache = Cache(geometry)
    block_capacity = geometry.capacity_bytes // geometry.block_bytes
    for address, is_write in accesses:
        cache.access(address, is_write)
        assert cache.resident_blocks() <= block_capacity


@given(geometry=_GEOMETRIES, accesses=_ACCESSES)
@settings(max_examples=60, deadline=None)
def test_hits_plus_misses_equals_accesses(geometry, accesses):
    cache = Cache(geometry)
    for address, is_write in accesses:
        cache.access(address, is_write)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(accesses)
    assert stats.reads + stats.writes == stats.accesses


@given(geometry=_GEOMETRIES, accesses=_ACCESSES)
@settings(max_examples=60, deadline=None)
def test_repeating_the_same_address_twice_in_a_row_always_hits(geometry, accesses):
    cache = Cache(geometry)
    for address, is_write in accesses:
        cache.access(address, is_write)
        assert cache.access(address, False).hit


@given(geometry=_GEOMETRIES, accesses=_ACCESSES)
@settings(max_examples=60, deadline=None)
def test_flush_returns_only_blocks_that_were_written(geometry, accesses):
    cache = Cache(geometry)
    written_blocks = set()
    for address, is_write in accesses:
        cache.access(address, is_write)
        if is_write:
            written_blocks.add(address & ~(geometry.block_bytes - 1))
    for dirty_address in cache.flush_all():
        assert dirty_address in written_blocks


@given(accesses=_ACCESSES)
@settings(max_examples=40, deadline=None)
def test_larger_caches_never_miss_more(accesses):
    small = Cache(CacheGeometry(2 * KIB, 2, subarray_bytes=KIB))
    large = Cache(CacheGeometry(8 * KIB, 2, subarray_bytes=KIB))
    for address, is_write in accesses:
        small.access(address, is_write)
        large.access(address, is_write)
    assert large.stats.misses <= small.stats.misses
