"""Property-based equivalence for the vectorized trace pre-decode.

Hypothesis draws applications, trace lengths (odd ones included), fetch
block sizes and interval partitions, and asserts two invariants of
:mod:`repro.sim.predecode`:

* the NumPy builder and the stdlib builder produce bit-identical
  :class:`~repro.sim.predecode.DecodedTrace` payloads (skipped when NumPy
  is not importable — the CI matrix runs both legs);
* the whole-trace decode equals the concatenation of per-interval
  :func:`repro.sim.engine.decode_interval` outputs, ops and totals alike,
  for any partition — the contract that lets engines slice intervals out
  of one precomputed stream.
"""

from hypothesis import given, settings, strategies as st

from repro.cpu.branch import BimodalBranchPredictor
from repro.sim import predecode
from repro.sim.engine import decode_interval
from repro.sim.runner import TraceSpec
from repro.sim.vector import numpy_or_none

import pytest

_APPLICATIONS = st.sampled_from(["gcc", "compress", "swim", "vortex"])
_LENGTHS = st.integers(min_value=257, max_value=2_500)
_BLOCK_BYTES = st.sampled_from([16, 32, 64])
_INTERVALS = st.sampled_from([97, 250, 1_024])


def _fields(decoded):
    return (
        decoded.n,
        decoded.block_mask,
        decoded.stream,
        decoded.op_prefix,
        decoded.branch_prefix,
        decoded.mispredict_prefix,
        decoded.memref_prefix,
        decoded.store_prefix,
    )


@pytest.mark.skipif(numpy_or_none() is None, reason="NumPy unavailable")
@settings(max_examples=25, deadline=None)
@given(application=_APPLICATIONS, length=_LENGTHS, block_bytes=_BLOCK_BYTES)
def test_numpy_decode_equals_scalar_decode(application, length, block_bytes):
    trace = TraceSpec(application, length).materialize()
    mask = ~(block_bytes - 1)
    vectorized = predecode._build_numpy(trace, mask, numpy_or_none())
    scalar = predecode._build_scalar(trace, mask)
    assert _fields(vectorized) == _fields(scalar)


@settings(max_examples=25, deadline=None)
@given(
    application=_APPLICATIONS,
    length=_LENGTHS,
    block_bytes=_BLOCK_BYTES,
    interval=_INTERVALS,
)
def test_decode_equals_interval_concatenation(application, length, block_bytes, interval):
    trace = TraceSpec(application, length).materialize()
    mask = ~(block_bytes - 1)
    decoded = predecode.build_decoded(trace, mask)
    assert decoded is not None

    predict = BimodalBranchPredictor().predict_and_update
    pc_col, addr_col, flag_col = trace.columns()
    last_fetch_block = -1
    start = 0
    while start < length:
        stop = min(start + interval, length)
        ops, last_fetch_block, branches, mispredicts, memrefs, stores = (
            decode_interval(
                pc_col[start:stop], flag_col[start:stop], addr_col[start:stop],
                stop - start, mask, last_fetch_block, predict,
            )
        )
        assert decoded.interval_ops(start, stop) == ops
        assert decoded.branch_prefix[stop] - decoded.branch_prefix[start] == branches
        assert (
            decoded.mispredict_prefix[stop] - decoded.mispredict_prefix[start]
            == mispredicts
        )
        assert decoded.memref_prefix[stop] - decoded.memref_prefix[start] == memrefs
        assert decoded.store_prefix[stop] - decoded.store_prefix[start] == stores
        start = stop
