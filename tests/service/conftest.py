"""Fixtures for the sweep-service tests.

The heart is :class:`ServiceHarness`: it boots a real
:class:`~repro.service.server.SweepService` — real sockets, real asyncio
loop — in a background thread, and exposes tiny synchronous helpers
(``get``/``post``) the tests call from the main thread with ``urllib``.
Everything runs against a per-test cache directory and an OS-assigned
port, so tests are hermetic and parallel-safe.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

import pytest

from repro.service import ServeConfig, SweepService


class ServiceHarness:
    """One running service plus synchronous HTTP helpers for tests."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.service = SweepService(config)
        self.exit_code: Optional[int] = None
        self.loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        deadline = time.monotonic() + 10
        while self.service.bound_port is None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert self.service.bound_port is not None, "server failed to bind"

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self.loop = loop
        asyncio.set_event_loop(loop)
        try:
            self.exit_code = loop.run_until_complete(self.service.serve_forever())
        finally:
            loop.close()

    # ------------------------------------------------------------- HTTP
    @property
    def base_url(self) -> str:
        return f"http://127.0.0.1:{self.service.bound_port}"

    def request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
        timeout: float = 60.0,
    ) -> Tuple[int, bytes, Dict[str, str]]:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers or {}
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, response.read(), dict(response.headers)
        except urllib.error.HTTPError as error:
            return error.code, error.read(), dict(error.headers)

    def get(self, path: str, **kwargs) -> Tuple[int, bytes, Dict[str, str]]:
        return self.request("GET", path, **kwargs)

    def post(self, path: str, body: Dict[str, Any], **kwargs) -> Tuple[int, bytes, Dict[str, str]]:
        return self.request("POST", path, body=body, **kwargs)

    def submit_job(self, payload: Dict[str, Any], tenant: Optional[str] = None):
        headers = {} if tenant is None else {"X-Tenant": tenant}
        status, body, response_headers = self.post("/jobs", payload, headers=headers)
        return status, body, response_headers

    def wait_done(self, handle: str, timeout: float = 60.0) -> Dict[str, Any]:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body, _ = self.get(f"/jobs/{handle}?wait=5")
            assert status == 200, body
            document = json.loads(body)
            if document["state"] in ("done", "failed"):
                return document
        raise AssertionError(f"handle {handle} did not settle within {timeout}s")

    def metrics(self) -> Dict[str, float]:
        status, body, _ = self.get("/metrics")
        assert status == 200
        parsed: Dict[str, float] = {}
        for line in body.decode().splitlines():
            if not line.strip():
                continue
            name, value = line.rsplit(" ", 1)
            parsed[name] = float(value)
        return parsed

    # ------------------------------------------------------------ control
    def run_on_loop(self, coroutine, timeout: float = 30.0):
        assert self.loop is not None
        return asyncio.run_coroutine_threadsafe(coroutine, self.loop).result(timeout)

    def call_on_loop(self, fn, timeout: float = 10.0):
        assert self.loop is not None
        done = threading.Event()
        box: Dict[str, Any] = {}

        def apply() -> None:
            try:
                box["value"] = fn()
            except BaseException as exc:  # noqa: BLE001 - ferried to the test
                box["error"] = exc
            done.set()

        self.loop.call_soon_threadsafe(apply)
        assert done.wait(timeout), "loop callback never ran"
        if "error" in box:
            raise box["error"]
        return box.get("value")

    def shutdown(self, timeout: float = 30.0) -> int:
        if self.exit_code is None and self.loop is not None and self.loop.is_running():
            self.run_on_loop(self.service.shutdown(), timeout=timeout)
        self._thread.join(timeout)
        assert not self._thread.is_alive(), "server thread failed to stop"
        assert self.exit_code is not None
        return self.exit_code


@pytest.fixture
def service_factory(tmp_path):
    """Build (and reliably tear down) ServiceHarness instances."""
    harnesses = []
    counter = [0]

    def build(**overrides) -> ServiceHarness:
        counter[0] += 1
        defaults = dict(
            port=0,
            cache_dir=str(tmp_path / f"cache-{overrides.pop('cache_name', counter[0])}"),
            instructions=2_000,
            drain_grace=5.0,
            queue_limit=overrides.pop("queue_limit", 8),
        )
        defaults.update(overrides)
        harness = ServiceHarness(ServeConfig(**defaults))
        harnesses.append(harness)
        return harness

    yield build
    for harness in harnesses:
        if harness.exit_code is None:
            try:
                harness.shutdown()
            except Exception:  # noqa: BLE001 - teardown must not mask the test
                pass
