"""Integration tests: a real SweepService on a real socket.

Each test boots the server via the ``service_factory`` fixture (see
``conftest.py``), talks to it over HTTP with ``urllib``, and asserts the
ISSUE's acceptance properties: bounded admission with clean 429s, duplicate
submissions sharing one execution with byte-identical responses, graceful
drain with exit code 0, and crash-safe restart that never re-simulates
completed work.
"""

import concurrent.futures
import json
import time
import urllib.request


def job_payload(**overrides):
    """A tiny single-job payload; vary a field to make distinct work."""
    payload = {"trace": {"application": "gcc", "n_instructions": 1_500}}
    payload.update(overrides)
    return payload


class TestHealthAndErrors:
    def test_health_ready_and_metrics(self, service_factory):
        harness = service_factory()
        status, body, _ = harness.get("/healthz")
        assert status == 200 and json.loads(body) == {"status": "ok"}
        status, body, _ = harness.get("/readyz")
        assert status == 200 and json.loads(body) == {"status": "ready"}
        metrics = harness.metrics()
        assert metrics["service_accepted"] == 0
        assert metrics["runner_simulated"] == 0
        assert metrics["queue_depth"] == 0

    def test_protocol_errors(self, service_factory):
        harness = service_factory()
        # 400: not a JSON object.
        status, body, _ = harness.request("POST", "/jobs", body=None)
        assert status == 400
        assert json.loads(body)["error"]["code"] == "invalid-request"
        # 400: valid JSON, invalid job.
        status, body, _ = harness.post("/jobs", {"trace": {"application": "nope"}})
        assert status == 400
        # 404: unknown handle.
        status, body, _ = harness.get("/jobs/job-" + "0" * 40)
        assert status == 404
        assert json.loads(body)["error"]["code"] == "unknown-handle"
        # 404: unknown endpoint; 405: wrong method.
        assert harness.get("/no-such")[0] == 404
        assert harness.request("DELETE", "/jobs")[0] == 405
        assert harness.post("/healthz", {})[0] == 405

    def test_oversized_body_is_rejected_with_413(self, service_factory):
        harness = service_factory(max_body_kib=1)
        status, body, _ = harness.post("/jobs", {"pad": "x" * 4096})
        assert status == 413


class TestExecutionAndDedup:
    def test_submit_poll_complete(self, service_factory):
        harness = service_factory()
        status, body, _ = harness.submit_job(job_payload())
        assert status == 202
        handle = json.loads(body)["handle"]
        assert handle.startswith("job-")
        document = harness.wait_done(handle)
        assert document["state"] == "done"
        result = document["result"]
        assert result["instructions"] >= 1_500
        metrics = harness.metrics()
        assert metrics["service_accepted"] == 1
        assert metrics["service_completed"] == 1
        assert metrics["runner_simulated"] >= 1

    def test_duplicates_share_one_execution_and_bytes(self, service_factory):
        harness = service_factory()
        payload = job_payload()

        def submit(_):
            return harness.submit_job(payload)

        with concurrent.futures.ThreadPoolExecutor(max_workers=6) as pool:
            responses = list(pool.map(submit, range(6)))
        statuses = {status for status, _, _ in responses}
        assert statuses == {202}
        bodies = {body for _, body, _ in responses}
        assert len(bodies) == 1, "duplicate submissions must get byte-identical bodies"
        handle = json.loads(bodies.pop())["handle"]
        harness.wait_done(handle)

        # Completed: every client polls the same bytes back.
        polls = {harness.get(f"/jobs/{handle}")[1] for _ in range(4)}
        assert len(polls) == 1

        metrics = harness.metrics()
        assert metrics["service_accepted"] == 1
        assert metrics["service_deduped"] == 5
        # Exactly one execution for six submissions.
        assert metrics["runner_simulated"] == 1

    def test_deadline_expired_in_queue_fails_with_504_not_a_simulation(
        self, service_factory
    ):
        harness = service_factory()
        harness.call_on_loop(harness.service.pause)
        status, body, _ = harness.submit_job(job_payload(deadline_seconds=0.05))
        assert status == 202
        handle = json.loads(body)["handle"]
        time.sleep(0.2)  # let the deadline rot while the worker is paused
        harness.call_on_loop(harness.service.resume)
        document = harness.wait_done(handle)
        assert document["state"] == "failed"
        assert document["error"]["code"] == "deadline-exceeded"
        assert harness.metrics()["runner_simulated"] == 0

    def test_spec_submission_runs_the_orchestrator(self, service_factory):
        harness = service_factory(instructions=1_500)
        spec = {
            "spec": 1,
            "name": "svc-probe",
            "axes": {
                "targets": ["icache"],
                "organizations": ["hybrid"],
                "associativities": [8],
                "strategies": ["static"],
                "applications": ["gcc"],
            },
            "analysis": {"kind": "grid"},
        }
        status, body, _ = harness.post("/specs", spec)
        assert status == 202
        handle = json.loads(body)["handle"]
        assert handle.startswith("spec-")
        document = harness.wait_done(handle, timeout=120)
        assert document["state"] == "done"
        assert "svc-probe" in document["result"]
        assert document["result"]["svc-probe"], "spec run produced no rows"
        # Same spec again: dedup, no new handle, no new simulation.
        simulated = harness.metrics()["runner_simulated"]
        status, body2, _ = harness.post("/specs", spec)
        assert status == 202 and body2 == body
        assert harness.metrics()["runner_simulated"] == simulated


class TestBackpressure:
    def test_overload_sheds_cleanly_with_retry_after(self, service_factory):
        queue_limit = 3
        extra = 2
        harness = service_factory(queue_limit=queue_limit)
        harness.call_on_loop(harness.service.pause)

        # Capacity under pause is queue_limit + 1: the paused worker holds
        # the first item it already took off the queue.
        capacity = queue_limit + 1
        accepted = []
        for index in range(capacity):
            status, body, _ = harness.submit_job(job_payload(sample_warmup=index))
            assert status == 202, body
            accepted.append(json.loads(body)["handle"])
        assert len(set(accepted)) == capacity

        # Q full: the next k distinct submissions shed with 429 + Retry-After.
        for index in range(extra):
            status, body, headers = harness.submit_job(
                job_payload(sample_warmup=capacity + index)
            )
            assert status == 429, body
            assert json.loads(body)["error"]["code"] == "queue-full"
            assert int(headers["Retry-After"]) >= 1

        metrics = harness.metrics()
        assert metrics["service_accepted"] == capacity
        assert metrics["service_shed"] == extra
        assert metrics["queue_depth"] == queue_limit

        # Zero lost handles: every accepted handle resolves after resume.
        harness.call_on_loop(harness.service.resume)
        for handle in accepted:
            assert harness.wait_done(handle)["state"] == "done"

    def test_draining_refuses_new_work_with_503(self, service_factory):
        harness = service_factory()

        def start_drain():
            harness.service.draining = True

        harness.call_on_loop(start_drain)
        status, body, _ = harness.submit_job(job_payload())
        assert status == 503
        assert json.loads(body)["error"]["code"] == "draining"
        assert harness.get("/readyz")[0] == 503
        assert harness.get("/healthz")[0] == 200  # liveness is not readiness

        def stop_drain():
            harness.service.draining = False

        harness.call_on_loop(stop_drain)
        assert harness.get("/readyz")[0] == 200

    def test_open_breaker_sheds_submissions_with_503(self, service_factory):
        harness = service_factory(breaker_threshold=1, breaker_cooldown=60)

        def trip():
            harness.service.breaker.record_failures(1)

        harness.call_on_loop(trip)
        status, body, headers = harness.submit_job(job_payload())
        assert status == 503
        assert json.loads(body)["error"]["code"] == "circuit-open"
        assert int(headers["Retry-After"]) >= 1
        assert harness.get("/readyz")[0] == 503
        metrics = harness.metrics()
        assert metrics["service_shed"] == 1
        assert metrics["breaker_open"] == 1


class TestDrainAndRestart:
    def test_graceful_drain_exits_zero_and_persists_queued_work(
        self, service_factory, tmp_path
    ):
        cache_dir = str(tmp_path / "drain-cache")
        harness = service_factory(cache_dir=cache_dir)
        harness.call_on_loop(harness.service.pause)
        handles = []
        for index in range(2):
            status, body, _ = harness.submit_job(job_payload(sample_warmup=index))
            assert status == 202
            handles.append(json.loads(body)["handle"])

        exit_code = harness.shutdown()
        assert exit_code == 0
        # One item was still queued (the other was held by the paused
        # worker); both manifests persist as queued work for the next boot.
        assert harness.service.counters["drained"] == 1
        for handle in handles:
            manifest = json.loads(
                (tmp_path / "drain-cache" / "service" / "handles" / f"{handle}.json")
                .read_text()
            )
            assert manifest["state"] == "queued"

        # A restarted server on the same cache dir resumes and finishes both.
        revived = service_factory(cache_dir=cache_dir)
        for handle in handles:
            assert revived.wait_done(handle)["state"] == "done"
        assert revived.metrics()["service_resumed"] == 2

    def test_restart_serves_completed_work_from_cache(self, service_factory, tmp_path):
        cache_dir = str(tmp_path / "restart-cache")
        first = service_factory(cache_dir=cache_dir)
        status, body, _ = first.submit_job(job_payload())
        handle = json.loads(body)["handle"]
        first.wait_done(handle)
        done_bytes = first.get(f"/jobs/{handle}")[1]
        assert first.shutdown() == 0

        second = service_factory(cache_dir=cache_dir)
        # Completed work: the restarted server answers from its manifest,
        # byte-identical, without a single simulation.
        status, body, _ = second.get(f"/jobs/{handle}")
        assert status == 200
        assert body == done_bytes
        # Resubmitting the same payload resolves straight from the job
        # cache: accepted, done immediately, still zero simulations.
        status, body, _ = second.submit_job(job_payload())
        assert status == 202
        assert json.loads(body)["handle"] == handle
        metrics = second.metrics()
        assert metrics["runner_simulated"] == 0
        assert metrics["service_deduped"] == 1  # resolved before any cache probe

    def test_shutdown_is_idempotent(self, service_factory):
        harness = service_factory()
        assert harness.shutdown() == 0
        # A second shutdown call must not hang or error.
        assert harness.exit_code == 0


class TestStreaming:
    def test_stream_emits_terminal_event(self, service_factory):
        harness = service_factory()
        status, body, _ = harness.submit_job(job_payload())
        handle = json.loads(body)["handle"]
        harness.wait_done(handle)
        with urllib.request.urlopen(
            f"{harness.base_url}/jobs/{handle}/stream", timeout=30
        ) as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            raw = response.read().decode()
        events = [
            json.loads(line[len("data: "):])
            for line in raw.splitlines()
            if line.startswith("data: ")
        ]
        assert events
        assert events[-1]["state"] == "done"
