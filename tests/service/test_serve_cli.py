"""CLI-level tests for ``python -m repro serve``: flags and SIGTERM drain."""

import json
import re
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.__main__ import parse_args, serve_command


class TestParseArgs:
    def test_defaults(self):
        args = parse_args(["serve"])
        assert args.command == "serve"
        assert args.port == 8765
        assert args.queue_limit == 64
        assert args.breaker_threshold == 5
        assert args.job_retries == 2

    def test_flags_round_trip(self):
        args = parse_args([
            "serve", "--port", "0", "--queue-limit", "4",
            "--tenant-queue-limit", "2", "--breaker-threshold", "3",
            "--drain-grace", "2.5", "--job-timeout", "30",
            "--instructions", "5000", "--max-body-kib", "64",
        ])
        assert args.port == 0
        assert args.queue_limit == 4
        assert args.tenant_queue_limit == 2
        assert args.drain_grace == 2.5
        assert args.job_timeout == 30.0
        assert args.max_body_kib == 64

    @pytest.mark.parametrize(
        "flags", [["--queue-limit", "0"], ["--job-retries", "-1"]]
    )
    def test_invalid_values_exit_2(self, flags, tmp_path):
        args = parse_args(["serve", "--cache-dir", str(tmp_path), *flags])
        assert serve_command(args) == 2


class TestSubprocessDrain:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--cache-dir", str(tmp_path / "cache"),
                "--instructions", "2000", "--drain-grace", "10",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            match = re.search(r"serving on ([\d.]+):(\d+)", banner)
            assert match, f"no serving banner in {banner!r}"
            host, port = match.group(1), int(match.group(2))
            assert port != 0

            # The server is genuinely up: submit one job and poll it done,
            # so SIGTERM lands on a server with completed state to drain.
            base = f"http://{host}:{port}"
            request = urllib.request.Request(
                f"{base}/jobs",
                data=json.dumps(
                    {"trace": {"application": "gcc", "n_instructions": 1500}}
                ).encode(),
                method="POST",
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                assert response.status == 202
                handle = json.loads(response.read())["handle"]
            deadline = time.monotonic() + 60
            state = None
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{base}/jobs/{handle}?wait=5", timeout=30
                ) as response:
                    state = json.loads(response.read())["state"]
                if state in ("done", "failed"):
                    break
            assert state == "done"

            process.send_signal(signal.SIGTERM)
            stdout, _ = process.communicate(timeout=60)
            assert process.returncode == 0, stdout
            assert "draining on signal" in stdout
            assert "exit 0" in stdout
            # The runner wrote its final checkpoint manifest on close.
            checkpoint = tmp_path / "cache" / "checkpoint.json"
            assert checkpoint.is_file()
            manifest = json.loads(checkpoint.read_text())
            assert manifest["simulated"] >= 1
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)
