"""Unit tests for the service wire codec: validation and handle identity."""

import json

import pytest

from repro.common.errors import InvalidRequestError
from repro.service import codec


def minimal_job(**overrides):
    payload = {"trace": {"application": "gcc", "n_instructions": 1_500}}
    payload.update(overrides)
    return payload


MINIMAL_SPEC = {
    "spec": 1,
    "name": "svc-test",
    "axes": {
        "targets": ["icache"],
        "organizations": ["hybrid"],
        "associativities": [8],
        "strategies": ["static"],
        "applications": ["gcc"],
    },
    "analysis": {"kind": "grid"},
}


class TestRenderJson:
    def test_is_canonical_regardless_of_insertion_order(self):
        a = codec.render_json({"b": 1, "a": [1, 2]})
        b = codec.render_json({"a": [1, 2], "b": 1})
        assert a == b == b'{"a":[1,2],"b":1}'

    def test_parse_body_round_trips(self):
        payload = {"x": 1, "nested": {"y": [True, None]}}
        assert codec.parse_body(codec.render_json(payload)) == payload


class TestParseBody:
    @pytest.mark.parametrize(
        "body", [b"", b"not json", b"[1,2]", b'"string"', b"\xff\xfe"]
    )
    def test_rejects_non_object_bodies(self, body):
        with pytest.raises(InvalidRequestError) as excinfo:
            codec.parse_body(body)
        assert excinfo.value.status == 400


class TestJobFromPayload:
    def test_minimal_payload_builds_a_fingerprintable_job(self):
        job = codec.job_from_payload(minimal_job())
        assert job.trace.application == "gcc"
        assert job.trace.n_instructions == 1_500
        assert job.fingerprint()

    def test_full_payload_with_dynamic_setup(self):
        job = codec.job_from_payload(
            minimal_job(
                associativity=2,
                d_setup={
                    "organization": "selective-sets",
                    "strategy": {"kind": "dynamic", "miss_bound": 0.05},
                },
                interval_instructions=500,
            )
        )
        assert job.d_setup.organization == "selective-sets"
        assert job.d_setup.strategy.kind == "dynamic"

    def test_static_setup_requires_geometry(self):
        job = codec.job_from_payload(
            minimal_job(
                d_setup={
                    "organization": "selective-sets",
                    "strategy": {"kind": "static", "ways": 2, "sets": 128},
                }
            )
        )
        assert job.d_setup.strategy.kind == "static"

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # no trace at all
            minimal_job(bogus_field=1),
            minimal_job(trace={"application": "no-such-app", "n_instructions": 100}),
            minimal_job(trace={"application": "gcc", "n_instructions": -5}),
            minimal_job(trace={"application": "gcc", "n_instructions": 100, "extra": 1}),
            minimal_job(core="no-such-core"),
            minimal_job(associativity=0),
            minimal_job(d_setup={"strategy": {"kind": "none"}}),  # strategy w/o org
            minimal_job(d_setup={"organization": "no-such-org"}),
            minimal_job(
                d_setup={"organization": "selective-sets", "strategy": {"kind": "bogus"}}
            ),
            minimal_job(interval_instructions=0),
        ],
    )
    def test_invalid_payloads_fail_with_400(self, payload):
        with pytest.raises(InvalidRequestError) as excinfo:
            codec.job_from_payload(payload)
        assert excinfo.value.status == 400

    def test_never_accepts_engine_or_path_overrides(self):
        # The wire schema is data-only by construction: engine/file fields
        # are unknown and rejected, they can never reach a worker.
        for field in ("engine", "technology", "timing", "trace_path"):
            with pytest.raises(InvalidRequestError):
                codec.job_from_payload(minimal_job(**{field: "x"}))


class TestHandles:
    def test_job_handle_is_the_cache_fingerprint(self):
        job = codec.job_from_payload(minimal_job())
        handle = codec.job_handle(job)
        assert handle == f"job-{job.fingerprint()[:40]}"

    def test_deadline_is_a_hint_not_identity(self):
        with_deadline = minimal_job(deadline_seconds=5)
        without = minimal_job()
        job_a = codec.job_from_payload(with_deadline)
        job_b = codec.job_from_payload(without)
        assert codec.job_handle(job_a) == codec.job_handle(job_b)
        assert codec.canonical_payload(with_deadline) == without
        assert codec.deadline_from_payload(with_deadline) == 5.0
        assert codec.deadline_from_payload(without) is None

    @pytest.mark.parametrize("bad", [0, -1, "soon", True, {}])
    def test_bad_deadlines_are_rejected(self, bad):
        with pytest.raises(InvalidRequestError):
            codec.deadline_from_payload(minimal_job(deadline_seconds=bad))

    def test_spec_handle_depends_on_execution_params(self):
        spec = codec.spec_from_payload(MINIMAL_SPEC)
        short, _ = codec.spec_handle(spec, {"n_instructions": 1_000})
        long, _ = codec.spec_handle(spec, {"n_instructions": 60_000})
        again, _ = codec.spec_handle(spec, {"n_instructions": 1_000})
        assert short != long
        assert short == again
        assert short.startswith("spec-")

    def test_spec_from_payload_rejects_invalid_specs(self):
        with pytest.raises(InvalidRequestError) as excinfo:
            codec.spec_from_payload({"name": "broken"})
        assert excinfo.value.status == 400

    def test_distinct_work_gets_distinct_handles(self):
        base = codec.job_from_payload(minimal_job())
        longer = codec.job_from_payload(
            minimal_job(trace={"application": "gcc", "n_instructions": 3_000})
        )
        assert codec.job_handle(base) != codec.job_handle(longer)


class TestSpecRoundTrip:
    def test_spec_payload_matches_run_spec_wire_format(self):
        # The exact document `python -m repro run-spec` reads from disk is
        # accepted verbatim over the wire.
        spec = codec.spec_from_payload(json.loads(json.dumps(MINIMAL_SPEC)))
        assert spec.name == "svc-test"
