"""Unit tests for the crash-safe handle store and its manifests."""

import json

import pytest

from repro.common.errors import UnknownHandleError
from repro.service.handles import DONE, FAILED, QUEUED, RUNNING, Handle, HandleStore


def make_handle(handle_id="job-" + "a" * 40, state=QUEUED, **kwargs):
    handle = Handle(handle_id, "job", {"trace": {"application": "gcc"}}, "public", **kwargs)
    if state == DONE:
        handle.mark_done({"answer": 42})
    elif state == FAILED:
        handle.mark_failed("simulation-failed", "boom")
    elif state == RUNNING:
        handle.mark_running()
    return handle


class TestHandle:
    def test_manifest_round_trip_preserves_terminal_state(self):
        done = make_handle(state=DONE)
        restored = Handle.from_manifest(done.manifest())
        assert restored.state == DONE
        assert restored.result == {"answer": 42}
        assert restored.settled.is_set()
        assert restored.status_payload() == done.status_payload()

    def test_running_persists_as_queued(self):
        # "running" is not a restartable state: a crash mid-execution must
        # resume the work, so the manifest demotes it to queued.
        running = make_handle(state=RUNNING)
        assert running.manifest()["state"] == QUEUED
        restored = Handle.from_manifest(running.manifest())
        assert restored.state == QUEUED
        assert not restored.settled.is_set()

    def test_status_payload_is_deterministic_for_done_handles(self):
        # Byte-identity across requests requires the status body to be a
        # pure function of the manifest data — no timestamps, no counters.
        done = make_handle(state=DONE)
        assert done.status_payload() == {
            "handle": done.handle,
            "kind": "job",
            "state": "done",
            "result": {"answer": 42},
        }

    def test_failed_payload_carries_the_error(self):
        failed = make_handle(state=FAILED)
        payload = failed.status_payload()
        assert payload["state"] == "failed"
        assert payload["error"] == {"code": "simulation-failed", "message": "boom"}


class TestHandleStore:
    def test_add_get_and_unknown(self, tmp_path):
        store = HandleStore(tmp_path)
        handle = make_handle()
        store.add(handle)
        assert store.get(handle.handle) is handle
        with pytest.raises(UnknownHandleError) as excinfo:
            store.get("job-" + "f" * 40)
        assert excinfo.value.status == 404

    def test_get_falls_back_to_manifest_after_eviction(self, tmp_path):
        store = HandleStore(tmp_path, memory_limit=1)
        first = make_handle("job-" + "1" * 40, state=DONE)
        second = make_handle("job-" + "2" * 40, state=DONE)
        store.add(first)
        store.add(second)  # evicts `first` from memory
        assert len(store) == 1
        reloaded = store.get(first.handle)
        assert reloaded is not first  # came back from its manifest
        assert reloaded.state == DONE
        assert reloaded.result == first.result

    def test_eviction_never_drops_live_work(self, tmp_path):
        store = HandleStore(tmp_path, memory_limit=1)
        live = make_handle("job-" + "1" * 40, state=QUEUED)
        done = make_handle("job-" + "2" * 40, state=DONE)
        store.add(live)
        store.add(done)
        # The done handle was evicted in favour of the live one: the queue
        # and worker loop share the live object's identity.
        assert store.get(live.handle) is live

    @pytest.mark.parametrize(
        "bad", ["../../etc/passwd", "a/b", "a\\b", "handle.json", "", "x" * 200]
    )
    def test_path_traversal_attempts_never_touch_disk(self, tmp_path, bad):
        store = HandleStore(tmp_path)
        assert store._path(bad) is None
        with pytest.raises(UnknownHandleError):
            store.get(bad)

    def test_unfinished_manifests_skips_terminal_and_corrupt(self, tmp_path):
        store = HandleStore(tmp_path)
        store.add(make_handle("job-" + "1" * 40, state=QUEUED))
        store.add(make_handle("job-" + "2" * 40, state=DONE))
        store.add(make_handle("job-" + "3" * 40, state=FAILED))
        store.add(make_handle("job-" + "4" * 40, state=RUNNING))
        (tmp_path / ("job-" + "5" * 40 + ".json")).write_text("{torn")
        fresh = HandleStore(tmp_path)
        pending = sorted(h.handle for h in fresh.unfinished_manifests())
        assert pending == ["job-" + "1" * 40, "job-" + "4" * 40]

    def test_manifests_are_valid_json_on_disk(self, tmp_path):
        store = HandleStore(tmp_path)
        handle = make_handle(state=DONE)
        store.add(handle)
        path = tmp_path / f"{handle.handle}.json"
        manifest = json.loads(path.read_text())
        assert manifest["state"] == DONE
        assert manifest["version"] == 1

    def test_memoryless_store_is_inert(self):
        store = HandleStore(None)
        handle = make_handle()
        store.add(handle)  # persist is a no-op without a directory
        assert store.get(handle.handle) is handle
        assert store.unfinished_manifests() == []
