"""Unit tests for admission control: FairQueue and CircuitBreaker."""

import asyncio

import pytest

from repro.common.errors import AdmissionFullError
from repro.service.queue import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, FairQueue


def drain(queue: FairQueue, count: int):
    """Take ``count`` items synchronously (the queue is already non-empty)."""

    async def take_all():
        return [await queue.take() for _ in range(count)]

    return asyncio.run(take_all())


class TestFairQueue:
    def test_bounded_admission_raises_with_retry_after(self):
        queue = FairQueue(limit=3)
        for index in range(3):
            queue.offer(index)
        with pytest.raises(AdmissionFullError) as excinfo:
            queue.offer("overflow")
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None
        assert excinfo.value.retry_after >= 1.0
        # The shed item left no trace: the queue still drains exactly 3.
        assert len(queue) == 3
        assert drain(queue, 3) == [0, 1, 2]

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            FairQueue(limit=0)

    def test_round_robin_interleaves_tenants(self):
        queue = FairQueue(limit=10)
        for item in ("a1", "a2", "a3"):
            queue.offer(item, tenant="alice")
        queue.offer("b1", tenant="bob")
        # Alice's backlog of 3 must not delay Bob by more than one turn.
        order = drain(queue, 4)
        assert order.index("b1") <= 1
        assert [item for item in order if item.startswith("a")] == ["a1", "a2", "a3"]

    def test_per_tenant_limit_protects_other_tenants(self):
        queue = FairQueue(limit=10, tenant_limit=2)
        queue.offer("a1", tenant="alice")
        queue.offer("a2", tenant="alice")
        with pytest.raises(AdmissionFullError):
            queue.offer("a3", tenant="alice")
        # The global queue still has room for everyone else.
        queue.offer("b1", tenant="bob")
        assert len(queue) == 3
        assert queue.depth("alice") == 2
        assert queue.depth("bob") == 1

    def test_take_returns_none_once_closed_and_empty(self):
        queue = FairQueue(limit=4)
        queue.offer("only")
        leftover = queue.close()
        assert leftover == ["only"]
        assert len(queue) == 0
        assert drain(queue, 1) == [None]

    def test_close_returns_all_tenants_backlogs(self):
        queue = FairQueue(limit=10)
        queue.offer("a1", tenant="alice")
        queue.offer("b1", tenant="bob")
        queue.offer("a2", tenant="alice")
        leftover = queue.close()
        assert sorted(leftover) == ["a1", "a2", "b1"]

    def test_retry_after_tracks_service_time_average(self):
        queue = FairQueue(limit=8)
        for index in range(4):
            queue.offer(index)
        baseline = queue.retry_after()
        # Fast completions shrink the estimate; it never drops below 1s.
        for _ in range(40):
            queue.note_service_time(0.01)
        assert queue.retry_after() < baseline
        assert queue.retry_after() >= 1.0


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds: float):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = FakeClock()
        breaker = CircuitBreaker(
            threshold=kwargs.pop("threshold", 3),
            window=kwargs.pop("window", 60.0),
            cooldown=kwargs.pop("cooldown", 15.0),
            time_func=clock,
        )
        return breaker, clock

    def test_opens_at_threshold_and_sheds(self):
        breaker, _ = self.make()
        assert breaker.state == CLOSED
        breaker.record_failures(2)
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failures(1)
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert breaker.retry_after() >= 1.0

    def test_old_failures_age_out_of_the_window(self):
        breaker, clock = self.make(threshold=3, window=10.0)
        breaker.record_failures(2)
        clock.advance(11.0)
        breaker.record_failures(1)  # the first two are outside the window now
        assert breaker.state == CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make(cooldown=15.0)
        breaker.record_failures(3)
        clock.advance(15.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # the herd behind it is still shed
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_failed_probe_restarts_the_cooldown(self):
        breaker, clock = self.make(cooldown=15.0)
        breaker.record_failures(3)
        clock.advance(15.0)
        assert breaker.allow()
        breaker.record_failures(1)  # probe failed
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(14.0)
        assert breaker.state == OPEN  # cooldown restarted at the probe failure
        clock.advance(1.0)
        assert breaker.state == HALF_OPEN

    def test_success_while_closed_is_a_no_op(self):
        breaker, _ = self.make()
        breaker.record_failures(1)
        breaker.record_success()
        breaker.record_failures(0)
        assert breaker.state == CLOSED
