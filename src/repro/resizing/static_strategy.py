"""Static resizing strategy.

Static resizing (Albonesi's proposal) chooses one cache size per application
before execution starts: the application is profiled offline with each
offered size, the size with the lowest processor energy-delay (optionally
subject to a slowdown bound) is recorded, and the operating system loads the
corresponding way/set mask before the application runs.  During execution
the size never changes, which is what makes the scheme simple.

The offline profiling lives in :func:`repro.resizing.profiler.select_static_config`
and :mod:`repro.sim.sweep`; this class only carries the chosen configuration
into a run.
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ResizingError
from repro.resizing.organization import ResizingOrganization, SizeConfig
from repro.resizing.strategy import ResizingStrategy


class StaticResizing(ResizingStrategy):
    """Apply a profiled configuration at program start and never resize again."""

    name = "static"

    def __init__(self, config: SizeConfig) -> None:
        super().__init__()
        self._config = config

    @property
    def config(self) -> SizeConfig:
        """The statically selected configuration."""
        return self._config

    def bind(self, organization: ResizingOrganization) -> None:
        if not organization.contains(self._config):
            raise ResizingError(
                f"static configuration {self._config.label} is not offered by {organization.name}"
            )
        super().bind(organization)

    def initial_config(self) -> Optional[SizeConfig]:
        return self._config

    def observe_interval(
        self, accesses: int, misses: int, current: SizeConfig
    ) -> Optional[SizeConfig]:
        """Static resizing never reacts to run-time behaviour."""
        return None
