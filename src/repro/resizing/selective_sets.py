"""Selective-sets organization (Yang et al., HPCA 2001).

Selective-sets enables or disables cache sets by masking index bits
(Figure 2 of the paper).  Its size spectrum is the powers of two between the
full size and one subarray per way, so a 32K 4-way cache with 1K subarrays
offers 32K, 16K, 8K and 4K.  The organization preserves associativity as it
shrinks — valuable for reference streams with conflict misses — but offers
no sizes between the full size and half of it, pays for extra "resizing" tag
bits, and must flush blocks whose set mapping changes on a resize.
"""

from __future__ import annotations

from typing import List

from repro.resizing.organization import ResizingOrganization, SizeConfig, make_config


class SelectiveSets(ResizingOrganization):
    """Resizing by enabling/disabling cache sets (index masking)."""

    name = "selective-sets"

    def _generate_configs(self) -> List[SizeConfig]:
        geometry = self.geometry
        configs = []
        sets = geometry.num_sets
        min_sets = geometry.min_sets
        while sets >= min_sets and sets >= 1:
            configs.append(make_config(geometry.associativity, sets, geometry.block_bytes))
            if sets == 1:
                break
            sets //= 2
        return configs
