"""A cache whose enabled ways and sets can change at run time.

:class:`ResizableCache` exposes the same access interface as
:class:`repro.cache.cache.Cache` so it can slot into the hierarchy
transparently, and adds :meth:`resize_to`, which applies the flush rules of
Section 2.1:

* disabling ways — dirty blocks in the disabled ways are written back;
* disabling sets — blocks in the disabled sets are flushed (dirty ones
  written back);
* enabling sets — blocks whose set mapping changes under the new index are
  flushed, clean or dirty, because the lookup would no longer find them;
* enabling ways — nothing needs to be flushed.

The physical arrays are always allocated at the full geometry; resizing only
changes which portion the index/way masks allow the cache to use, exactly as
the hardware proposals do.

The per-access hot path is :meth:`access_packed` — the same allocation-free
packed-int kernel as :class:`~repro.cache.cache.Cache` (same ``PACKED_*``
outcome bit layout, packed ``tag -> block_address << 1 | dirty`` set state),
with the tag/index shift/mask locals re-derived on every resize instead of
being fixed at construction.  The duplicated kernel body is deliberate: a
shared helper would put a Python call frame back on every access, which is
exactly the cost this kernel exists to remove.
"""

from __future__ import annotations

from typing import List

from repro.cache.cache import (
    PACKED_FILLED,
    PACKED_HIT_RESULT,
    PACKED_MISS_RESULT,
    PACKED_WRITEBACK_SHIFT,
    PACKED_WRITEBACK_VALID,
    AccessResult,
    CacheStats,
    unpack_access_result,
)
from repro.cache.cache_set import CacheSet, build_sets, make_selector, selector_seed
from repro.cache.replacement import ReplacementPolicy
from repro.cache.subarray import SubarrayMap, SubarrayState
from repro.common.config import CacheGeometry
from repro.common.errors import ResizingError
from repro.mem.address import AddressMapper
from repro.resizing.masks import SetMask, WayMask
from repro.resizing.organization import ResizingOrganization, SizeConfig


class ResizeOutcome:
    """What a resize did to the cache contents.

    Attributes:
        previous: configuration before the resize.
        current: configuration after the resize.
        writeback_addresses: dirty blocks that must be written back to L2.
        discarded_blocks: number of clean blocks dropped.
    """

    __slots__ = ("previous", "current", "writeback_addresses", "discarded_blocks")

    def __init__(
        self,
        previous: SizeConfig,
        current: SizeConfig,
        writeback_addresses: List[int],
        discarded_blocks: int,
    ) -> None:
        self.previous = previous
        self.current = current
        self.writeback_addresses = writeback_addresses
        self.discarded_blocks = discarded_blocks

    @property
    def changed(self) -> bool:
        """True when the resize actually changed the configuration."""
        return self.previous != self.current

    def __repr__(self) -> str:
        return (
            f"ResizeOutcome({self.previous.label} -> {self.current.label}, "
            f"writebacks={len(self.writeback_addresses)}, discarded={self.discarded_blocks})"
        )


class ResizableCache:
    """Write-back, write-allocate cache with run-time resizing."""

    def __init__(
        self,
        geometry: CacheGeometry,
        organization: ResizingOrganization,
        replacement: ReplacementPolicy = ReplacementPolicy.LRU,
        name: str = "resizable-cache",
    ) -> None:
        if organization.geometry != geometry:
            raise ResizingError(
                "organization was built for a different geometry: "
                f"{organization.geometry.describe()} vs {geometry.describe()}"
            )
        self.geometry = geometry
        self.organization = organization
        self.name = name
        self.replacement = ReplacementPolicy.parse(replacement)
        self._selector = make_selector(self.replacement, seed=selector_seed(name))
        self._sets: List[CacheSet]
        self._sets, self._set_blocks = build_sets(
            geometry.associativity, self._selector, geometry.num_sets
        )
        self._subarray_map = SubarrayMap(geometry)
        self.way_mask = WayMask(geometry.associativity)
        self.set_mask = SetMask(
            geometry.num_sets, min_sets=min(c.sets for c in organization.configs)
        )
        self._current = organization.full_config
        self._mapper = AddressMapper(geometry.block_bytes, self._current.sets)
        self.stats = CacheStats()
        self.resize_count = 0
        self.flush_writebacks = 0
        self.flushed_blocks = 0
        # Kernel locals (see Cache.__init__); re-derived by resize_to when
        # the enabled index width or associativity changes.
        self._refresh_on_hit = self._selector.refreshes_on_hit
        self._random_victims = self.replacement is ReplacementPolicy.RANDOM
        self._refresh_kernel_locals()

    def _refresh_kernel_locals(self) -> None:
        """Re-derive the shift/mask/capacity locals from the current config."""
        self._offset_bits, self._index_bits, self._set_mask_bits = self._mapper.shift_mask()
        self._ways = self._current.ways

    def _kernel_state(self):
        """Hoistable kernel state (see :meth:`repro.cache.cache.Cache._kernel_state`).

        Valid only until the next resize — resizes happen exclusively at
        interval boundaries (strategy decisions inside ``close_interval``),
        so the dispatch loops re-fetch this every interval.
        """
        return (
            self.stats, self._set_blocks, self._offset_bits, self._index_bits,
            self._set_mask_bits, self._ways, self._refresh_on_hit,
            self._random_victims, self._selector,
        )

    # ------------------------------------------------------------------ access
    def access_packed(self, address: int, is_write: bool = False) -> int:
        """Allocation-free access kernel against the enabled portion.

        Identical bit layout and semantics as
        :meth:`repro.cache.cache.Cache.access_packed`; only the shift/mask
        locals track the currently enabled configuration.
        """
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        block = address >> self._offset_bits
        tag = block >> self._index_bits
        blocks = self._set_blocks[block & self._set_mask_bits]
        packed = blocks.get(tag)
        if packed is not None:
            stats.hits += 1
            if is_write:
                packed |= 1
                if self._refresh_on_hit:
                    del blocks[tag]
                blocks[tag] = packed
            elif self._refresh_on_hit:
                del blocks[tag]
                blocks[tag] = packed
            return PACKED_HIT_RESULT

        stats.misses += 1
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        victim = None
        if len(blocks) >= self._ways:
            if self._random_victims:
                victim_tag = self._selector.choose_victim(blocks)
            else:
                victim_tag = next(iter(blocks))
            victim = blocks.pop(victim_tag)
        blocks[tag] = (block << (self._offset_bits + 1)) | (1 if is_write else 0)
        stats.fills += 1
        if victim is not None and victim & 1:
            stats.writebacks += 1
            return (
                PACKED_FILLED
                | PACKED_WRITEBACK_VALID
                | ((victim >> 1) << PACKED_WRITEBACK_SHIFT)
            )
        return PACKED_MISS_RESULT

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform a load or store access (object wrapper over the kernel)."""
        return unpack_access_result(self.access_packed(address, is_write))

    def probe(self, address: int) -> bool:
        """Return True when ``address`` is resident, without updating LRU state."""
        tag, index = self._mapper.split(address)
        return tag in self._set_blocks[index]

    def flush_all(self) -> List[int]:
        """Invalidate every enabled block; returns dirty block addresses."""
        dirty: List[int] = []
        stats = self.stats
        for cache_set in self._sets:
            for packed in cache_set.drain_packed():
                stats.invalidations += 1
                if packed & 1:
                    stats.writebacks += 1
                    dirty.append(packed >> 1)
        return dirty

    # ------------------------------------------------------------------ resize
    def resize_to(self, target: SizeConfig) -> ResizeOutcome:
        """Resize the cache to ``target``, applying the Section 2.1 flush rules."""
        if not self.organization.contains(target):
            raise ResizingError(
                f"{self.organization.name} does not offer {target.label} "
                f"for {self.geometry.describe()}"
            )
        previous = self._current
        if target == previous:
            return ResizeOutcome(previous, target, [], 0)

        writebacks: List[int] = []
        discarded = 0

        old_sets = previous.sets
        new_sets = target.sets

        if new_sets < old_sets:
            # Disabling sets: every block in a disabled set leaves the cache.
            for index in range(new_sets, old_sets):
                for packed in self._sets[index].drain_packed():
                    if packed & 1:
                        writebacks.append(packed >> 1)
                    else:
                        discarded += 1
        elif new_sets > old_sets:
            # Enabling sets: blocks whose index changes under the wider index
            # field would become unreachable, so they are flushed.
            new_mapper = AddressMapper(self.geometry.block_bytes, new_sets)
            for index in range(old_sets):
                cache_set = self._sets[index]
                stale_tags = [
                    tag
                    for tag, packed in cache_set.residents_packed()
                    if new_mapper.set_index(packed >> 1) != index
                ]
                for tag in stale_tags:
                    packed = cache_set.invalidate_packed(tag)
                    if packed is None:
                        continue
                    if packed & 1:
                        writebacks.append(packed >> 1)
                    else:
                        discarded += 1

        # Adjust associativity on every physical set (disabled sets are empty).
        if target.ways != previous.ways:
            for cache_set in self._sets:
                for packed in cache_set.set_capacity_packed(target.ways):
                    if packed & 1:
                        writebacks.append(packed >> 1)
                    else:
                        discarded += 1

        self._current = target
        self._mapper = AddressMapper(self.geometry.block_bytes, new_sets)
        self.way_mask.set_enabled(target.ways)
        self.set_mask.set_enabled(new_sets)
        self._refresh_kernel_locals()

        self.resize_count += 1
        self.flush_writebacks += len(writebacks)
        self.flushed_blocks += len(writebacks) + discarded
        self.stats.writebacks += len(writebacks)
        self.stats.invalidations += len(writebacks) + discarded
        return ResizeOutcome(previous, target, writebacks, discarded)

    # ------------------------------------------------------------ introspection
    @property
    def current_config(self) -> SizeConfig:
        """The currently enabled (ways, sets) configuration."""
        return self._current

    @property
    def current_capacity_bytes(self) -> int:
        """Enabled capacity in bytes."""
        return self._current.capacity_bytes

    @property
    def associativity(self) -> int:
        """Currently enabled associativity."""
        return self._current.ways

    @property
    def num_sets(self) -> int:
        """Currently enabled number of sets."""
        return self._current.sets

    @property
    def capacity_bytes(self) -> int:
        """Full (physical) capacity in bytes."""
        return self.geometry.capacity_bytes

    @property
    def subarray_state(self) -> SubarrayState:
        """Enabled/total subarray counts for the current configuration."""
        return self._subarray_map.subarrays_for(self._current.ways, self._current.sets)

    @property
    def resizing_tag_bits(self) -> int:
        """Extra tag bits carried to support the smallest offered size."""
        return self.organization.resizing_tag_bits

    def resident_blocks(self) -> int:
        """Total number of valid blocks currently resident."""
        return sum(len(blocks) for blocks in self._set_blocks)

    def reset_stats(self) -> None:
        """Zero all access and resize counters without touching contents."""
        self.stats.reset()
        self.resize_count = 0
        self.flush_writebacks = 0
        self.flushed_blocks = 0

    def __repr__(self) -> str:
        return (
            f"ResizableCache({self.name}, {self.geometry.describe()}, "
            f"{self.organization.name}, now {self._current.label})"
        )
