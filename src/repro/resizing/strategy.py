"""Resizing strategies: the "when to resize" half of the design space.

A strategy is bound to one resizable cache and is consulted by the simulator
at two points:

* :meth:`ResizingStrategy.initial_config` — before the run begins (this is
  where static resizing applies its profiled size, mirroring the operating
  system loading a size mask before the application starts);
* :meth:`ResizingStrategy.observe_interval` — at the end of every sense
  interval, with the interval's L1 access and miss counts (this is where the
  miss-ratio based dynamic framework makes its decisions).

Both hooks return the configuration the cache should be in (or ``None`` for
"no change"); the simulator performs the actual resize and routes the flush
writebacks into the L2, so strategies stay pure decision logic and are easy
to unit test.
"""

from __future__ import annotations

from typing import Optional

from repro.resizing.organization import ResizingOrganization, SizeConfig


class ResizingStrategy:
    """Base class for resizing strategies."""

    #: short name used in reports, overridden by subclasses.
    name = "strategy"

    def __init__(self) -> None:
        self._organization: Optional[ResizingOrganization] = None

    def bind(self, organization: ResizingOrganization) -> None:
        """Attach the strategy to the organization whose ladder it navigates."""
        self._organization = organization

    @property
    def organization(self) -> ResizingOrganization:
        """The bound organization (raises if :meth:`bind` has not been called)."""
        if self._organization is None:
            raise RuntimeError(f"{type(self).__name__} has not been bound to an organization")
        return self._organization

    # ------------------------------------------------------------------- hooks
    def initial_config(self) -> Optional[SizeConfig]:
        """Configuration to apply before the run starts (None = full size)."""
        return None

    def observe_interval(
        self, accesses: int, misses: int, current: SizeConfig
    ) -> Optional[SizeConfig]:
        """Observe one sense interval; return a new configuration or None.

        Args:
            accesses: L1 accesses made by the cache during the interval.
            misses: L1 misses during the interval.
            current: the configuration the cache is currently in.
        """
        return None

    @property
    def is_dynamic(self) -> bool:
        """True when the strategy may resize during execution."""
        return False


class NoResizing(ResizingStrategy):
    """The non-resizable baseline: the cache stays at full size forever."""

    name = "none"

    def initial_config(self) -> Optional[SizeConfig]:
        return self.organization.full_config
