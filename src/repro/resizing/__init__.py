"""Resizable caches: organizations, the resizable cache itself, and strategies.

This package is the paper's primary contribution area:

* :mod:`repro.resizing.organization` — the notion of a resizing
  *organization*, i.e. the spectrum of (ways, sets) configurations a cache
  offers.
* :mod:`repro.resizing.selective_ways` — Albonesi-style way masking.
* :mod:`repro.resizing.selective_sets` — Yang-style set masking.
* :mod:`repro.resizing.hybrid` — the paper's hybrid selective-sets-and-ways
  organization (Table 1).
* :mod:`repro.resizing.resizable_cache` — a cache whose enabled ways/sets can
  change at run time, including the flush rules Section 2.1 describes.
* :mod:`repro.resizing.strategy` / ``static_strategy`` / ``dynamic_strategy``
  — the "when to resize" half of the design space (Section 2.2).
* :mod:`repro.resizing.profiler` — offline selection of static sizes and of
  the dynamic strategy's miss-bound / size-bound parameters.
"""

from repro.resizing.organization import ResizingOrganization, SizeConfig
from repro.resizing.selective_ways import SelectiveWays
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.masks import SetMask, WayMask
from repro.resizing.resizable_cache import ResizableCache, ResizeOutcome
from repro.resizing.strategy import NoResizing, ResizingStrategy
from repro.resizing.static_strategy import StaticResizing
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.profiler import (
    DynamicParameters,
    ProfilePoint,
    derive_dynamic_parameters,
    select_static_config,
)

__all__ = [
    "SizeConfig",
    "ResizingOrganization",
    "SelectiveWays",
    "SelectiveSets",
    "HybridSetsAndWays",
    "WayMask",
    "SetMask",
    "ResizableCache",
    "ResizeOutcome",
    "ResizingStrategy",
    "NoResizing",
    "StaticResizing",
    "DynamicResizing",
    "ProfilePoint",
    "DynamicParameters",
    "select_static_config",
    "derive_dynamic_parameters",
]
