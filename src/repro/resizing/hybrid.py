"""Hybrid selective-sets-and-ways organization (the paper's proposal).

The hybrid cache carries both a way-mask and a set-mask, so it can reach any
(ways, sets) combination with ``ways`` between 1 and the full associativity
and ``sets`` a power of two between one-subarray-per-way and the full set
count.  Its size spectrum is therefore the union of the selective-ways and
selective-sets spectra plus cross products neither offers alone (Table 1:
a 32K 4-way cache with 1K subarrays offers 32K, 24K, 16K, 12K, 8K, 6K, 4K,
3K, 2K and 1K).

For a redundant size (one reachable with several associativities) the hybrid
uses the highest associativity, "to minimize miss ratio and optimize the
utilization of block frames" — that tie-break lives in
:meth:`repro.resizing.organization.ResizingOrganization.ladder`, and this
module additionally exposes the full lattice so the Table 1 reproduction can
show every offered combination.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.units import format_size
from repro.resizing.organization import ResizingOrganization, SizeConfig, make_config


class HybridSetsAndWays(ResizingOrganization):
    """Resizing with both a way-mask and a set-mask."""

    name = "hybrid"

    def _generate_configs(self) -> List[SizeConfig]:
        geometry = self.geometry
        configs = []
        sets = geometry.num_sets
        min_sets = geometry.min_sets
        set_options = []
        while sets >= min_sets and sets >= 1:
            set_options.append(sets)
            if sets == 1:
                break
            sets //= 2
        for num_sets in set_options:
            for ways in range(geometry.associativity, 0, -1):
                configs.append(make_config(ways, num_sets, geometry.block_bytes))
        return configs

    def size_table(self) -> Dict[int, Dict[int, SizeConfig]]:
        """The full lattice as ``{way_capacity: {ways: SizeConfig}}``.

        Mirrors Table 1 of the paper: rows are the capacity of each way
        (i.e. the enabled set count times the block size) and columns are the
        enabled associativity.
        """
        table: Dict[int, Dict[int, SizeConfig]] = {}
        for config in self.configs:
            way_capacity = config.sets * self.geometry.block_bytes
            table.setdefault(way_capacity, {})[config.ways] = config
        return table

    def format_size_table(self) -> str:
        """Render the Table 1 lattice as aligned text, largest rows first."""
        table = self.size_table()
        ways_order = list(range(self.geometry.associativity, 0, -1))
        header_cells = ["Size of each way"] + [
            "dm" if ways == 1 else f"{ways}-way" for ways in ways_order
        ]
        rows: List[Tuple[str, ...]] = [tuple(header_cells)]
        for way_capacity in sorted(table, reverse=True):
            cells = [format_size(way_capacity)]
            for ways in ways_order:
                config = table[way_capacity].get(ways)
                cells.append(format_size(config.capacity_bytes) if config else "-")
            rows.append(tuple(cells))
        widths = [max(len(row[column]) for row in rows) for column in range(len(rows[0]))]
        lines = []
        for row in rows:
            lines.append("  ".join(cell.rjust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def redundant_sizes(self) -> Dict[int, List[SizeConfig]]:
        """Capacities offered by more than one (ways, sets) combination."""
        by_capacity: Dict[int, List[SizeConfig]] = {}
        for config in self.configs:
            by_capacity.setdefault(config.capacity_bytes, []).append(config)
        return {
            capacity: sorted(options, key=lambda config: config.ways, reverse=True)
            for capacity, options in by_capacity.items()
            if len(options) > 1
        }
