"""Miss-ratio based dynamic resizing strategy.

This is the framework proposed by Yang et al. (HPCA 2001) and evaluated in
Section 2.2 / 4.2 of the paper: hardware monitors the cache in fixed-length
intervals measured in cache accesses; a miss counter is compared against a
profiled *miss-bound* at the end of each interval, and the cache

* **upsizes** when the interval's misses exceed the miss-bound (the current
  size is too small), and
* **downsizes** when the interval's misses stay below the miss-bound,
  but never below the profiled *size-bound*, which prevents thrashing.

Both parameters are extracted offline
(:func:`repro.resizing.profiler.derive_dynamic_parameters`).
"""

from __future__ import annotations

from typing import Optional

from repro.common.errors import ConfigurationError
from repro.resizing.organization import SizeConfig
from repro.resizing.strategy import ResizingStrategy


class DynamicResizing(ResizingStrategy):
    """Interval-based, miss-ratio driven resizing."""

    name = "dynamic"

    def __init__(
        self,
        miss_bound: float,
        size_bound_bytes: int,
        sense_interval_accesses: int = 16384,
        downsize_fraction: float = 1.0,
        settle_intervals: int = 2,
        reversal_backoff_intervals: int = 8,
        initial_config: Optional[SizeConfig] = None,
    ) -> None:
        """Create a dynamic resizing controller.

        Args:
            miss_bound: misses per sense interval above which the cache
                upsizes; below ``downsize_fraction * miss_bound`` it
                downsizes.
            size_bound_bytes: smallest capacity the controller may select.
            sense_interval_accesses: interval length in L1 accesses.
            downsize_fraction: hysteresis factor in (0, 1]; 1.0 reproduces
                the paper's single-threshold behaviour.
            settle_intervals: number of sense intervals to sit out after a
                resize, so the flush/refill transient a resize causes is not
                mistaken for a change in the application's working set.
            reversal_backoff_intervals: when a downsize is immediately undone
                by an upsize (a failed exploration), hold off further
                downsizing for this many sense intervals, doubling after each
                consecutive reversal.  The paper's 1M-access sense intervals
                make failed explorations essentially free; at the much
                shorter intervals a reduced-scale reproduction must use, this
                back-off keeps their flush/refill cost from repeating every
                few thousand instructions.  Set to 0 to recover the paper's
                undamped behaviour.
            initial_config: configuration to start in (defaults to full size).
        """
        super().__init__()
        if miss_bound < 0:
            raise ConfigurationError(f"miss bound must be non-negative, got {miss_bound}")
        if sense_interval_accesses < 1:
            raise ConfigurationError(
                f"sense interval must be at least one access, got {sense_interval_accesses}"
            )
        if not 0.0 < downsize_fraction <= 1.0:
            raise ConfigurationError(
                f"downsize fraction must be in (0, 1], got {downsize_fraction}"
            )
        if settle_intervals < 0:
            raise ConfigurationError(
                f"settle intervals must be non-negative, got {settle_intervals}"
            )
        if reversal_backoff_intervals < 0:
            raise ConfigurationError(
                f"reversal backoff must be non-negative, got {reversal_backoff_intervals}"
            )
        self.miss_bound = float(miss_bound)
        self.size_bound_bytes = int(size_bound_bytes)
        self.sense_interval_accesses = int(sense_interval_accesses)
        self.downsize_fraction = float(downsize_fraction)
        self.settle_intervals = int(settle_intervals)
        self.reversal_backoff_intervals = int(reversal_backoff_intervals)
        self._initial_config = initial_config
        self._accumulated_accesses = 0
        self._accumulated_misses = 0
        self._settling = 0
        self._downsize_hold = 0
        self._current_backoff = reversal_backoff_intervals
        self._last_action_was_downsize = False
        self.upsizes = 0
        self.downsizes = 0
        self.reversals = 0

    @property
    def is_dynamic(self) -> bool:
        return True

    @property
    def requested_initial_config(self) -> Optional[SizeConfig]:
        """The ``initial_config`` constructor argument, without the
        bound-organization fallback :meth:`initial_config` applies."""
        return self._initial_config

    def initial_config(self) -> Optional[SizeConfig]:
        if self._initial_config is not None:
            return self._initial_config
        return self.organization.full_config

    # ------------------------------------------------------------------- logic
    def observe_interval(
        self, accesses: int, misses: int, current: SizeConfig
    ) -> Optional[SizeConfig]:
        """Accumulate counts; decide once a full sense interval has elapsed."""
        self._accumulated_accesses += accesses
        self._accumulated_misses += misses
        if self._accumulated_accesses < self.sense_interval_accesses:
            return None

        # Scale the observed misses to exactly one sense interval so the
        # decision threshold is independent of how the simulator chops time.
        scale = self.sense_interval_accesses / self._accumulated_accesses
        interval_misses = self._accumulated_misses * scale
        self._accumulated_accesses = 0
        self._accumulated_misses = 0

        if self._settling > 0:
            # The interval right after a resize is dominated by the flush and
            # refill transient; acting on it would cause ping-ponging.
            self._settling -= 1
            return None
        if self._downsize_hold > 0:
            self._downsize_hold -= 1
        return self._decide(interval_misses, current)

    def _decide(self, interval_misses: float, current: SizeConfig) -> Optional[SizeConfig]:
        organization = self.organization
        if interval_misses > self.miss_bound:
            larger = organization.next_larger(current)
            if larger is not None:
                self.upsizes += 1
                self._settling = self.settle_intervals
                if self._last_action_was_downsize:
                    # Failed exploration: the size we just tried is too small.
                    # Back off before trying to shrink again.
                    self.reversals += 1
                    self._downsize_hold = self._current_backoff
                    self._current_backoff = min(self._current_backoff * 2, 64)
                self._last_action_was_downsize = False
                return larger
            return None
        if interval_misses <= self.miss_bound * self.downsize_fraction:
            if self._downsize_hold > 0:
                return None
            smaller = organization.next_smaller(current)
            if smaller is not None and smaller.capacity_bytes >= self.size_bound_bytes:
                if not self._last_action_was_downsize:
                    # A downsize that was not reversed resets the back-off.
                    self._current_backoff = self.reversal_backoff_intervals
                self.downsizes += 1
                self._settling = self.settle_intervals
                self._last_action_was_downsize = True
                return smaller
        else:
            self._last_action_was_downsize = False
        return None

    def reset(self) -> None:
        """Clear accumulated interval state and decision counters."""
        self._accumulated_accesses = 0
        self._accumulated_misses = 0
        self._settling = 0
        self._downsize_hold = 0
        self._current_backoff = self.reversal_backoff_intervals
        self._last_action_was_downsize = False
        self.upsizes = 0
        self.downsizes = 0
        self.reversals = 0
