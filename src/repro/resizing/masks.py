"""Way and set masks.

The hardware proposals express resizing as programmable masks: a *way-mask*
with one bit per way (Figure 1) and a *set-mask* that selects how many index
bits participate in set selection (Figure 2).  The simulator works directly
with enabled counts, but the masks are modelled explicitly so that the
hardware-facing representation (and its constraints, e.g. contiguous
enabling) is captured and testable.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError, ResizingError
from repro.common.units import is_power_of_two, log2_int


class WayMask:
    """One enable bit per way; ways are enabled from way 0 upward."""

    def __init__(self, total_ways: int, enabled_ways: int | None = None) -> None:
        if total_ways < 1:
            raise ConfigurationError(f"a cache needs at least one way, got {total_ways}")
        self.total_ways = total_ways
        self._enabled_ways = total_ways if enabled_ways is None else 0
        if enabled_ways is not None:
            self.set_enabled(enabled_ways)

    @property
    def enabled_ways(self) -> int:
        """Number of ways currently enabled."""
        return self._enabled_ways

    def set_enabled(self, enabled_ways: int) -> None:
        """Enable exactly ``enabled_ways`` ways (1 .. total)."""
        if enabled_ways < 1 or enabled_ways > self.total_ways:
            raise ResizingError(
                f"enabled ways must be in [1, {self.total_ways}], got {enabled_ways}"
            )
        self._enabled_ways = enabled_ways

    @property
    def bits(self) -> tuple:
        """The mask as a tuple of 0/1 bits, way 0 first."""
        return tuple(1 if way < self._enabled_ways else 0 for way in range(self.total_ways))

    def is_enabled(self, way: int) -> bool:
        """True when ``way`` is enabled."""
        if way < 0 or way >= self.total_ways:
            raise ConfigurationError(f"way {way} out of range [0, {self.total_ways})")
        return way < self._enabled_ways

    def __repr__(self) -> str:
        return f"WayMask({''.join(str(bit) for bit in self.bits)})"


class SetMask:
    """Selects how many index bits are used, i.e. how many sets are enabled.

    The enabled set count must be a power of two between the minimum
    (one subarray per way) and the full set count, matching the paper's
    index-masking scheme.
    """

    def __init__(self, total_sets: int, min_sets: int, enabled_sets: int | None = None) -> None:
        if not is_power_of_two(total_sets):
            raise ConfigurationError(f"total sets must be a power of two, got {total_sets}")
        if not is_power_of_two(min_sets) or min_sets > total_sets:
            raise ConfigurationError(
                f"minimum sets must be a power of two no larger than {total_sets}, got {min_sets}"
            )
        self.total_sets = total_sets
        self.min_sets = min_sets
        self._enabled_sets = total_sets
        if enabled_sets is not None:
            self.set_enabled(enabled_sets)

    @property
    def enabled_sets(self) -> int:
        """Number of sets currently enabled."""
        return self._enabled_sets

    def set_enabled(self, enabled_sets: int) -> None:
        """Enable exactly ``enabled_sets`` sets (a power of two in range)."""
        if not is_power_of_two(enabled_sets):
            raise ResizingError(f"enabled sets must be a power of two, got {enabled_sets}")
        if enabled_sets < self.min_sets or enabled_sets > self.total_sets:
            raise ResizingError(
                f"enabled sets must be in [{self.min_sets}, {self.total_sets}], got {enabled_sets}"
            )
        self._enabled_sets = enabled_sets

    @property
    def masked_index_bits(self) -> int:
        """Number of index bits masked out relative to the full-size cache."""
        return log2_int(self.total_sets) - log2_int(self._enabled_sets)

    @property
    def resizing_tag_bits(self) -> int:
        """Extra tag bits the tag array must hold to support the smallest size.

        Section 2.1: the tag array must be as large as required by the
        smallest offered size, so the overhead is the number of index bits
        that can be masked away in the worst case.
        """
        return log2_int(self.total_sets) - log2_int(self.min_sets)

    def __repr__(self) -> str:
        return f"SetMask(enabled={self._enabled_sets}/{self.total_sets}, min={self.min_sets})"
