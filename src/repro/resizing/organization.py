"""Resizing organizations: the spectrum of sizes a resizable cache offers.

An organization answers "which (ways, sets) configurations can this cache be
resized to?".  The three concrete organizations — selective-ways,
selective-sets and the hybrid — differ exactly in that spectrum, which is
what Section 2.1 of the paper analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.common.config import CacheGeometry
from repro.common.errors import ResizingError
from repro.common.units import format_size


@dataclass(frozen=True, order=True)
class SizeConfig:
    """One point in an organization's resizing spectrum.

    The dataclass orders by capacity (then associativity) so that sorting a
    list of configurations sorts by size.

    Attributes:
        capacity_bytes: enabled data capacity.
        ways: enabled associativity.
        sets: enabled number of sets.
    """

    capacity_bytes: int
    ways: int
    sets: int

    @property
    def label(self) -> str:
        """Human-readable label, e.g. ``"24K 3-way"``."""
        suffix = "dm" if self.ways == 1 else f"{self.ways}-way"
        return f"{format_size(self.capacity_bytes)} {suffix}"

    def __repr__(self) -> str:
        return f"SizeConfig({self.label})"


def make_config(ways: int, sets: int, block_bytes: int) -> SizeConfig:
    """Build a :class:`SizeConfig` from an enabled (ways, sets) pair."""
    return SizeConfig(capacity_bytes=ways * sets * block_bytes, ways=ways, sets=sets)


class ResizingOrganization:
    """Base class for resizing organizations.

    Subclasses implement :meth:`_generate_configs`; everything else
    (navigation between adjacent sizes, lookups, tag-bit overhead) is shared.
    """

    #: short name used in reports, overridden by subclasses.
    name = "organization"

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        configs = sorted(self._generate_configs(), reverse=True)
        if not configs:
            raise ResizingError(f"{self.name} offers no configurations for {geometry.describe()}")
        self._configs: Tuple[SizeConfig, ...] = tuple(configs)
        self._by_capacity = {}
        for config in self._configs:
            # Keep the highest-associativity configuration for a redundant
            # size (the paper's tie-break for the hybrid organization).
            existing = self._by_capacity.get(config.capacity_bytes)
            if existing is None or config.ways > existing.ways:
                self._by_capacity[config.capacity_bytes] = config

    # ----------------------------------------------------------- to override
    def _generate_configs(self) -> Sequence[SizeConfig]:
        """Return every configuration the organization offers (any order)."""
        raise NotImplementedError

    # ----------------------------------------------------------------- queries
    @property
    def configs(self) -> Tuple[SizeConfig, ...]:
        """All offered configurations, largest first."""
        return self._configs

    @property
    def distinct_sizes(self) -> List[int]:
        """Distinct capacities offered, largest first."""
        return sorted(self._by_capacity, reverse=True)

    @property
    def full_config(self) -> SizeConfig:
        """The full-size (no resizing) configuration."""
        return self._configs[0]

    @property
    def min_config(self) -> SizeConfig:
        """The smallest offered configuration."""
        return self._configs[-1]

    def config_for_capacity(self, capacity_bytes: int) -> SizeConfig:
        """Return the offered configuration with exactly this capacity.

        For redundant sizes the highest-associativity option is returned
        (Table 1's tie-break).  Raises :class:`ResizingError` if the capacity
        is not offered.
        """
        config = self._by_capacity.get(capacity_bytes)
        if config is None:
            offered = ", ".join(format_size(size) for size in self.distinct_sizes)
            raise ResizingError(
                f"{self.name} does not offer {format_size(capacity_bytes)}; "
                f"offered sizes: {offered}"
            )
        return config

    def next_smaller(self, config: SizeConfig) -> Optional[SizeConfig]:
        """The next configuration down the resizing ladder (None at the bottom)."""
        ladder = self.ladder()
        try:
            position = ladder.index(config)
        except ValueError as exc:
            raise ResizingError(f"{config!r} is not offered by {self.name}") from exc
        if position + 1 >= len(ladder):
            return None
        return ladder[position + 1]

    def next_larger(self, config: SizeConfig) -> Optional[SizeConfig]:
        """The next configuration up the resizing ladder (None at the top)."""
        ladder = self.ladder()
        try:
            position = ladder.index(config)
        except ValueError as exc:
            raise ResizingError(f"{config!r} is not offered by {self.name}") from exc
        if position == 0:
            return None
        return ladder[position - 1]

    def ladder(self) -> List[SizeConfig]:
        """The resizing ladder: one configuration per distinct size, largest first.

        Redundant sizes collapse to their highest-associativity option, which
        is the path Table 1 describes for the hybrid organization and is a
        no-op for the two basic organizations.
        """
        return [self._by_capacity[size] for size in self.distinct_sizes]

    @property
    def resizing_tag_bits(self) -> int:
        """Extra tag bits required to support the smallest offered set count."""
        full_sets = self.geometry.num_sets
        min_sets = min(config.sets for config in self._configs)
        extra = 0
        sets = min_sets
        while sets < full_sets:
            sets *= 2
            extra += 1
        return extra

    def contains(self, config: SizeConfig) -> bool:
        """True when the organization offers exactly this configuration."""
        return config in self._configs

    def __repr__(self) -> str:
        sizes = ", ".join(config.label for config in self.ladder())
        return f"{type(self).__name__}({self.geometry.describe()}: {sizes})"
