"""Selective-ways organization (Albonesi, MICRO 1999).

Selective-ways enables or disables whole associative ways through a way-mask
(Figure 1 of the paper).  Its size spectrum is linear — every multiple of a
way's capacity — so a 32K 4-way cache offers 32K, 24K, 16K and 8K.  The
organization keeps the set mapping unchanged, needs no extra tag bits, and
never has to flush clean blocks; its weaknesses are that it lowers
associativity as it shrinks and that it cannot shrink below one way.
"""

from __future__ import annotations

from typing import List

from repro.resizing.organization import ResizingOrganization, SizeConfig, make_config


class SelectiveWays(ResizingOrganization):
    """Resizing by enabling/disabling associative ways."""

    name = "selective-ways"

    def _generate_configs(self) -> List[SizeConfig]:
        geometry = self.geometry
        configs = []
        for ways in range(geometry.associativity, 0, -1):
            configs.append(make_config(ways, geometry.num_sets, geometry.block_bytes))
        return configs

    @property
    def resizing_tag_bits(self) -> int:
        """Selective-ways never changes the index, so it needs no extra tag bits."""
        return 0
