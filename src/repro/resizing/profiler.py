"""Offline profiling used by both resizing strategies.

Static resizing needs one profiled size per (application, cache,
organization); the dynamic framework needs a miss-bound and a size-bound.
Both are "extracted offline through profiling" in the paper.  The functions
here implement the *selection* logic over profiling results; actually
producing the profiling runs is the simulator's job
(:mod:`repro.sim.sweep`), which keeps this module free of any simulator
dependency and easy to test with hand-built numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.common.errors import ConfigurationError
from repro.resizing.organization import SizeConfig


@dataclass(frozen=True)
class ProfilePoint:
    """Result of profiling one candidate configuration.

    Attributes:
        config: the candidate (ways, sets) configuration.
        energy: total processor energy for the profiling run (arbitrary units).
        cycles: execution time of the profiling run in cycles.
        l1_accesses: L1 accesses made by the resized cache during the run.
        l1_misses: L1 misses during the run.
    """

    config: SizeConfig
    energy: float
    cycles: float
    l1_accesses: int = 0
    l1_misses: int = 0

    @property
    def energy_delay(self) -> float:
        """Energy-delay product for this candidate."""
        return self.energy * self.cycles

    @property
    def miss_ratio(self) -> float:
        """L1 miss ratio observed during profiling."""
        if self.l1_accesses == 0:
            return 0.0
        return self.l1_misses / self.l1_accesses


@dataclass(frozen=True)
class DynamicParameters:
    """Profiled parameters for the miss-ratio based dynamic framework."""

    miss_bound: float
    size_bound_bytes: int
    sense_interval_accesses: int


def select_static_config(
    points: Sequence[ProfilePoint],
    baseline_cycles: Optional[float] = None,
    max_slowdown: Optional[float] = None,
) -> ProfilePoint:
    """Pick the static configuration with the lowest energy-delay product.

    The paper reports "the lowest energy-delay product achieved for each
    application regardless of the performance degradation" (all of which end
    up within 6 %); passing ``max_slowdown`` (e.g. ``0.06``) and the
    baseline's cycle count restricts the choice to candidates within that
    slowdown, which is how a deployment would bound worst-case impact.

    Args:
        points: one :class:`ProfilePoint` per offered configuration.
        baseline_cycles: cycle count of the non-resizable baseline.
        max_slowdown: maximum tolerated fractional slowdown vs the baseline.

    Returns:
        The chosen profile point (so callers can also read its energy/cycles).
    """
    if not points:
        raise ConfigurationError("cannot select a static configuration from an empty profile")
    candidates = list(points)
    if max_slowdown is not None:
        if baseline_cycles is None:
            raise ConfigurationError("max_slowdown requires baseline_cycles")
        limit = baseline_cycles * (1.0 + max_slowdown)
        bounded = [point for point in candidates if point.cycles <= limit]
        if bounded:
            candidates = bounded
    best = min(candidates, key=lambda point: (point.energy_delay, -point.config.capacity_bytes))
    return best


def derive_dynamic_parameters(
    points: Sequence[ProfilePoint],
    sense_interval_accesses: int = 16384,
    miss_bound_factor: float = 1.5,
    slack: float = 0.01,
    size_bound_miss_allowance: float = 0.02,
    baseline_cycles: Optional[float] = None,
    max_slowdown: Optional[float] = None,
) -> DynamicParameters:
    """Derive the dynamic framework's miss-bound and size-bound from a profile.

    * The **miss-bound** is derived from the miss ratio the application shows
      at its *statically selected* size — the size the application is known
      to tolerate — scaled by ``miss_bound_factor`` plus a small absolute
      ``slack``.  Intervals that miss noticeably more than that are evidence
      the current size is too small (upsize); intervals at or below it are
      safe to shrink.  Anchoring the bound at the tolerated size (rather
      than at the full size) keeps the controller stable once it has settled
      there instead of ping-ponging around its own equilibrium.
    * The **size-bound** prevents thrashing: the smallest offered capacity
      whose *whole-run* profiled miss ratio stays within
      ``size_bound_miss_allowance`` of the full-size miss ratio.  Unlike the
      statically selected size, this floor deliberately allows the dynamic
      controller to drop below the static choice during low-demand phases —
      that is where dynamic resizing earns its advantage — while keeping
      clearly-thrashing sizes (e.g. half of a streaming working set) out of
      reach.  It is never larger than the statically selected size.
    """
    if not points:
        raise ConfigurationError("cannot derive dynamic parameters from an empty profile")
    full = max(points, key=lambda point: point.config.capacity_bytes)
    full_miss_ratio = full.miss_ratio
    best = select_static_config(
        points, baseline_cycles=baseline_cycles, max_slowdown=max_slowdown
    )
    anchor_miss_ratio = max(best.miss_ratio, full_miss_ratio)
    miss_bound = (anchor_miss_ratio * miss_bound_factor + slack) * sense_interval_accesses

    tolerated = [
        point
        for point in points
        if point.miss_ratio <= full_miss_ratio + size_bound_miss_allowance
    ]
    if tolerated:
        size_bound = min(point.config.capacity_bytes for point in tolerated)
    else:
        size_bound = best.config.capacity_bytes
    size_bound = min(size_bound, best.config.capacity_bytes)
    return DynamicParameters(
        miss_bound=miss_bound,
        size_bound_bytes=size_bound,
        sense_interval_accesses=sense_interval_accesses,
    )
