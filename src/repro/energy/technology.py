"""Technology parameters for the 0.18 µm design point the paper assumes.

All energies are in nanojoules.  The absolute values are not meant to match
a specific silicon implementation — the paper's metric is *relative*
energy-delay — but the defaults are calibrated so that the base system
(Table 2) shows the same energy breakdown the paper reports: the d-cache
around 18.5 % and the i-cache around 17.5 % of total processor energy, with
the whole cache structure close to 18 % of processor *power* when activity
factors are ignored.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class TechnologyParameters:
    """Per-event and per-cycle energies for a 0.18 µm processor.

    Attributes:
        subarray_access_energy: bitline precharge + discharge energy of one
            enabled data subarray during one access (all enabled subarrays
            precharge on every access, per Figure 3).
        way_sense_energy: sense-amplifier and data-output energy per enabled
            way read on an access.
        tag_bit_energy: energy per tag bit per enabled way compared on an
            access (selective-sets pays for its extra resizing tag bits here).
        write_energy_factor: multiplier applied to store accesses.
        clock_energy_per_subarray: clock-distribution energy per enabled
            subarray per cycle (disabled subarrays stop receiving the clock).
        leakage_energy_per_kib: subthreshold leakage per enabled KiB per cycle.
        fetch_accesses_per_lookup: how many physical fetch-array accesses the
            energy model charges per functional instruction-cache lookup.
            The simulator coalesces sequential fetches into one lookup per
            fetch block, whereas a real front end re-reads the array nearly
            every cycle; this factor (calibrated against the paper's
            i-cache energy share) converts between the two.
        l2_access_energy: energy of one L2 access (kept comparatively small,
            as the paper argues, because L2 can use delayed precharge).
        memory_access_energy: energy of one main-memory block transfer.
        core_cycle_energy: lumped rest-of-processor energy per cycle (clock
            tree, register files, issue logic, ...).
        core_instruction_energy: lumped rest-of-processor energy per
            committed instruction (functional units, result buses, ...).
    """

    subarray_access_energy: float = 0.0045
    way_sense_energy: float = 0.0045
    tag_bit_energy: float = 0.00006
    write_energy_factor: float = 1.15
    clock_energy_per_subarray: float = 0.0005
    leakage_energy_per_kib: float = 0.0003
    fetch_accesses_per_lookup: float = 2.2
    l2_access_energy: float = 1.5
    memory_access_energy: float = 8.0
    core_cycle_energy: float = 0.18
    core_instruction_energy: float = 0.09

    def __post_init__(self) -> None:
        for name in (
            "subarray_access_energy",
            "way_sense_energy",
            "tag_bit_energy",
            "clock_energy_per_subarray",
            "leakage_energy_per_kib",
            "l2_access_energy",
            "memory_access_energy",
            "core_cycle_energy",
            "core_instruction_energy",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")
        if self.write_energy_factor < 1.0:
            raise ConfigurationError("write energy factor must be at least 1.0")
        if self.fetch_accesses_per_lookup <= 0.0:
            raise ConfigurationError("fetch accesses per lookup must be positive")
