"""Energy models.

The models are analytical stand-ins for Wattch's capacitance-based power
accounting: every structure's dynamic energy scales with its activity and —
for the resizable L1 caches — with the number of *enabled* subarrays, and
leakage scales with the enabled capacity.  Absolute values are in
nanojoules; only the relative breakdown matters for the paper's metric, and
the default technology parameters are calibrated so the base configuration
reproduces the paper's reported breakdown (d-cache ~18.5 %, i-cache ~17.5 %
of processor energy).
"""

from repro.energy.technology import TechnologyParameters
from repro.energy.cache_energy import CacheEnergyModel, L2EnergyModel
from repro.energy.processor_energy import ProcessorEnergyModel
from repro.energy.accounting import EnergyAccountant

__all__ = [
    "TechnologyParameters",
    "CacheEnergyModel",
    "L2EnergyModel",
    "ProcessorEnergyModel",
    "EnergyAccountant",
]
