"""Cache energy models.

The L1 model is where resizing pays off: dynamic energy per access scales
with the number of *enabled* subarrays (all enabled subarrays precharge on
every access) and per-cycle clock/leakage energy scales with the enabled
capacity.  Selective-sets additionally pays for its resizing tag bits on
every access.

The L2 model is deliberately simple — a fixed energy per access — following
the paper's argument that L2 accesses are less latency-critical and can use
delayed precharge, so the extra L2 traffic caused by downsizing or flushing
shows up as a modest, but accounted-for, energy increase.
"""

from __future__ import annotations

from repro.cache.subarray import SubarrayState
from repro.common.config import CacheGeometry
from repro.common.units import KIB
from repro.energy.technology import TechnologyParameters


class CacheEnergyModel:
    """Energy model for one resizable (or plain) L1 cache."""

    def __init__(
        self,
        geometry: CacheGeometry,
        technology: TechnologyParameters,
        resizing_tag_bits: int = 0,
        address_bits: int = 32,
    ) -> None:
        self.geometry = geometry
        self.technology = technology
        self.resizing_tag_bits = resizing_tag_bits
        self.address_bits = address_bits
        self._base_tag_bits = geometry.tag_bits(address_bits)

    # ------------------------------------------------------------- per access
    def access_energy(
        self, state: SubarrayState, enabled_ways: int, is_write: bool = False
    ) -> float:
        """Energy of one access with the given enabled configuration."""
        tech = self.technology
        tag_bits = self._base_tag_bits + self.resizing_tag_bits
        energy = (
            state.enabled_subarrays * tech.subarray_access_energy
            + enabled_ways * tech.way_sense_energy
            + enabled_ways * tag_bits * tech.tag_bit_energy
        )
        if is_write:
            energy *= tech.write_energy_factor
        return energy

    def interval_access_energy(
        self,
        state: SubarrayState,
        enabled_ways: int,
        reads: int,
        writes: int,
    ) -> float:
        """Energy of an interval's worth of accesses."""
        read_energy = self.access_energy(state, enabled_ways, is_write=False)
        write_energy = self.access_energy(state, enabled_ways, is_write=True)
        return reads * read_energy + writes * write_energy

    # -------------------------------------------------------------- per cycle
    def cycle_energy(self, state: SubarrayState) -> float:
        """Clock + leakage energy of one cycle with the given enabled state."""
        tech = self.technology
        clock = state.enabled_subarrays * tech.clock_energy_per_subarray
        leakage = (state.enabled_bytes / KIB) * tech.leakage_energy_per_kib
        return clock + leakage

    def interval_cycle_energy(self, state: SubarrayState, cycles: float) -> float:
        """Clock + leakage energy over ``cycles`` cycles."""
        return cycles * self.cycle_energy(state)

    # ------------------------------------------------------------ convenience
    def fetch_array_energy(self, state: SubarrayState, enabled_ways: int, lookups: int) -> float:
        """Front-end instruction-array energy over an interval.

        ``lookups`` is the number of functional fetch-block lookups the
        simulator performed; the technology's ``fetch_accesses_per_lookup``
        converts them into physical array accesses (a real front end
        re-reads the array nearly every cycle, while the simulator coalesces
        sequential fetches within one block into a single lookup).
        """
        per_access = self.access_energy(state, enabled_ways, is_write=False)
        return lookups * self.technology.fetch_accesses_per_lookup * per_access


class L2EnergyModel:
    """Fixed energy per L2 access plus leakage for the (never-resized) L2."""

    def __init__(self, geometry: CacheGeometry, technology: TechnologyParameters) -> None:
        self.geometry = geometry
        self.technology = technology

    def interval_energy(self, accesses: int, cycles: float) -> float:
        """Energy of an interval's worth of L2 activity."""
        tech = self.technology
        dynamic = accesses * tech.l2_access_energy
        # The L2 is an order of magnitude larger than an L1 but is built from
        # slower, lower-leakage cells; a quarter of the L1 per-KiB leakage is
        # a reasonable stand-in and keeps L2 leakage a second-order term.
        leakage = cycles * (self.geometry.capacity_bytes / KIB) * tech.leakage_energy_per_kib * 0.25
        return dynamic + leakage
