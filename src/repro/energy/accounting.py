"""Interval-level energy accounting.

:class:`EnergyAccountant` combines the cache, L2, memory and core energy
models into a single call the simulator makes once per interval, producing an
:class:`repro.metrics.breakdown.EnergyBreakdown` that is accumulated into the
run totals.
"""

from __future__ import annotations

from repro.cache.subarray import SubarrayState
from repro.common.config import SystemConfig
from repro.energy.cache_energy import CacheEnergyModel, L2EnergyModel
from repro.energy.processor_energy import ProcessorEnergyModel
from repro.energy.technology import TechnologyParameters
from repro.metrics.breakdown import EnergyBreakdown
from repro.metrics.counts import IntervalCounts


class EnergyAccountant:
    """Computes the per-interval energy breakdown of the whole processor."""

    def __init__(
        self,
        config: SystemConfig,
        technology: TechnologyParameters | None = None,
        l1d_resizing_tag_bits: int = 0,
        l1i_resizing_tag_bits: int = 0,
    ) -> None:
        self.config = config
        self.technology = technology if technology is not None else TechnologyParameters()
        self.l1d_model = CacheEnergyModel(
            config.l1d, self.technology, l1d_resizing_tag_bits, config.address_bits
        )
        self.l1i_model = CacheEnergyModel(
            config.l1i, self.technology, l1i_resizing_tag_bits, config.address_bits
        )
        self.l2_model = L2EnergyModel(config.l2.geometry, self.technology)
        self.core_model = ProcessorEnergyModel(config.core, self.technology)

    def interval_breakdown(
        self,
        counts: IntervalCounts,
        cycles: float,
        l1d_state: SubarrayState,
        l1d_ways: int,
        l1i_state: SubarrayState,
        l1i_ways: int,
    ) -> EnergyBreakdown:
        """Energy attributed to each structure during one interval.

        Args:
            counts: the interval's activity counts.
            cycles: the interval's execution time (from the core timing model).
            l1d_state / l1d_ways: enabled subarrays/ways of the data cache.
            l1i_state / l1i_ways: enabled subarrays/ways of the instruction cache.
        """
        reads = counts.l1d_accesses - counts.l1d_stores
        l1d_energy = self.l1d_model.interval_access_energy(
            l1d_state, l1d_ways, reads=reads, writes=counts.l1d_stores
        )
        l1d_energy += self.l1d_model.interval_cycle_energy(l1d_state, cycles)

        l1i_energy = self.l1i_model.fetch_array_energy(l1i_state, l1i_ways, counts.l1i_accesses)
        l1i_energy += self.l1i_model.interval_cycle_energy(l1i_state, cycles)

        l2_energy = self.l2_model.interval_energy(counts.l2_accesses, cycles)
        memory_energy = self.core_model.memory_energy(counts)
        core_energy = self.core_model.interval_energy(counts, cycles)

        return EnergyBreakdown(
            l1d=l1d_energy,
            l1i=l1i_energy,
            l2=l2_energy,
            memory=memory_energy,
            core=core_energy,
        )
