"""Rest-of-processor and main-memory energy.

Everything outside the caches — clock tree, fetch/decode/issue logic,
register files, functional units, the ROB and LSQ — is lumped into a
per-cycle plus per-instruction energy, the same granularity Wattch's
aggregate numbers provide.  This is what makes the paper's metric honest:
when resizing slows the program down, the rest of the processor burns energy
for those extra cycles, so over-aggressive downsizing hurts the total even
before the delay factor of energy-delay is applied.
"""

from __future__ import annotations

from repro.common.config import CoreConfig
from repro.energy.technology import TechnologyParameters
from repro.metrics.counts import IntervalCounts


class ProcessorEnergyModel:
    """Lumped energy model for the non-cache portion of the processor."""

    def __init__(self, core: CoreConfig, technology: TechnologyParameters) -> None:
        self.core = core
        self.technology = technology
        # An in-order core has a much simpler issue/rename/wakeup path; scale
        # its per-cycle overhead down so the two core types stay comparable.
        self._cycle_scale = 1.0 if core.is_out_of_order else 0.8

    def interval_energy(self, counts: IntervalCounts, cycles: float) -> float:
        """Core (non-cache) energy over one interval."""
        tech = self.technology
        cycle_energy = cycles * tech.core_cycle_energy * self._cycle_scale
        instruction_energy = counts.instructions * tech.core_instruction_energy
        return cycle_energy + instruction_energy

    def memory_energy(self, counts: IntervalCounts) -> float:
        """Main-memory energy over one interval."""
        return counts.memory_accesses * self.technology.memory_access_energy
