"""Miss status holding registers (MSHRs).

A non-blocking cache tracks outstanding misses in MSHRs; while free MSHRs
remain the processor can keep issuing, which is how the out-of-order
configuration hides data-cache miss latency.  The simulator uses the MSHR
file at interval granularity: it estimates how many of an interval's misses
could overlap given the MSHR count and the memory-level parallelism the
workload exposes.
"""

from __future__ import annotations

from typing import Dict, List

from repro.common.config import CoreConfig
from repro.common.errors import ConfigurationError


class MshrFile:
    """A simple MSHR file with secondary-miss merging.

    The event-level interface (:meth:`allocate` / :meth:`release`) is used by
    the unit tests and by callers that track individual outstanding misses;
    :meth:`overlap_factor` provides the interval-level summary the timing
    models consume.
    """

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ConfigurationError(f"MSHR file needs at least one entry, got {num_entries}")
        self.num_entries = num_entries
        self._outstanding: Dict[int, int] = {}
        self.primary_misses = 0
        self.secondary_misses = 0
        self.rejected = 0

    @classmethod
    def from_core(cls, core: CoreConfig) -> "MshrFile":
        """Create an MSHR file sized per the core configuration."""
        return cls(core.mshr_entries)

    def allocate(self, block_address: int) -> bool:
        """Record a miss to ``block_address``.

        Returns True when the miss can proceed (a new or merged entry),
        False when every MSHR is busy with other blocks and the miss must
        stall (counted in :attr:`rejected`).
        """
        if block_address in self._outstanding:
            self._outstanding[block_address] += 1
            self.secondary_misses += 1
            return True
        if len(self._outstanding) >= self.num_entries:
            self.rejected += 1
            return False
        self._outstanding[block_address] = 1
        self.primary_misses += 1
        return True

    def release(self, block_address: int) -> None:
        """Retire the outstanding miss for ``block_address`` (fill returned)."""
        self._outstanding.pop(block_address, None)

    def outstanding(self) -> List[int]:
        """Block addresses of currently outstanding misses."""
        return list(self._outstanding)

    @property
    def occupancy(self) -> int:
        """Number of MSHRs currently in use."""
        return len(self._outstanding)

    def overlap_factor(self, exposed_parallelism: float) -> float:
        """Effective number of misses serviced concurrently.

        ``exposed_parallelism`` is the workload's memory-level parallelism
        (average number of independent misses the instruction window could
        issue together); the MSHR count caps it.  The result is always at
        least 1.0 (a miss can never take less than one full memory latency).
        """
        if exposed_parallelism < 1.0:
            exposed_parallelism = 1.0
        return min(float(self.num_entries), exposed_parallelism)

    def reset(self) -> None:
        """Clear outstanding entries and statistics."""
        self._outstanding.clear()
        self.primary_misses = 0
        self.secondary_misses = 0
        self.rejected = 0
