"""Write-back buffer.

Dirty victims evicted from the L1 data cache are staged in a small buffer
before being written to L2 so that the processor does not stall on them.
The buffer only stalls the core when it is full, which the timing models
account for with a small per-overflow penalty.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.common.config import CoreConfig
from repro.common.errors import ConfigurationError


class WritebackBuffer:
    """A FIFO of pending writebacks with overflow accounting.

    ``push`` sits on the hierarchy kernel's L1-miss path, so the buffer
    keeps plain-int counters and slotted attributes — pushing an entry
    allocates nothing.
    """

    __slots__ = ("num_entries", "_pending", "enqueued", "drained", "overflows")

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ConfigurationError(
                f"writeback buffer needs at least one entry, got {num_entries}"
            )
        self.num_entries = num_entries
        self._pending: Deque[int] = deque()
        self.enqueued = 0
        self.drained = 0
        self.overflows = 0

    @classmethod
    def from_core(cls, core: CoreConfig) -> "WritebackBuffer":
        """Create a buffer sized per the core configuration."""
        return cls(core.writeback_buffer_entries)

    def push(self, block_address: int) -> bool:
        """Enqueue a writeback.

        Returns True when the buffer accepted the entry without stalling;
        False when the buffer was full, in which case the oldest entry is
        drained immediately (modelled as a stall counted in
        :attr:`overflows`) to make room.
        """
        self.enqueued += 1
        if len(self._pending) >= self.num_entries:
            self.overflows += 1
            self._pending.popleft()
            self.drained += 1
            self._pending.append(block_address)
            return False
        self._pending.append(block_address)
        return True

    def drain_one(self) -> Optional[int]:
        """Drain the oldest pending writeback (None when empty)."""
        if not self._pending:
            return None
        self.drained += 1
        return self._pending.popleft()

    def drain_all(self) -> list:
        """Drain every pending writeback and return their block addresses."""
        drained = list(self._pending)
        self.drained += len(drained)
        self._pending.clear()
        return drained

    @property
    def occupancy(self) -> int:
        """Number of writebacks currently buffered."""
        return len(self._pending)

    def reset(self) -> None:
        """Clear contents and statistics."""
        self._pending.clear()
        self.enqueued = 0
        self.drained = 0
        self.overflows = 0
