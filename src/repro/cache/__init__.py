"""Conventional (non-resizable) cache substrate.

This package implements the RAM-tag set-associative caches the paper builds
on: replacement policies, cache sets, SRAM subarray book-keeping, a
write-back/write-allocate cache, MSHRs, a write-back buffer and the two-level
hierarchy (L1 instruction + data caches over a unified L2 over main memory).

The per-access hot path is an allocation-free packed-integer kernel
(``access_packed`` on the caches, ``data_access_packed`` /
``instruction_fetch_packed`` on the hierarchy); the object-returning APIs
are thin wrappers over it.  See :mod:`repro.cache.cache` and
:mod:`repro.cache.hierarchy` for the packed bit layouts.
"""

from repro.cache.replacement import ReplacementPolicy
from repro.cache.cache_set import CacheSet
from repro.cache.subarray import SubarrayMap
from repro.cache.cache import (
    AccessResult,
    Cache,
    CacheStats,
    pack_access_result,
    unpack_access_result,
)
from repro.cache.mshr import MshrFile
from repro.cache.writeback_buffer import WritebackBuffer
from repro.cache.hierarchy import (
    CacheHierarchy,
    HierarchyAccessOutcome,
    unpack_hierarchy_outcome,
)

__all__ = [
    "ReplacementPolicy",
    "CacheSet",
    "SubarrayMap",
    "AccessResult",
    "Cache",
    "CacheStats",
    "MshrFile",
    "WritebackBuffer",
    "CacheHierarchy",
    "HierarchyAccessOutcome",
    "pack_access_result",
    "unpack_access_result",
    "unpack_hierarchy_outcome",
]
