"""Conventional (non-resizable) cache substrate.

This package implements the RAM-tag set-associative caches the paper builds
on: replacement policies, cache sets, SRAM subarray book-keeping, a
write-back/write-allocate cache, MSHRs, a write-back buffer and the two-level
hierarchy (L1 instruction + data caches over a unified L2 over main memory).
"""

from repro.cache.replacement import ReplacementPolicy
from repro.cache.cache_set import CacheSet
from repro.cache.subarray import SubarrayMap
from repro.cache.cache import AccessResult, Cache, CacheStats
from repro.cache.mshr import MshrFile
from repro.cache.writeback_buffer import WritebackBuffer
from repro.cache.hierarchy import CacheHierarchy, HierarchyAccessOutcome

__all__ = [
    "ReplacementPolicy",
    "CacheSet",
    "SubarrayMap",
    "AccessResult",
    "Cache",
    "CacheStats",
    "MshrFile",
    "WritebackBuffer",
    "CacheHierarchy",
    "HierarchyAccessOutcome",
]
