"""A single cache set with an adjustable number of ways.

The set keeps its resident blocks in a plain dict keyed by tag; Python dicts
preserve insertion order, so deleting and re-inserting a tag on a hit gives
LRU ordering without any auxiliary data structure.  The capacity (number of
ways) can be lowered or raised at run time, which is what selective-ways
resizing needs.

Block state is stored *packed*: each resident tag maps to the integer
``(block_address << 1) | dirty`` instead of a :class:`CacheBlock` object.
The packed-int methods (``fill_packed``, ``drain_packed``, ...) are the real
implementation and allocate nothing per access; the historical
object-returning methods survive as thin wrappers that materialise
:class:`CacheBlock` instances on demand for callers off the hot path (tests,
introspection).  The cache kernels in :mod:`repro.cache.cache` and
:mod:`repro.resizing.resizable_cache` bypass even these methods and operate
directly on the live dict returned by :meth:`packed_storage`.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.replacement import ReplacementPolicy, VictimSelector
from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng
from repro.mem.block import CacheBlock

#: Base seed for RANDOM-replacement victim selection; per-cache seeds are
#: derived from it via :func:`selector_seed` so distinct caches draw
#: distinct victim streams.
BASE_SELECTOR_SEED = 0xC0FFEE


def selector_seed(name: str) -> int:
    """Derive a deterministic per-cache selector seed from the cache name.

    Two caches with different names (``l1i``/``l1d``/``l2``) get different
    victim streams under RANDOM replacement; the derivation is stable across
    processes and Python versions (CRC-32, not ``hash()``).
    """
    return (BASE_SELECTOR_SEED ^ zlib.crc32(name.encode("utf-8"))) & 0x7FFFFFFF


def pack_block(address: int, dirty: bool) -> int:
    """Pack a block-aligned address and dirty bit into one int."""
    return (address << 1) | (1 if dirty else 0)


def unpack_block(packed: int) -> CacheBlock:
    """Materialise a :class:`CacheBlock` from its packed representation."""
    return CacheBlock(packed >> 1, dirty=bool(packed & 1))


class CacheSet:
    """One set of a set-associative cache."""

    __slots__ = ("capacity", "_blocks", "_selector", "_refresh_on_hit")

    def __init__(self, capacity: int, selector: VictimSelector) -> None:
        if capacity < 1:
            raise ConfigurationError(f"set capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._blocks: Dict[int, int] = {}
        self._selector = selector
        self._refresh_on_hit = selector.refreshes_on_hit

    # ------------------------------------------------------------- packed API
    def packed_storage(self) -> Dict[int, int]:
        """The live ``tag -> (block_address << 1 | dirty)`` dict.

        The cache kernels hoist this dict into a local once and then do all
        per-access work on it directly.  The dict object is stable for the
        lifetime of the set (it is mutated in place, never replaced), which
        is what makes that hoisting safe.  Mutating it bypasses the
        capacity check, so only the owning cache should write through it.
        """
        return self._blocks

    def lookup_packed(self, tag: int) -> Optional[int]:
        """Packed block for ``tag`` or None; refreshes LRU order on hit."""
        packed = self._blocks.get(tag)
        if packed is not None and self._refresh_on_hit:
            del self._blocks[tag]
            self._blocks[tag] = packed
        return packed

    def fill_packed(self, tag: int, packed: int) -> Optional[int]:
        """Insert a packed block, evicting the policy's victim if full.

        Returns the evicted packed block, or None when no eviction was
        necessary.  The caller writes back the victim if its dirty bit is
        set.
        """
        blocks = self._blocks
        victim = None
        if tag in blocks:
            # Refill of an already-resident tag (e.g. after an upgrade); the
            # previous copy is replaced in place.
            victim = blocks.pop(tag)
        elif len(blocks) >= self.capacity:
            victim_tag = self._selector.choose_victim(blocks)
            victim = blocks.pop(victim_tag)
        blocks[tag] = packed
        return victim

    def invalidate_packed(self, tag: int) -> Optional[int]:
        """Remove and return the packed block with ``tag`` (None if absent)."""
        return self._blocks.pop(tag, None)

    def set_capacity_packed(self, capacity: int) -> List[int]:
        """Change the number of ways; returns packed blocks evicted by shrinking."""
        if capacity < 1:
            raise ConfigurationError(f"set capacity must be at least 1, got {capacity}")
        evicted: List[int] = []
        self.capacity = capacity
        blocks = self._blocks
        while len(blocks) > capacity:
            victim_tag = self._selector.choose_victim(blocks)
            evicted.append(blocks.pop(victim_tag))
        return evicted

    def drain_packed(self) -> List[int]:
        """Remove and return every resident block in packed form."""
        drained = list(self._blocks.values())
        self._blocks.clear()
        return drained

    def residents_packed(self) -> Iterable[Tuple[int, int]]:
        """Iterate over ``(tag, packed_block)`` pairs resident in the set."""
        return self._blocks.items()

    # ----------------------------------------------- object-returning wrappers
    def lookup(self, tag: int) -> Optional[CacheBlock]:
        """Return the resident block for ``tag`` or None; refreshes LRU on hit.

        The returned :class:`CacheBlock` is a snapshot materialised from the
        packed state — mutating it does not write through to the set (use
        the owning cache's access path, or ``fill``, to change state).
        """
        packed = self.lookup_packed(tag)
        return None if packed is None else unpack_block(packed)

    def probe(self, tag: int) -> Optional[CacheBlock]:
        """Return the resident block for ``tag`` without touching replacement state."""
        packed = self._blocks.get(tag)
        return None if packed is None else unpack_block(packed)

    def fill(self, tag: int, block: CacheBlock) -> Optional[CacheBlock]:
        """Insert a block, evicting the policy's victim if the set is full."""
        victim = self.fill_packed(tag, pack_block(block.address, block.dirty))
        return None if victim is None else unpack_block(victim)

    def invalidate(self, tag: int) -> Optional[CacheBlock]:
        """Remove and return the block with ``tag`` (None if absent)."""
        packed = self.invalidate_packed(tag)
        return None if packed is None else unpack_block(packed)

    def set_capacity(self, capacity: int) -> List[CacheBlock]:
        """Change the number of ways; returns any blocks evicted by shrinking."""
        return [unpack_block(packed) for packed in self.set_capacity_packed(capacity)]

    def drain(self) -> List[CacheBlock]:
        """Remove and return every resident block."""
        return [unpack_block(packed) for packed in self.drain_packed()]

    def residents(self) -> Iterable[Tuple[int, CacheBlock]]:
        """Iterate over ``(tag, block)`` pairs currently resident in the set."""
        return [(tag, unpack_block(packed)) for tag, packed in self._blocks.items()]

    @property
    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return len(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        return f"CacheSet(capacity={self.capacity}, occupancy={len(self._blocks)})"


def build_sets(
    capacity: int, selector: VictimSelector, count: int
) -> Tuple[List[CacheSet], List[Dict[int, int]]]:
    """Construct ``count`` identical empty sets plus their packed dicts.

    The bulk constructor the cache kernels use: validation and the
    replacement-policy refresh flag are hoisted out of the per-set loop and
    the sets are built with direct slot writes, so constructing a large
    cache (the L2 alone has four-digit set counts, and a fused ladder
    builds K hierarchies up front) does not pay ``count`` constructor
    frames plus ``count`` property lookups.  Returns ``(sets, blocks)``
    with ``blocks[i] is sets[i].packed_storage()``, saving the second pass
    the kernels would otherwise make to collect the live dicts.
    """
    if capacity < 1:
        raise ConfigurationError(f"set capacity must be at least 1, got {capacity}")
    refresh = selector.refreshes_on_hit
    new = CacheSet.__new__
    sets: List[CacheSet] = []
    blocks: List[Dict[int, int]] = []
    sets_append = sets.append
    blocks_append = blocks.append
    for _ in range(count):
        cache_set = new(CacheSet)
        storage: Dict[int, int] = {}
        cache_set.capacity = capacity
        cache_set._blocks = storage
        cache_set._selector = selector
        cache_set._refresh_on_hit = refresh
        sets_append(cache_set)
        blocks_append(storage)
    return sets, blocks


def wrap_sets(
    capacity: int, selector: VictimSelector, blocks: List[Dict[int, int]]
) -> List[CacheSet]:
    """Materialise :class:`CacheSet` wrappers around existing packed dicts.

    The lazy half of :func:`build_sets`: a fixed cache allocates only the
    packed dicts up front (a plain list comprehension, an order of
    magnitude cheaper than ``count`` wrapper objects) and wraps them here
    the first time something off the hot path asks for set *objects*.  The
    wrappers share the live dicts, so state written through either view is
    seen by both.
    """
    if capacity < 1:
        raise ConfigurationError(f"set capacity must be at least 1, got {capacity}")
    refresh = selector.refreshes_on_hit
    new = CacheSet.__new__
    sets: List[CacheSet] = []
    sets_append = sets.append
    for storage in blocks:
        cache_set = new(CacheSet)
        cache_set.capacity = capacity
        cache_set._blocks = storage
        cache_set._selector = selector
        cache_set._refresh_on_hit = refresh
        sets_append(cache_set)
    return sets


def make_selector(policy, seed: int = BASE_SELECTOR_SEED) -> VictimSelector:
    """Build a :class:`VictimSelector` from a policy name or enum member."""
    parsed = ReplacementPolicy.parse(policy)
    if parsed is ReplacementPolicy.RANDOM:
        return VictimSelector(parsed, DeterministicRng(seed))
    return VictimSelector(parsed)
