"""A single cache set with an adjustable number of ways.

The set keeps its resident blocks in a plain dict keyed by tag; Python dicts
preserve insertion order, so deleting and re-inserting a tag on a hit gives
LRU ordering without any auxiliary data structure.  The capacity (number of
ways) can be lowered or raised at run time, which is what selective-ways
resizing needs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.replacement import ReplacementPolicy, VictimSelector
from repro.common.errors import ConfigurationError
from repro.mem.block import CacheBlock


class CacheSet:
    """One set of a set-associative cache."""

    __slots__ = ("capacity", "_blocks", "_selector", "_refresh_on_hit")

    def __init__(self, capacity: int, selector: VictimSelector) -> None:
        if capacity < 1:
            raise ConfigurationError(f"set capacity must be at least 1, got {capacity}")
        self.capacity = capacity
        self._blocks: Dict[int, CacheBlock] = {}
        self._selector = selector
        self._refresh_on_hit = selector.refreshes_on_hit

    def lookup(self, tag: int) -> Optional[CacheBlock]:
        """Return the resident block for ``tag`` or None; refreshes LRU order on hit."""
        block = self._blocks.get(tag)
        if block is not None and self._refresh_on_hit:
            del self._blocks[tag]
            self._blocks[tag] = block
        return block

    def probe(self, tag: int) -> Optional[CacheBlock]:
        """Return the resident block for ``tag`` without touching replacement state."""
        return self._blocks.get(tag)

    def fill(self, tag: int, block: CacheBlock) -> Optional[CacheBlock]:
        """Insert a block, evicting the policy's victim if the set is full.

        Returns the evicted block, or None when no eviction was necessary.
        The caller is responsible for writing back the victim if it is dirty.
        """
        victim = None
        if tag in self._blocks:
            # Refill of an already-resident tag (e.g. after an upgrade); the
            # previous copy is replaced in place.
            victim = self._blocks.pop(tag)
        elif len(self._blocks) >= self.capacity:
            victim_tag = self._selector.choose_victim(self._blocks)
            victim = self._blocks.pop(victim_tag)
        self._blocks[tag] = block
        return victim

    def invalidate(self, tag: int) -> Optional[CacheBlock]:
        """Remove and return the block with ``tag`` (None if absent)."""
        return self._blocks.pop(tag, None)

    def set_capacity(self, capacity: int) -> List[CacheBlock]:
        """Change the number of ways; returns any blocks evicted by shrinking."""
        if capacity < 1:
            raise ConfigurationError(f"set capacity must be at least 1, got {capacity}")
        evicted: List[CacheBlock] = []
        self.capacity = capacity
        while len(self._blocks) > self.capacity:
            victim_tag = self._selector.choose_victim(self._blocks)
            evicted.append(self._blocks.pop(victim_tag))
        return evicted

    def drain(self) -> List[CacheBlock]:
        """Remove and return every resident block."""
        drained = list(self._blocks.values())
        self._blocks.clear()
        return drained

    def residents(self) -> Iterable[Tuple[int, CacheBlock]]:
        """Iterate over ``(tag, block)`` pairs currently resident in the set."""
        return self._blocks.items()

    @property
    def occupancy(self) -> int:
        """Number of valid blocks currently resident."""
        return len(self._blocks)

    def __len__(self) -> int:
        return len(self._blocks)

    def __repr__(self) -> str:
        return f"CacheSet(capacity={self.capacity}, occupancy={len(self._blocks)})"


def make_selector(policy, seed: int = 0xC0FFEE) -> VictimSelector:
    """Build a :class:`VictimSelector` from a policy name or enum member."""
    from repro.common.rng import DeterministicRng

    parsed = ReplacementPolicy.parse(policy)
    if parsed is ReplacementPolicy.RANDOM:
        return VictimSelector(parsed, DeterministicRng(seed))
    return VictimSelector(parsed)
