"""Block replacement policies.

The paper's caches use LRU replacement (the SimpleScalar default).  FIFO and
random are provided as well so that tests can check the cache machinery is
independent of the replacement choice and so that downstream users can run
their own sensitivity studies.
"""

from __future__ import annotations

from enum import Enum

from repro.common.errors import ConfigurationError
from repro.common.rng import DeterministicRng


class ReplacementPolicy(str, Enum):
    """Supported block replacement policies."""

    LRU = "lru"
    FIFO = "fifo"
    RANDOM = "random"

    @classmethod
    def parse(cls, value) -> "ReplacementPolicy":
        """Coerce a string or enum member into a :class:`ReplacementPolicy`."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError as exc:
                raise ConfigurationError(f"unknown replacement policy {value!r}") from exc
        raise ConfigurationError(f"unknown replacement policy {value!r}")


class VictimSelector:
    """Chooses the victim tag within a set for the configured policy.

    For LRU and FIFO the victim is simply the oldest entry of the set's
    insertion-ordered tag dictionary (LRU additionally refreshes entries on
    hits, which is handled by :class:`repro.cache.cache_set.CacheSet`).  For
    random replacement a deterministic RNG picks any resident tag.
    """

    __slots__ = ("policy", "_rng")

    def __init__(self, policy: ReplacementPolicy, rng: DeterministicRng | None = None) -> None:
        self.policy = ReplacementPolicy.parse(policy)
        if self.policy is ReplacementPolicy.RANDOM and rng is None:
            rng = DeterministicRng(seed=0xC0FFEE)
        self._rng = rng

    def choose_victim(self, resident_tags) -> int:
        """Return the tag to evict from ``resident_tags`` (a non-empty dict view)."""
        if self.policy is ReplacementPolicy.RANDOM:
            return self._rng.choice(list(resident_tags))
        # LRU / FIFO: the first key in insertion order is the oldest.
        return next(iter(resident_tags))

    @property
    def refreshes_on_hit(self) -> bool:
        """True when a hit should move the block to most-recently-used position."""
        return self.policy is ReplacementPolicy.LRU
