"""Write-back, write-allocate set-associative cache.

:class:`Cache` is the fixed-geometry building block: the L2 cache uses it
directly and the resizable L1 caches (:mod:`repro.resizing.resizable_cache`)
share its sets, blocks and replacement machinery while adding enable/disable
masks on top.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.cache_set import CacheSet, make_selector
from repro.cache.replacement import ReplacementPolicy
from repro.common.config import CacheGeometry
from repro.mem.address import AddressMapper, block_address
from repro.mem.block import CacheBlock


class AccessResult:
    """Outcome of a single cache access.

    Attributes:
        hit: True when the access hit in the cache.
        writeback_address: block address of a dirty victim evicted to make
            room for the fill, or None when nothing needs to be written back.
        filled: True when the access allocated a new block (always the case
            on a miss for a write-allocate cache).
    """

    __slots__ = ("hit", "writeback_address", "filled")

    def __init__(
        self, hit: bool, writeback_address: Optional[int] = None, filled: bool = False
    ) -> None:
        self.hit = hit
        self.writeback_address = writeback_address
        self.filled = filled

    def __repr__(self) -> str:
        outcome = "hit" if self.hit else "miss"
        return f"AccessResult({outcome}, writeback={self.writeback_address}, filled={self.filled})"


class CacheStats:
    """Plain-integer counters kept directly on the cache for speed."""

    __slots__ = (
        "accesses",
        "hits",
        "misses",
        "reads",
        "writes",
        "read_misses",
        "write_misses",
        "writebacks",
        "fills",
        "invalidations",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.reads = 0
        self.writes = 0
        self.read_misses = 0
        self.write_misses = 0
        self.writebacks = 0
        self.fills = 0
        self.invalidations = 0

    @property
    def miss_ratio(self) -> float:
        """misses / accesses (0.0 when the cache has not been accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def as_dict(self) -> dict:
        """Export the counters as a plain dictionary."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"CacheStats(accesses={self.accesses}, misses={self.misses}, "
            f"miss_ratio={self.miss_ratio:.4f})"
        )


class Cache:
    """A conventional write-back, write-allocate set-associative cache."""

    def __init__(
        self,
        geometry: CacheGeometry,
        replacement: ReplacementPolicy = ReplacementPolicy.LRU,
        name: str = "cache",
    ) -> None:
        self.geometry = geometry
        self.name = name
        self.replacement = ReplacementPolicy.parse(replacement)
        self._selector = make_selector(self.replacement)
        self._mapper = AddressMapper(geometry.block_bytes, geometry.num_sets)
        self._sets: List[CacheSet] = [
            CacheSet(geometry.associativity, self._selector) for _ in range(geometry.num_sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------------ access
    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform a load or store access.

        On a miss the block is allocated immediately (write-allocate); if a
        dirty victim is displaced its block address is reported in the
        result so the caller can forward the writeback to the next level.
        """
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        tag, index = self._mapper.split(address)
        cache_set = self._sets[index]
        block = cache_set.lookup(tag)
        if block is not None:
            stats.hits += 1
            if is_write:
                block.dirty = True
            return AccessResult(hit=True)

        stats.misses += 1
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        new_block = CacheBlock(block_address(address, self.geometry.block_bytes), dirty=is_write)
        victim = cache_set.fill(tag, new_block)
        stats.fills += 1
        writeback_address = None
        if victim is not None and victim.dirty:
            stats.writebacks += 1
            writeback_address = victim.address
        return AccessResult(hit=False, writeback_address=writeback_address, filled=True)

    def probe(self, address: int) -> bool:
        """Return True when ``address`` is resident, without updating any state."""
        tag, index = self._mapper.split(address)
        return self._sets[index].probe(tag) is not None

    def invalidate(self, address: int) -> Optional[int]:
        """Invalidate a block; returns its address if it was dirty (needs writeback)."""
        tag, index = self._mapper.split(address)
        victim = self._sets[index].invalidate(tag)
        if victim is None:
            return None
        self.stats.invalidations += 1
        if victim.dirty:
            self.stats.writebacks += 1
            return victim.address
        return None

    def flush_all(self) -> List[int]:
        """Invalidate the whole cache; returns addresses of dirty blocks written back."""
        dirty_addresses: List[int] = []
        for cache_set in self._sets:
            for block in cache_set.drain():
                self.stats.invalidations += 1
                if block.dirty:
                    self.stats.writebacks += 1
                    dirty_addresses.append(block.address)
        return dirty_addresses

    # ------------------------------------------------------------ introspection
    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.geometry.num_sets

    @property
    def associativity(self) -> int:
        """Number of ways in the cache."""
        return self.geometry.associativity

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.geometry.capacity_bytes

    def resident_blocks(self) -> int:
        """Total number of valid blocks currently resident."""
        return sum(cache_set.occupancy for cache_set in self._sets)

    def reset_stats(self) -> None:
        """Zero all counters without touching cache contents."""
        self.stats.reset()

    def __repr__(self) -> str:
        return f"Cache({self.name}, {self.geometry.describe()})"
