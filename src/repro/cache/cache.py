"""Write-back, write-allocate set-associative cache.

:class:`Cache` is the fixed-geometry building block: the L2 cache uses it
directly and the resizable L1 caches (:mod:`repro.resizing.resizable_cache`)
share its sets, blocks and replacement machinery while adding enable/disable
masks on top.

Architecture note — the packed-outcome kernel
---------------------------------------------
The per-access hot path is :meth:`Cache.access_packed`: an allocation-free
integer kernel.  Set state is packed (``tag -> block_address << 1 | dirty``
ints, see :mod:`repro.cache.cache_set`), the tag/index split is done with
shift/mask locals hoisted at construction time, and the outcome of an access
is returned as one packed int (bit layout below) instead of an
:class:`AccessResult` — zero heap allocations per access, hit or miss.

Packed access-outcome bit layout (``PACKED_*`` constants)::

    bit 0   PACKED_HIT              1 = hit, 0 = miss
    bit 1   PACKED_FILLED           1 = a block was allocated (every miss;
                                    write-allocate)
    bit 2   PACKED_WRITEBACK_VALID  1 = a dirty victim was evicted
    bit 3+  victim's block-aligned address (valid only when bit 2 is set)

:meth:`Cache.access` is a thin wrapper that decodes the packed int into the
historical :class:`AccessResult`; everything off the hot path (tests, the
resize/flush machinery, external callers) keeps the object API and stays
bit-identical by construction.  To add a new cache type that plugs into
:class:`repro.cache.hierarchy.CacheHierarchy`, implement ``access_packed``
with this bit layout (plus ``stats``/``flush_all``); ``access`` can be
``unpack_access_result(self.access_packed(...))``.  A cache that only
implements the object API still works — the hierarchy adapts it — it is
just slower.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.cache_set import CacheSet, make_selector, selector_seed, wrap_sets
from repro.cache.replacement import ReplacementPolicy
from repro.common.config import CacheGeometry
from repro.mem.address import AddressMapper

#: Packed access-outcome bits (see the module docstring for the layout).
PACKED_HIT = 0b001
PACKED_FILLED = 0b010
PACKED_WRITEBACK_VALID = 0b100
PACKED_WRITEBACK_SHIFT = 3

#: The two outcomes with no writeback address, precomputed.
PACKED_HIT_RESULT = PACKED_HIT
PACKED_MISS_RESULT = PACKED_FILLED


def pack_access_result(
    hit: bool, writeback_address: Optional[int] = None, filled: bool = False
) -> int:
    """Encode an access outcome into the packed-int representation."""
    packed = (PACKED_HIT if hit else 0) | (PACKED_FILLED if filled else 0)
    if writeback_address is not None:
        packed |= PACKED_WRITEBACK_VALID | (writeback_address << PACKED_WRITEBACK_SHIFT)
    return packed


def unpack_access_result(packed: int) -> "AccessResult":
    """Decode a packed access outcome into an :class:`AccessResult`."""
    if packed & PACKED_HIT:
        return AccessResult(hit=True)
    writeback = None
    if packed & PACKED_WRITEBACK_VALID:
        writeback = packed >> PACKED_WRITEBACK_SHIFT
    return AccessResult(
        hit=False, writeback_address=writeback, filled=bool(packed & PACKED_FILLED)
    )


class AccessResult:
    """Outcome of a single cache access (object view of the packed outcome).

    Attributes:
        hit: True when the access hit in the cache.
        writeback_address: block address of a dirty victim evicted to make
            room for the fill, or None when nothing needs to be written back.
        filled: True when the access allocated a new block (always the case
            on a miss for a write-allocate cache).
    """

    __slots__ = ("hit", "writeback_address", "filled")

    def __init__(
        self, hit: bool, writeback_address: Optional[int] = None, filled: bool = False
    ) -> None:
        self.hit = hit
        self.writeback_address = writeback_address
        self.filled = filled

    def __repr__(self) -> str:
        outcome = "hit" if self.hit else "miss"
        return f"AccessResult({outcome}, writeback={self.writeback_address}, filled={self.filled})"


class CacheStats:
    """Plain-integer counters kept directly on the cache for speed."""

    __slots__ = (
        "accesses",
        "hits",
        "misses",
        "reads",
        "writes",
        "read_misses",
        "write_misses",
        "writebacks",
        "fills",
        "invalidations",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter."""
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.reads = 0
        self.writes = 0
        self.read_misses = 0
        self.write_misses = 0
        self.writebacks = 0
        self.fills = 0
        self.invalidations = 0

    @property
    def miss_ratio(self) -> float:
        """misses / accesses (0.0 when the cache has not been accessed)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def as_dict(self) -> dict:
        """Export the counters as a plain dictionary."""
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        return (
            f"CacheStats(accesses={self.accesses}, misses={self.misses}, "
            f"miss_ratio={self.miss_ratio:.4f})"
        )


class Cache:
    """A conventional write-back, write-allocate set-associative cache."""

    def __init__(
        self,
        geometry: CacheGeometry,
        replacement: ReplacementPolicy = ReplacementPolicy.LRU,
        name: str = "cache",
    ) -> None:
        self.geometry = geometry
        self.name = name
        self.replacement = ReplacementPolicy.parse(replacement)
        # Per-cache seed: two caches (l1i/l1d/l2) never share one victim
        # stream under RANDOM replacement.
        self._selector = make_selector(self.replacement, seed=selector_seed(name))
        self._mapper = AddressMapper(geometry.block_bytes, geometry.num_sets)
        # Kernel locals: the tag/index split as plain shift/mask ints, the
        # per-set packed dicts as a flat list (dict objects are stable for
        # the cache's lifetime), and the replacement mode flags.  Only the
        # dicts exist up front; the CacheSet wrapper objects — needed by
        # nothing on the hot path — materialise lazily via the ``_sets``
        # property.  A fused ladder builds K hierarchies (each with a
        # four-digit-set L2) per job, so eager wrappers are a measurable
        # construction tax for objects most runs never touch.
        self._set_blocks = [{} for _ in range(geometry.num_sets)]
        self._sets_built: Optional[List[CacheSet]] = None
        self.stats = CacheStats()
        self._offset_bits, self._index_bits, self._set_mask = self._mapper.shift_mask()
        self._ways = geometry.associativity
        self._refresh_on_hit = self._selector.refreshes_on_hit
        self._random_victims = self.replacement is ReplacementPolicy.RANDOM

    @property
    def _sets(self) -> List[CacheSet]:
        """CacheSet wrappers over the live packed dicts, built on first use."""
        sets = self._sets_built
        if sets is None:
            sets = self._sets_built = wrap_sets(
                self._ways, self._selector, self._set_blocks
            )
        return sets

    @_sets.setter
    def _sets(self, value: List[CacheSet]) -> None:
        # Subclasses (the resizable caches) construct their sets eagerly —
        # they genuinely resize them — and assign through here.
        self._sets_built = value

    def _kernel_state(self):
        """The access kernel's hoistable state, as one flat tuple.

        ``(stats, set_blocks, offset_bits, index_bits, set_mask, ways,
        refresh_on_hit, random_victims, selector)`` — everything
        :meth:`access_packed` reads per access.  The dispatch loops in
        :mod:`repro.sim.engine` / :mod:`repro.sim.ladder` hoist these into
        locals once per interval and run the hit path inline (stat deltas
        are accumulated locally and flushed into ``stats`` before the
        interval closes, so anything observing stats at interval
        boundaries sees exactly the per-call kernel's values).  The tuple
        is only valid until the geometry changes — for this fixed cache,
        forever; the resizable override re-derives it after each resize,
        which is why callers must re-fetch it every interval.
        """
        return (
            self.stats, self._set_blocks, self._offset_bits, self._index_bits,
            self._set_mask, self._ways, self._refresh_on_hit,
            self._random_victims, self._selector,
        )

    # ------------------------------------------------------------------ access
    def access_packed(self, address: int, is_write: bool = False) -> int:
        """Allocation-free access kernel; returns a packed outcome int.

        Same semantics as :meth:`access` (write-allocate, immediate fill on
        miss, dirty victim reported for writeback) with the outcome encoded
        in the ``PACKED_*`` bit layout — no objects are created, hit or
        miss.
        """
        stats = self.stats
        stats.accesses += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1

        block = address >> self._offset_bits
        tag = block >> self._index_bits
        blocks = self._set_blocks[block & self._set_mask]
        packed = blocks.get(tag)
        if packed is not None:
            stats.hits += 1
            if is_write:
                packed |= 1
                if self._refresh_on_hit:
                    del blocks[tag]
                blocks[tag] = packed
            elif self._refresh_on_hit:
                del blocks[tag]
                blocks[tag] = packed
            return PACKED_HIT_RESULT

        stats.misses += 1
        if is_write:
            stats.write_misses += 1
        else:
            stats.read_misses += 1

        victim = None
        if len(blocks) >= self._ways:
            if self._random_victims:
                victim_tag = self._selector.choose_victim(blocks)
            else:
                victim_tag = next(iter(blocks))
            victim = blocks.pop(victim_tag)
        # block << offset_bits is the block-aligned address; the packed
        # block representation is (block_address << 1) | dirty.
        blocks[tag] = (block << (self._offset_bits + 1)) | (1 if is_write else 0)
        stats.fills += 1
        if victim is not None and victim & 1:
            stats.writebacks += 1
            return (
                PACKED_FILLED
                | PACKED_WRITEBACK_VALID
                | ((victim >> 1) << PACKED_WRITEBACK_SHIFT)
            )
        return PACKED_MISS_RESULT

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Perform a load or store access (object wrapper over the kernel).

        On a miss the block is allocated immediately (write-allocate); if a
        dirty victim is displaced its block address is reported in the
        result so the caller can forward the writeback to the next level.
        """
        return unpack_access_result(self.access_packed(address, is_write))

    def probe(self, address: int) -> bool:
        """Return True when ``address`` is resident, without updating any state."""
        tag, index = self._mapper.split(address)
        return tag in self._set_blocks[index]

    def invalidate(self, address: int) -> Optional[int]:
        """Invalidate a block; returns its address if it was dirty (needs writeback)."""
        tag, index = self._mapper.split(address)
        victim = self._set_blocks[index].pop(tag, None)
        if victim is None:
            return None
        self.stats.invalidations += 1
        if victim & 1:
            self.stats.writebacks += 1
            return victim >> 1
        return None

    def flush_all(self) -> List[int]:
        """Invalidate the whole cache; returns addresses of dirty blocks written back."""
        dirty_addresses: List[int] = []
        stats = self.stats
        for blocks in self._set_blocks:
            for packed in blocks.values():
                stats.invalidations += 1
                if packed & 1:
                    stats.writebacks += 1
                    dirty_addresses.append(packed >> 1)
            blocks.clear()
        return dirty_addresses

    # ------------------------------------------------------------ introspection
    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.geometry.num_sets

    @property
    def associativity(self) -> int:
        """Number of ways in the cache."""
        return self.geometry.associativity

    @property
    def capacity_bytes(self) -> int:
        """Total capacity in bytes."""
        return self.geometry.capacity_bytes

    def resident_blocks(self) -> int:
        """Total number of valid blocks currently resident."""
        return sum(len(blocks) for blocks in self._set_blocks)

    def reset_stats(self) -> None:
        """Zero all counters without touching cache contents."""
        self.stats.reset()

    def __repr__(self) -> str:
        return f"Cache({self.name}, {self.geometry.describe()})"
