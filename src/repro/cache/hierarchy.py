"""Two-level cache hierarchy.

The hierarchy wires the (possibly resizable) L1 instruction and data caches
to a unified L2 and main memory, routes writebacks through the write-back
buffer, and reports per-access latency so the timing models can expose or
hide it depending on the core configuration.

Any object exposing the :class:`repro.cache.cache.Cache` access interface
(``access``, ``flush_all``, ``stats``) can serve as an L1, which is how the
resizable caches plug in without the hierarchy knowing about resizing.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cache.cache import Cache
from repro.cache.writeback_buffer import WritebackBuffer
from repro.common.config import SystemConfig
from repro.mem.main_memory import MainMemory


class HierarchyAccessOutcome:
    """Result of one instruction-fetch or data access through the hierarchy.

    Attributes:
        l1_hit: True when the access hit in its L1 cache.
        l2_hit: True/False when the L2 was consulted, None on an L1 hit.
        latency: total latency in cycles seen by the requesting instruction.
        l2_accesses: number of L2 accesses performed (fills and writebacks).
        memory_accesses: number of main-memory block transfers performed.
    """

    __slots__ = ("l1_hit", "l2_hit", "latency", "l2_accesses", "memory_accesses")

    def __init__(
        self,
        l1_hit: bool,
        l2_hit: Optional[bool],
        latency: int,
        l2_accesses: int,
        memory_accesses: int,
    ) -> None:
        self.l1_hit = l1_hit
        self.l2_hit = l2_hit
        self.latency = latency
        self.l2_accesses = l2_accesses
        self.memory_accesses = memory_accesses

    def __repr__(self) -> str:
        return (
            f"HierarchyAccessOutcome(l1_hit={self.l1_hit}, l2_hit={self.l2_hit}, "
            f"latency={self.latency})"
        )


class CacheHierarchy:
    """L1 instruction + data caches over a unified L2 over main memory."""

    def __init__(
        self,
        config: SystemConfig,
        l1i,
        l1d,
        l2: Optional[Cache] = None,
        memory: Optional[MainMemory] = None,
    ) -> None:
        self.config = config
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2 if l2 is not None else Cache(config.l2.geometry, name="l2")
        self.memory = memory if memory is not None else MainMemory(config.memory)
        self.writeback_buffer = WritebackBuffer.from_core(config.core)
        self._l1_hit_latency = config.l1_timing.hit_latency
        self._l2_hit_latency = config.l2.hit_latency
        self._l1_block = config.l1d.block_bytes
        self._l2_block = config.l2.geometry.block_bytes

    # ------------------------------------------------------------------ access
    def data_access(self, address: int, is_write: bool) -> HierarchyAccessOutcome:
        """Perform a load or store through L1d, L2 and memory as needed."""
        return self._access(self.l1d, address, is_write)

    def instruction_fetch(self, address: int) -> HierarchyAccessOutcome:
        """Perform an instruction fetch through L1i, L2 and memory as needed."""
        return self._access(self.l1i, address, is_write=False)

    def _access(self, l1, address: int, is_write: bool) -> HierarchyAccessOutcome:
        l1_result = l1.access(address, is_write)
        if l1_result.hit:
            return HierarchyAccessOutcome(
                l1_hit=True, l2_hit=None, latency=self._l1_hit_latency,
                l2_accesses=0, memory_accesses=0,
            )

        l2_accesses = 1
        memory_accesses = 0
        # Fill from L2 (the L2 sees a read for the missing block).
        l2_result = self.l2.access(address, is_write=False)
        latency = self._l1_hit_latency + self._l2_hit_latency
        if not l2_result.hit:
            memory_accesses += 1
            latency += self.memory.read_block(address, self._l2_block)
        if l2_result.writeback_address is not None:
            memory_accesses += 1
            self.memory.write_block(l2_result.writeback_address, self._l2_block)

        # A dirty L1 victim goes through the write-back buffer into L2.
        if l1_result.writeback_address is not None:
            self.writeback_buffer.push(l1_result.writeback_address)
            l2_accesses += 1
            wb_result = self.l2.access(l1_result.writeback_address, is_write=True)
            if not wb_result.hit:
                memory_accesses += 1
                self.memory.read_block(l1_result.writeback_address, self._l2_block)
            if wb_result.writeback_address is not None:
                memory_accesses += 1
                self.memory.write_block(wb_result.writeback_address, self._l2_block)

        return HierarchyAccessOutcome(
            l1_hit=False,
            l2_hit=l2_result.hit,
            latency=latency,
            l2_accesses=l2_accesses,
            memory_accesses=memory_accesses,
        )

    # --------------------------------------------------------------- writebacks
    def absorb_l1_writebacks(self, block_addresses: Iterable[int]) -> int:
        """Write a batch of dirty L1 blocks back into L2.

        Used when a resizable L1 flushes blocks on a resize.  Returns the
        number of L2 accesses performed so the caller can charge their
        energy.
        """
        l2_accesses = 0
        for block_address in block_addresses:
            self.writeback_buffer.push(block_address)
            l2_accesses += 1
            result = self.l2.access(block_address, is_write=True)
            if not result.hit:
                self.memory.read_block(block_address, self._l2_block)
            if result.writeback_address is not None:
                self.memory.write_block(result.writeback_address, self._l2_block)
        return l2_accesses

    # ------------------------------------------------------------ introspection
    def miss_ratios(self) -> dict:
        """Convenience: miss ratios of all three caches."""
        return {
            "l1i": self.l1i.stats.miss_ratio,
            "l1d": self.l1d.stats.miss_ratio,
            "l2": self.l2.stats.miss_ratio,
        }

    def reset_stats(self) -> None:
        """Reset statistics of every level (contents are preserved)."""
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.memory.reset_stats()
        self.writeback_buffer.reset()
