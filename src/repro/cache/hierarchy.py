"""Two-level cache hierarchy.

The hierarchy wires the (possibly resizable) L1 instruction and data caches
to a unified L2 and main memory, routes writebacks through the write-back
buffer, and reports per-access latency so the timing models can expose or
hide it depending on the core configuration.

Any object exposing the :class:`repro.cache.cache.Cache` access interface
(``access``, ``flush_all``, ``stats``) can serve as an L1, which is how the
resizable caches plug in without the hierarchy knowing about resizing.  An
L1 that additionally implements the packed kernel (``access_packed`` with
the :mod:`repro.cache.cache` bit layout) is driven allocation-free; one that
only has the object API is adapted automatically (correct, just slower).

Architecture note — the packed-outcome kernel
---------------------------------------------
:meth:`CacheHierarchy.data_access_packed` and
:meth:`CacheHierarchy.instruction_fetch_packed` are the hot path: they route
one access through L1 → L2 → memory using only packed ints (the L1/L2
kernels return packed access outcomes; victim writebacks are forwarded as
plain block-address ints) and encode the whole outcome in a single int —
zero allocations per access, including misses.

Packed hierarchy-outcome bit layout (``HIER_*`` constants)::

    bit 0    HIER_L1_HIT         1 = the access hit in its L1
    bit 1    HIER_L2_CONSULTED   1 = the L2 was accessed (any L1 miss)
    bit 2    HIER_L2_HIT         valid only when bit 1 is set
    bits 3-5 l2_accesses         L2 accesses performed (fill + writeback)
    bits 6-8 memory_accesses     main-memory block transfers performed
    bits 9+  latency             total cycles seen by the instruction

:meth:`data_access` / :meth:`instruction_fetch` are thin wrappers decoding
the packed int into the historical :class:`HierarchyAccessOutcome`, so the
reference engine, the timing tests and external callers stay bit-identical
by construction.

The fused ladder engine (:mod:`repro.sim.ladder`) composes the same access
out of its two halves directly: it calls the bound L1 kernels
(``_l1i_packed`` / ``_l1d_packed``) and the shared miss-fill path
(``_miss_packed``) separately, so it can resolve a configuration-invariant
L1 once for a whole ladder of hierarchies while each rung still performs
its own L2/memory fills.  Treat those attributes as a stable intra-package
contract: ``packed = _l1x_packed(addr, is_write)`` then, on a miss,
``_miss_packed(packed, addr)`` must remain exactly equivalent to one
``*_packed`` wrapper call.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cache.cache import (
    PACKED_FILLED,
    PACKED_HIT,
    PACKED_WRITEBACK_SHIFT,
    PACKED_WRITEBACK_VALID,
    Cache,
)
from repro.cache.writeback_buffer import WritebackBuffer
from repro.common.config import SystemConfig
from repro.mem.main_memory import MainMemory

#: Packed hierarchy-outcome bits (see the module docstring for the layout).
HIER_L1_HIT = 0b001
HIER_L2_CONSULTED = 0b010
HIER_L2_HIT = 0b100
HIER_L2_ACCESSES_SHIFT = 3
HIER_MEM_ACCESSES_SHIFT = 6
HIER_COUNT_MASK = 0b111
HIER_LATENCY_SHIFT = 9


def unpack_hierarchy_outcome(packed: int) -> "HierarchyAccessOutcome":
    """Decode a packed hierarchy outcome into a :class:`HierarchyAccessOutcome`."""
    l2_hit: Optional[bool] = None
    if packed & HIER_L2_CONSULTED:
        l2_hit = bool(packed & HIER_L2_HIT)
    return HierarchyAccessOutcome(
        l1_hit=bool(packed & HIER_L1_HIT),
        l2_hit=l2_hit,
        latency=packed >> HIER_LATENCY_SHIFT,
        l2_accesses=(packed >> HIER_L2_ACCESSES_SHIFT) & HIER_COUNT_MASK,
        memory_accesses=(packed >> HIER_MEM_ACCESSES_SHIFT) & HIER_COUNT_MASK,
    )


def _packed_l1_adapter(l1):
    """A packed access callable for any L1 (native kernel or adapted).

    Caches with the packed kernel hand back their bound ``access_packed``
    directly; object-API-only caches get a closure that re-encodes their
    :class:`~repro.cache.cache.AccessResult` into the packed layout.
    """
    access_packed = getattr(l1, "access_packed", None)
    if access_packed is not None:
        return access_packed

    def adapted(address: int, is_write: bool, _access=l1.access) -> int:
        result = _access(address, is_write)
        if result.hit:
            return PACKED_HIT
        packed = PACKED_FILLED if result.filled else 0
        if result.writeback_address is not None:
            packed |= PACKED_WRITEBACK_VALID | (
                result.writeback_address << PACKED_WRITEBACK_SHIFT
            )
        return packed

    return adapted


class HierarchyAccessOutcome:
    """Result of one instruction-fetch or data access through the hierarchy.

    Object view of the packed hierarchy outcome (see the module docstring).

    Attributes:
        l1_hit: True when the access hit in its L1 cache.
        l2_hit: True/False when the L2 was consulted, None on an L1 hit.
        latency: total latency in cycles seen by the requesting instruction.
        l2_accesses: number of L2 accesses performed (fills and writebacks).
        memory_accesses: number of main-memory block transfers performed.
    """

    __slots__ = ("l1_hit", "l2_hit", "latency", "l2_accesses", "memory_accesses")

    def __init__(
        self,
        l1_hit: bool,
        l2_hit: Optional[bool],
        latency: int,
        l2_accesses: int,
        memory_accesses: int,
    ) -> None:
        self.l1_hit = l1_hit
        self.l2_hit = l2_hit
        self.latency = latency
        self.l2_accesses = l2_accesses
        self.memory_accesses = memory_accesses

    def __repr__(self) -> str:
        return (
            f"HierarchyAccessOutcome(l1_hit={self.l1_hit}, l2_hit={self.l2_hit}, "
            f"latency={self.latency})"
        )


class CacheHierarchy:
    """L1 instruction + data caches over a unified L2 over main memory."""

    def __init__(
        self,
        config: SystemConfig,
        l1i,
        l1d,
        l2: Optional[Cache] = None,
        memory: Optional[MainMemory] = None,
    ) -> None:
        self.config = config
        self.l1i = l1i
        self.l1d = l1d
        self.l2 = l2 if l2 is not None else Cache(config.l2.geometry, name="l2")
        self.memory = memory if memory is not None else MainMemory(config.memory)
        self.writeback_buffer = WritebackBuffer.from_core(config.core)
        self._l1_hit_latency = config.l1_timing.hit_latency
        self._l2_hit_latency = config.l2.hit_latency
        self._l1_block = config.l1d.block_bytes
        self._l2_block = config.l2.geometry.block_bytes
        # Kernel locals: bound packed L1 accessors, the L1-hit outcome as a
        # ready-made constant, and the shared L1+L2 hit latency term.
        self._l1d_packed = _packed_l1_adapter(l1d)
        self._l1i_packed = _packed_l1_adapter(l1i)
        self._l2_packed = self.l2.access_packed
        self._packed_l1_hit = HIER_L1_HIT | (self._l1_hit_latency << HIER_LATENCY_SHIFT)
        self._l1_l2_latency = self._l1_hit_latency + self._l2_hit_latency

    # ------------------------------------------------------------------ access
    def data_access_packed(self, address: int, is_write: bool) -> int:
        """Load/store through L1d, L2 and memory; returns a packed outcome."""
        l1_packed = self._l1d_packed(address, is_write)
        if l1_packed & 1:
            return self._packed_l1_hit
        return self._miss_packed(l1_packed, address)

    def instruction_fetch_packed(self, address: int) -> int:
        """Instruction fetch through L1i, L2 and memory; returns a packed outcome."""
        l1_packed = self._l1i_packed(address, False)
        if l1_packed & 1:
            return self._packed_l1_hit
        return self._miss_packed(l1_packed, address)

    def _memory_state(self):
        """Hoistable main-memory counters for the inline dispatch loops.

        ``(reads, writes, bytes_transferred, l2_block_bytes,
        writeback_buffer)`` — the live counter objects, the L2 block size
        and the write-back buffer, or None when the memory is not the
        stock :class:`MainMemory` (whose block transfers are pure counter
        increments; a substitute model may do more, so the loops must
        route misses through :meth:`_miss_packed` for it).  With this
        state the dispatch loops can resolve any L1 miss entirely inline —
        L2 fill, victim spill, the dirty-victim buffer push and
        write-allocate, memory transfer counts: the replay path never
        consumes the returned latency, which is the only other thing
        :meth:`_miss_packed` computes.
        """
        memory = self.memory
        if type(memory) is not MainMemory:
            return None
        return (
            memory._reads, memory._writes, memory._bytes_transferred,
            self._l2_block, self.writeback_buffer,
        )

    def _miss_packed(self, l1_packed: int, address: int) -> int:
        """Shared L1-miss path: fill from L2, spill the dirty victim into L2."""
        l2_accesses = 1
        memory_accesses = 0
        # Fill from L2 (the L2 sees a read for the missing block).
        l2_packed = self._l2_packed(address, False)
        latency = self._l1_l2_latency
        if l2_packed & 1:
            hit_bits = HIER_L2_CONSULTED | HIER_L2_HIT
        else:
            hit_bits = HIER_L2_CONSULTED
            memory_accesses = 1
            latency += self.memory.read_block(address, self._l2_block)
        if l2_packed & PACKED_WRITEBACK_VALID:
            memory_accesses += 1
            self.memory.write_block(l2_packed >> PACKED_WRITEBACK_SHIFT, self._l2_block)

        # A dirty L1 victim goes through the write-back buffer into L2.
        if l1_packed & PACKED_WRITEBACK_VALID:
            writeback_address = l1_packed >> PACKED_WRITEBACK_SHIFT
            self.writeback_buffer.push(writeback_address)
            l2_accesses = 2
            wb_packed = self._l2_packed(writeback_address, True)
            if not wb_packed & 1:
                memory_accesses += 1
                self.memory.read_block(writeback_address, self._l2_block)
            if wb_packed & PACKED_WRITEBACK_VALID:
                memory_accesses += 1
                self.memory.write_block(
                    wb_packed >> PACKED_WRITEBACK_SHIFT, self._l2_block
                )

        return (
            hit_bits
            | (l2_accesses << HIER_L2_ACCESSES_SHIFT)
            | (memory_accesses << HIER_MEM_ACCESSES_SHIFT)
            | (latency << HIER_LATENCY_SHIFT)
        )

    def data_access(self, address: int, is_write: bool) -> HierarchyAccessOutcome:
        """Perform a load or store through L1d, L2 and memory as needed."""
        return unpack_hierarchy_outcome(self.data_access_packed(address, is_write))

    def instruction_fetch(self, address: int) -> HierarchyAccessOutcome:
        """Perform an instruction fetch through L1i, L2 and memory as needed."""
        return unpack_hierarchy_outcome(self.instruction_fetch_packed(address))

    # --------------------------------------------------------------- writebacks
    def absorb_l1_writebacks(self, block_addresses: Iterable[int]) -> int:
        """Write a batch of dirty L1 blocks back into L2.

        Used when a resizable L1 flushes blocks on a resize.  Returns the
        number of L2 accesses performed so the caller can charge their
        energy.
        """
        l2_accesses = 0
        l2_packed_access = self._l2_packed
        for block_address in block_addresses:
            self.writeback_buffer.push(block_address)
            l2_accesses += 1
            packed = l2_packed_access(block_address, True)
            if not packed & 1:
                self.memory.read_block(block_address, self._l2_block)
            if packed & PACKED_WRITEBACK_VALID:
                self.memory.write_block(packed >> PACKED_WRITEBACK_SHIFT, self._l2_block)
        return l2_accesses

    # ------------------------------------------------------------ introspection
    def miss_ratios(self) -> dict:
        """Convenience: miss ratios of all three caches."""
        return {
            "l1i": self.l1i.stats.miss_ratio,
            "l1d": self.l1d.stats.miss_ratio,
            "l2": self.l2.stats.miss_ratio,
        }

    def reset_stats(self) -> None:
        """Reset statistics of every level (contents are preserved)."""
        self.l1i.reset_stats()
        self.l1d.reset_stats()
        self.l2.reset_stats()
        self.memory.reset_stats()
        self.writeback_buffer.reset()
