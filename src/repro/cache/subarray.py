"""SRAM subarray book-keeping.

Modern caches split the data (and tag) array into multiple subarrays of SRAM
rows to optimise access time; all subarrays are precharged before an access
(Figure 3 of the paper), so dynamic energy scales with the number of
*enabled* subarrays, and leakage scales with the enabled capacity.  The
:class:`SubarrayMap` tracks which subarrays a given resizable configuration
enables so the energy model can charge exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import CacheGeometry
from repro.common.errors import ConfigurationError


@dataclass(frozen=True)
class SubarrayState:
    """A snapshot of how many subarrays are enabled.

    Attributes:
        enabled_subarrays: number of data subarrays currently powered.
        total_subarrays: number of data subarrays physically present.
        enabled_bytes: capacity corresponding to the enabled subarrays.
    """

    enabled_subarrays: int
    total_subarrays: int
    enabled_bytes: int

    @property
    def enabled_fraction(self) -> float:
        """Fraction of the cache's subarrays that are enabled (0..1]."""
        if self.total_subarrays == 0:
            return 0.0
        return self.enabled_subarrays / self.total_subarrays


class SubarrayMap:
    """Computes enabled-subarray counts for resizable configurations.

    The map is purely geometric: given the full geometry and an enabled
    (ways, sets) pair, it reports how many subarrays stay powered.  Resizing
    granularity comes from here — a way cannot be partially enabled below
    one subarray, which is why the minimum number of sets is
    ``subarray_bytes / block_bytes`` (one subarray per way).
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        self._blocks_per_subarray = geometry.blocks_per_subarray

    def subarrays_for(self, enabled_ways: int, enabled_sets: int) -> SubarrayState:
        """Return the :class:`SubarrayState` for an enabled configuration."""
        geometry = self.geometry
        if enabled_ways < 1 or enabled_ways > geometry.associativity:
            raise ConfigurationError(
                f"enabled ways must be in [1, {geometry.associativity}], got {enabled_ways}"
            )
        if enabled_sets < 1 or enabled_sets > geometry.num_sets:
            raise ConfigurationError(
                f"enabled sets must be in [1, {geometry.num_sets}], got {enabled_sets}"
            )
        blocks_per_way = enabled_sets
        # Each way needs a whole number of subarrays to cover its enabled blocks.
        subarrays_per_way = max(
            1, (blocks_per_way + self._blocks_per_subarray - 1) // self._blocks_per_subarray
        )
        enabled = subarrays_per_way * enabled_ways
        total = max(1, geometry.num_subarrays)
        if enabled_ways == geometry.associativity and enabled_sets == geometry.num_sets:
            enabled = min(enabled, total)
        enabled_bytes = enabled_ways * enabled_sets * geometry.block_bytes
        return SubarrayState(
            enabled_subarrays=enabled,
            total_subarrays=total,
            enabled_bytes=enabled_bytes,
        )

    def full_state(self) -> SubarrayState:
        """Return the state with every subarray enabled."""
        return self.subarrays_for(self.geometry.associativity, self.geometry.num_sets)
