"""Energy-delay product helpers.

The paper's headline metric is the processor's energy-delay product,
normalised to the non-resizable cache of the same size and set-associativity
and reported as a percentage reduction.
"""

from __future__ import annotations


def energy_delay_product(energy: float, cycles: float) -> float:
    """Energy-delay product (energy times execution time in cycles)."""
    return energy * cycles


def relative_energy_delay(
    energy: float, cycles: float, baseline_energy: float, baseline_cycles: float
) -> float:
    """Energy-delay of a configuration normalised to its baseline.

    Values below 1.0 mean the resizable configuration improves on the
    non-resizable cache of the same size and associativity.
    """
    baseline = energy_delay_product(baseline_energy, baseline_cycles)
    if baseline <= 0.0:
        return 0.0
    return energy_delay_product(energy, cycles) / baseline


def percent_reduction(value: float, baseline: float) -> float:
    """Percentage reduction of ``value`` relative to ``baseline``.

    Positive numbers mean improvement (smaller value); this is how every
    figure in the paper reports energy-delay and cache-size reductions.
    """
    if baseline <= 0.0:
        return 0.0
    return (1.0 - value / baseline) * 100.0


def slowdown(cycles: float, baseline_cycles: float) -> float:
    """Fractional execution-time increase relative to the baseline.

    0.03 means the configuration runs 3 % slower than the baseline.
    """
    if baseline_cycles <= 0.0:
        return 0.0
    return cycles / baseline_cycles - 1.0
