"""Energy breakdown across processor structures."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EnergyBreakdown:
    """Energy (in nanojoules) attributed to each structure.

    The paper reports energy for the *entire* processor so that resizing
    side effects (extra L2 traffic, resizing tag bits, longer execution) are
    all accounted for; this breakdown keeps the same structures separable so
    the per-structure fractions can also be reported.
    """

    l1d: float = 0.0
    l1i: float = 0.0
    l2: float = 0.0
    memory: float = 0.0
    core: float = 0.0

    @property
    def total(self) -> float:
        """Total processor energy."""
        return self.l1d + self.l1i + self.l2 + self.memory + self.core

    def fraction(self, structure: str) -> float:
        """Fraction of total energy dissipated in ``structure`` (by field name)."""
        total = self.total
        if total <= 0.0:
            return 0.0
        return getattr(self, structure) / total

    def add(self, other: "EnergyBreakdown") -> None:
        """Accumulate another breakdown into this one (in place)."""
        self.l1d += other.l1d
        self.l1i += other.l1i
        self.l2 += other.l2
        self.memory += other.memory
        self.core += other.core

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return EnergyBreakdown(
            l1d=self.l1d * factor,
            l1i=self.l1i * factor,
            l2=self.l2 * factor,
            memory=self.memory * factor,
            core=self.core * factor,
        )

    def as_dict(self) -> dict:
        """Export the breakdown (plus the total) as a dictionary."""
        return {
            "l1d": self.l1d,
            "l1i": self.l1i,
            "l2": self.l2,
            "memory": self.memory,
            "core": self.core,
            "total": self.total,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EnergyBreakdown":
        """Rebuild a breakdown from :meth:`as_dict` output.

        The derived ``total`` key is ignored; every component key is
        required — a missing component raises ``KeyError`` rather than
        silently becoming zero energy, so corrupt cached results register
        as cache misses instead of poisoning downstream metrics.
        """
        return cls(
            l1d=float(payload["l1d"]),
            l1i=float(payload["l1i"]),
            l2=float(payload["l2"]),
            memory=float(payload["memory"]),
            core=float(payload["core"]),
        )
