"""Per-interval activity counts.

The simulator accumulates one :class:`IntervalCounts` per sense interval and
hands it to the core timing model (which turns it into cycles) and to the
energy model (which turns it plus the cycle count into joules).  Keeping the
counts explicit — rather than having the models read the caches' cumulative
statistics — makes interval-level resizing, per-interval energy accounting
and unit testing straightforward.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IntervalCounts:
    """Activity observed during one simulation interval.

    All fields are raw event counts; rates (miss ratios, IPC) are derived by
    the consumers.
    """

    instructions: int = 0
    #: L1 data-cache accesses (loads + stores).
    l1d_accesses: int = 0
    l1d_stores: int = 0
    l1d_misses: int = 0
    #: Dirty-victim writebacks out of the L1 data cache.
    l1d_writebacks: int = 0
    #: Data-side L2 misses (i.e. accesses that went to main memory).
    l1d_memory_accesses: int = 0
    #: L1 instruction-cache accesses (fetch-block lookups).
    l1i_accesses: int = 0
    l1i_misses: int = 0
    #: Instruction-side L2 misses.
    l1i_memory_accesses: int = 0
    #: Total L2 accesses (fills and writebacks from both L1s).
    l2_accesses: int = 0
    #: Total main-memory block transfers.
    memory_accesses: int = 0
    branches: int = 0
    branch_mispredicts: int = 0
    #: Writeback-buffer overflows (each costs a small stall).
    writeback_overflows: int = 0
    #: Blocks flushed by cache resizing during the interval.
    resize_flush_writebacks: int = 0
    #: Average memory-level parallelism the workload exposes in this interval.
    memory_level_parallelism: float = 1.0

    def merge(self, other: "IntervalCounts") -> None:
        """Accumulate another interval's counts into this one (in place)."""
        weight_self = max(self.instructions, 0)
        weight_other = max(other.instructions, 0)
        total_weight = weight_self + weight_other
        if total_weight > 0:
            self.memory_level_parallelism = (
                self.memory_level_parallelism * weight_self
                + other.memory_level_parallelism * weight_other
            ) / total_weight
        self.instructions += other.instructions
        self.l1d_accesses += other.l1d_accesses
        self.l1d_stores += other.l1d_stores
        self.l1d_misses += other.l1d_misses
        self.l1d_writebacks += other.l1d_writebacks
        self.l1d_memory_accesses += other.l1d_memory_accesses
        self.l1i_accesses += other.l1i_accesses
        self.l1i_misses += other.l1i_misses
        self.l1i_memory_accesses += other.l1i_memory_accesses
        self.l2_accesses += other.l2_accesses
        self.memory_accesses += other.memory_accesses
        self.branches += other.branches
        self.branch_mispredicts += other.branch_mispredicts
        self.writeback_overflows += other.writeback_overflows
        self.resize_flush_writebacks += other.resize_flush_writebacks

    @property
    def l1d_miss_ratio(self) -> float:
        """Data-cache miss ratio during the interval."""
        if self.l1d_accesses == 0:
            return 0.0
        return self.l1d_misses / self.l1d_accesses

    @property
    def l1i_miss_ratio(self) -> float:
        """Instruction-cache miss ratio during the interval."""
        if self.l1i_accesses == 0:
            return 0.0
        return self.l1i_misses / self.l1i_accesses

    def copy(self) -> "IntervalCounts":
        """Return an independent copy of these counts."""
        fresh = IntervalCounts()
        fresh.merge(self)
        fresh.memory_level_parallelism = self.memory_level_parallelism
        return fresh
