"""Shared measurement types: activity counts, energy breakdowns, energy-delay.

The timing models (:mod:`repro.cpu`), the energy models (:mod:`repro.energy`)
and the simulator (:mod:`repro.sim`) all exchange data through the types in
this package, which keeps those packages decoupled from one another.
"""

from repro.metrics.counts import IntervalCounts
from repro.metrics.breakdown import EnergyBreakdown
from repro.metrics.edp import (
    energy_delay_product,
    percent_reduction,
    relative_energy_delay,
    slowdown,
)

__all__ = [
    "IntervalCounts",
    "EnergyBreakdown",
    "energy_delay_product",
    "relative_energy_delay",
    "percent_reduction",
    "slowdown",
]
