"""Address arithmetic for set-associative caches.

A physical address is split into (tag, index, offset) fields.  The
:class:`AddressMapper` is the single place where that split is computed so
that resizable caches — which change the number of index bits at run time —
can recompute mappings consistently.
"""

from __future__ import annotations

from repro.common.errors import ConfigurationError
from repro.common.units import is_power_of_two, log2_int


def block_address(address: int, block_bytes: int) -> int:
    """Return the block-aligned address (address with the offset bits cleared)."""
    return address & ~(block_bytes - 1)


def block_offset(address: int, block_bytes: int) -> int:
    """Return the byte offset of ``address`` within its block."""
    return address & (block_bytes - 1)


class AddressMapper:
    """Maps addresses to (tag, set index) for a given cache shape.

    The mapper is immutable; a resizable cache creates a new mapper whenever
    the number of enabled sets changes.  Tags always include every address
    bit above the *offset*, divided by the current number of sets — this is
    equivalent to storing the largest tag the smallest configuration would
    need, which is exactly what the paper says a selective-sets cache must do
    (Section 2.1: the tag array must be as large as required by the smallest
    offered size).
    """

    __slots__ = ("block_bytes", "num_sets", "_offset_bits", "_index_bits", "_set_mask")

    def __init__(self, block_bytes: int, num_sets: int) -> None:
        if not is_power_of_two(block_bytes):
            raise ConfigurationError(f"block size must be a power of two, got {block_bytes}")
        if not is_power_of_two(num_sets):
            raise ConfigurationError(f"number of sets must be a power of two, got {num_sets}")
        self.block_bytes = block_bytes
        self.num_sets = num_sets
        self._offset_bits = log2_int(block_bytes)
        self._index_bits = log2_int(num_sets)
        self._set_mask = num_sets - 1

    def split(self, address: int) -> tuple:
        """Return ``(tag, set_index)`` for an address."""
        block = address >> self._offset_bits
        return block >> self._index_bits, block & self._set_mask

    def shift_mask(self) -> tuple:
        """Return ``(offset_bits, index_bits, set_mask)`` for hot-path hoisting.

        The cache kernels copy these into plain locals/attributes once so
        the per-access tag/index split is two shifts and a mask with no
        method call; the triple fully determines :meth:`split`.
        """
        return self._offset_bits, self._index_bits, self._set_mask

    def set_index(self, address: int) -> int:
        """Return only the set index for an address."""
        return (address >> self._offset_bits) & self._set_mask

    def tag(self, address: int) -> int:
        """Return only the tag for an address."""
        return address >> (self._offset_bits + self._index_bits)

    def rebuild_address(self, tag: int, set_index: int) -> int:
        """Reconstruct the block-aligned address from a (tag, index) pair."""
        return ((tag << self._index_bits) | set_index) << self._offset_bits

    @property
    def index_bits(self) -> int:
        """Number of index bits used by this mapping."""
        return self._index_bits

    @property
    def offset_bits(self) -> int:
        """Number of block-offset bits."""
        return self._offset_bits

    def tag_bits(self, address_bits: int = 32) -> int:
        """Number of tag bits for the given address width."""
        return max(0, address_bits - self._index_bits - self._offset_bits)

    def __repr__(self) -> str:
        return f"AddressMapper(block={self.block_bytes}, sets={self.num_sets})"
