"""Cache block (line) state."""

from __future__ import annotations


class CacheBlock:
    """State of one cache block frame.

    Only the metadata the simulator needs is kept — the actual data payload
    is irrelevant for miss-count and energy accounting, so it is not stored.

    Attributes:
        address: block-aligned physical address currently cached.
        dirty: True when the block has been written since it was filled.
    """

    __slots__ = ("address", "dirty")

    def __init__(self, address: int, dirty: bool = False) -> None:
        self.address = address
        self.dirty = dirty

    def mark_dirty(self) -> None:
        """Mark the block as modified."""
        self.dirty = True

    def mark_clean(self) -> None:
        """Clear the modified flag (after a writeback)."""
        self.dirty = False

    def __repr__(self) -> str:
        state = "dirty" if self.dirty else "clean"
        return f"CacheBlock(0x{self.address:x}, {state})"
