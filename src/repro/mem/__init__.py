"""Memory-system primitives: address arithmetic, cache blocks, main memory."""

from repro.mem.address import AddressMapper, block_address, block_offset
from repro.mem.block import CacheBlock
from repro.mem.main_memory import MainMemory

__all__ = [
    "AddressMapper",
    "block_address",
    "block_offset",
    "CacheBlock",
    "MainMemory",
]
