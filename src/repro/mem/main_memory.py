"""Main-memory model.

Main memory is the backing store below the L2 cache.  It never misses; it
only contributes latency (Table 2: 80 cycles plus 5 cycles per 8 bytes
transferred) and counts accesses for the energy model.
"""

from __future__ import annotations

from repro.common.config import MemoryConfig
from repro.common.stats import StatGroup


class MainMemory:
    """Terminal level of the memory hierarchy."""

    __slots__ = ("config", "stats", "_reads", "_writes", "_bytes_transferred", "_latencies")

    def __init__(self, config: MemoryConfig | None = None) -> None:
        self.config = config if config is not None else MemoryConfig()
        self.stats = StatGroup("main_memory")
        self._reads = self.stats.counter("reads")
        self._writes = self.stats.counter("writes")
        self._bytes_transferred = self.stats.counter("bytes_transferred")
        # Per-block-size latency memo: block sizes are fixed per hierarchy,
        # so the latency arithmetic runs once per size instead of per miss.
        self._latencies: dict = {}

    def _latency(self, block_bytes: int) -> int:
        latency = self._latencies.get(block_bytes)
        if latency is None:
            latency = self.config.access_latency(block_bytes)
            self._latencies[block_bytes] = latency
        return latency

    def read_block(self, address: int, block_bytes: int) -> int:
        """Service a block fill from memory; returns the latency in cycles."""
        self._reads.value += 1
        self._bytes_transferred.value += block_bytes
        return self._latency(block_bytes)

    def write_block(self, address: int, block_bytes: int) -> int:
        """Service a writeback to memory; returns the latency in cycles.

        Writebacks are buffered in real systems and rarely stall the
        processor; callers typically ignore the returned latency but the
        access is still counted for energy purposes.
        """
        self._writes.value += 1
        self._bytes_transferred.value += block_bytes
        return self._latency(block_bytes)

    @property
    def total_accesses(self) -> int:
        """Total number of read and write block transfers."""
        return self._reads.value + self._writes.value

    def reset_stats(self) -> None:
        """Clear all accumulated counters."""
        self.stats.reset()
