"""The parallel sweep engine.

Every simulation the repo performs — baselines, the per-configuration runs
of a profiling sweep, dynamic-resizing runs, the joint d+i runs of
Figure 9 — is expressed as a declarative, picklable :class:`SimJob`.  A
:class:`SweepRunner` executes batches of jobs, fanning them out over a
``multiprocessing`` pool when ``jobs > 1`` and running them inline when
``jobs == 1`` (the inline path performs exactly the same arithmetic, so
parallel and serial sweeps produce identical results), and memoises
completed jobs in an on-disk :class:`repro.sim.jobcache.JobCache` so that
re-running a sweep only simulates what changed.

A profiling ladder — K configurations of one L1 against the same trace —
can additionally execute as a single *fused* pass: :class:`LadderJob`
bundles the rung specs, one worker replays the shared trace through every
rung's hierarchy in one decode (:mod:`repro.sim.ladder`), and
:meth:`SweepRunner.submit_ladder` fans the results back out to the rungs'
individual cache fingerprints, so the fused and per-config paths are
interchangeable against the same warm cache.

Jobs can also be *deferred*: :meth:`SweepRunner.submit` enqueues a job and
returns a :class:`repro.sim.future.SimFuture` immediately, and
:meth:`SweepRunner.submit_deferred` enqueues a job that cannot even be
built yet because its parameters derive from other jobs' results (a
dynamic-resizing run derives its miss-bound from the profiling ladder).
:meth:`SweepRunner.drain` then executes the whole accumulated graph in
dependency waves, each wave one pool batch, which is how a full evaluation
reaches the pool as two batches instead of hundreds of single-job calls.

Design notes
------------

* **Jobs are specs, not live objects.**  A job names its trace
  (:class:`TraceSpec`: application, instruction count, seed), its resizing
  setup (:class:`L1SetupSpec`: organization *name* plus a
  :class:`StrategySpec`), and carries the frozen configuration dataclasses
  (:class:`SystemConfig`, :class:`TechnologyParameters`,
  :class:`CoreTimingParameters`).  That makes jobs cheap to pickle, trivial
  to content-hash for the cache, and reconstructible in any worker process.
  Ad-hoc callers may embed a literal :class:`Trace` instead of a spec; such
  jobs are fingerprinted by hashing the trace content.
* **Determinism.**  All randomness lives in trace generation, and each job
  resolves its own RNG seed from its spec (``TraceSpec.seed``, defaulting
  to the workload profile's fixed seed).  Workers share no RNG state, so a
  job's result is a pure function of its spec regardless of which process
  runs it, in which order, or alongside which other jobs.
* **Per-process memoisation.**  Workers memoise materialised traces in
  ``_TRACE_MEMO``, a small LRU (traces are large, so old entries are
  evicted).  Its multiprocessing safety comes from per-process ownership:
  the memo is never shared across processes — each worker populates its own
  copy after fork/spawn — and is only touched from the worker's single
  job-executing thread.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
import weakref
from dataclasses import dataclass, field, fields, is_dataclass, replace
from enum import Enum
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Type, Union

from repro.common.atomicio import atomic_write_json
from repro.common.config import CacheGeometry, SystemConfig
from repro.common.counters import CounterRegistry
from repro.common.errors import (
    JobTimeoutError,
    SimulationError,
    TraceTransportError,
    TransientJobError,
    WorkerCrashError,
)
from repro.cpu.timing import CoreTimingParameters
from repro.energy.technology import TechnologyParameters
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.hybrid import HybridSetsAndWays
from repro.resizing.organization import ResizingOrganization, SizeConfig
from repro.resizing.selective_sets import SelectiveSets
from repro.resizing.selective_ways import SelectiveWays
from repro.resizing.static_strategy import StaticResizing
from repro.resizing.strategy import NoResizing, ResizingStrategy
from repro.sim import faults, predecode
from repro.sim import shm as shm_transport
from repro.sim.future import SimFuture
from repro.sim.jobcache import JobCache
from repro.sim.pool import FaultTolerantPool
from repro.sim.results import SimulationResult
from repro.sim.shm import SharedTraceRef
from repro.sim.simulator import L1Setup, Simulator
from repro.sim.tracecache import TraceCache
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.ingest import ExternalTraceSpec
from repro.workloads.profiles import get_profile
from repro.workloads.trace import Trace

#: Fingerprint schema version; bump when the hashed fields change meaning.
#: v2: inline traces are digested from their raw column buffers and the
#: ``engine`` field is deliberately excluded (engines are bit-identical).
#: v3: jobs carry interval-sampling fields (sample_every/sample_warmup) and
#: traces may be external files, fingerprinted by content digest.
_FINGERPRINT_VERSION = 3


# ---------------------------------------------------------------------------
# Organization registry: job specs name organizations, workers rebuild them.
# ---------------------------------------------------------------------------

_ORGANIZATION_REGISTRY: Dict[str, Type[ResizingOrganization]] = {
    SelectiveWays.name: SelectiveWays,
    SelectiveSets.name: SelectiveSets,
    HybridSetsAndWays.name: HybridSetsAndWays,
}


def register_organization(cls: Type[ResizingOrganization]) -> Type[ResizingOrganization]:
    """Register a custom organization class so job specs can name it.

    The class must be importable from a module — worker pools ship the
    registry to each worker by pickling the class *by reference*, so classes
    defined in ``__main__``-less scripts or interactively cannot cross
    process boundaries — and must have a unique ``name``: re-registering a
    *different* class under a taken name is rejected, because cached results
    are keyed by organization name and silently swapping the class behind a
    name would let stale results impersonate the new implementation.
    Usable as a decorator.
    """
    existing = _ORGANIZATION_REGISTRY.get(cls.name)
    if existing is not None and existing is not cls:
        raise SimulationError(
            f"organization name {cls.name!r} is already registered to "
            f"{existing.__name__}; give {cls.__name__} a distinct name"
        )
    _ORGANIZATION_REGISTRY[cls.name] = cls
    return cls


def _install_worker_state(
    registry: Dict[str, Type[ResizingOrganization]],
    trace_cache_dir: Optional[str],
    fault_plan_text: Optional[str] = None,
) -> None:
    """Pool-worker initializer: adopt the parent process's registry,
    on-disk trace cache and fault-injection plan.

    Under the ``spawn``/``forkserver`` start methods a worker imports this
    module fresh and would only know the three built-in organizations;
    shipping the parent's registry (classes pickled by reference) restores
    any custom registrations.  Under ``fork`` this is a harmless no-op
    update with identical entries.  The trace cache is shipped as a
    directory path (the cache object itself holds no state worth pickling),
    so workers materialising a :class:`TraceSpec` share the parent's
    on-disk trace memo.  The fault plan is shipped as its source *text*
    (see :mod:`repro.sim.faults`): every worker — including respawned
    replacements after a crash — arms the same plan with fresh occurrence
    counters, which is what keeps injected worker-side faults
    deterministic.
    """
    _ORGANIZATION_REGISTRY.update(registry)
    set_trace_cache(trace_cache_dir)
    faults.install_plan(fault_plan_text)


def organization_class(name: str) -> Type[ResizingOrganization]:
    """Look up a registered organization class by name."""
    try:
        return _ORGANIZATION_REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(sorted(_ORGANIZATION_REGISTRY))
        raise SimulationError(
            f"unknown resizing organization {name!r}; registered organizations: {known} "
            f"(use repro.sim.runner.register_organization for custom classes)"
        ) from exc


def require_registered(organization: ResizingOrganization) -> str:
    """Return the organization's registry name, validating *class identity*.

    Checking the name alone is not enough: a subclass that inherits ``name``
    from a registered class would be silently rebuilt as the base class in
    worker processes, simulating the wrong organization.  The class object
    itself must be the registered one.
    """
    registered = organization_class(organization.name)
    if registered is not type(organization):
        raise SimulationError(
            f"organization class {type(organization).__name__} is not registered under "
            f"{organization.name!r} (that name resolves to {registered.__name__}); give the "
            f"subclass its own name and register it with repro.sim.runner.register_organization"
        )
    return organization.name


# ---------------------------------------------------------------------------
# Job specs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TraceSpec:
    """Names a synthetic trace without materialising it.

    Attributes:
        application: workload profile name (see :mod:`repro.workloads.profiles`).
        n_instructions: trace length to generate.
        seed: RNG seed override; None uses the profile's fixed seed, which
            reproduces exactly the trace ``ExperimentContext`` has always
            generated.
    """

    application: str
    n_instructions: int
    seed: Optional[int] = None

    def materialize(self) -> Trace:
        """Generate the trace this spec describes."""
        generator = WorkloadGenerator(get_profile(self.application), seed=self.seed)
        return generator.generate(self.n_instructions)


#: Strategy spec kinds.
STATIC = "static"
DYNAMIC = "dynamic"
NONE = "none"


@dataclass(frozen=True)
class StrategySpec:
    """Declarative description of a resizing strategy.

    ``config`` is the static configuration for ``kind == "static"`` and the
    optional initial configuration for ``kind == "dynamic"``.
    """

    kind: str
    config: Optional[SizeConfig] = None
    miss_bound: float = 0.0
    size_bound_bytes: int = 0
    sense_interval_accesses: int = 16384
    downsize_fraction: float = 1.0
    settle_intervals: int = 2
    reversal_backoff_intervals: int = 8

    @classmethod
    def static(cls, config: SizeConfig) -> "StrategySpec":
        """Spec for :class:`StaticResizing` at ``config``."""
        return cls(kind=STATIC, config=config)

    @classmethod
    def dynamic(
        cls,
        miss_bound: float,
        size_bound_bytes: int,
        sense_interval_accesses: int = 16384,
        initial_config: Optional[SizeConfig] = None,
        downsize_fraction: float = 1.0,
        settle_intervals: int = 2,
        reversal_backoff_intervals: int = 8,
    ) -> "StrategySpec":
        """Spec for :class:`DynamicResizing` with the given parameters."""
        return cls(
            kind=DYNAMIC,
            config=initial_config,
            miss_bound=miss_bound,
            size_bound_bytes=size_bound_bytes,
            sense_interval_accesses=sense_interval_accesses,
            downsize_fraction=downsize_fraction,
            settle_intervals=settle_intervals,
            reversal_backoff_intervals=reversal_backoff_intervals,
        )

    @classmethod
    def from_strategy(cls, strategy: ResizingStrategy) -> "StrategySpec":
        """Convert a live strategy object into a spec.

        Exact classes only — a subclass with overridden behaviour must not be
        silently rebuilt as its base class in a worker, so it is rejected
        here and (via :func:`repro.sim.sweep.run_with_setups`'s fallback)
        runs in-process instead.
        """
        if type(strategy) is StaticResizing:
            return cls.static(strategy.config)
        if type(strategy) is DynamicResizing:
            # The raw constructor argument, not initial_config(): the method
            # falls back to the bound organization's full size, and specs
            # must be convertible before any binding happens.
            return cls.dynamic(
                miss_bound=strategy.miss_bound,
                size_bound_bytes=strategy.size_bound_bytes,
                sense_interval_accesses=strategy.sense_interval_accesses,
                initial_config=strategy.requested_initial_config,
                downsize_fraction=strategy.downsize_fraction,
                settle_intervals=strategy.settle_intervals,
                reversal_backoff_intervals=strategy.reversal_backoff_intervals,
            )
        if type(strategy) is NoResizing:
            return cls(kind=NONE)
        raise SimulationError(
            f"cannot express strategy {type(strategy).__name__} as a job spec; "
            f"supported strategies (exact classes): StaticResizing, DynamicResizing, NoResizing"
        )

    def build(self) -> ResizingStrategy:
        """Instantiate the strategy this spec describes."""
        if self.kind == STATIC:
            if self.config is None:
                raise SimulationError("a static strategy spec requires a configuration")
            return StaticResizing(self.config)
        if self.kind == DYNAMIC:
            return DynamicResizing(
                miss_bound=self.miss_bound,
                size_bound_bytes=self.size_bound_bytes,
                sense_interval_accesses=self.sense_interval_accesses,
                downsize_fraction=self.downsize_fraction,
                settle_intervals=self.settle_intervals,
                reversal_backoff_intervals=self.reversal_backoff_intervals,
                initial_config=self.config,
            )
        if self.kind == NONE:
            return NoResizing()
        raise SimulationError(f"unknown strategy spec kind {self.kind!r}")


@dataclass(frozen=True)
class L1SetupSpec:
    """Declarative counterpart of :class:`repro.sim.simulator.L1Setup`.

    ``organization`` is a registered organization *name*; the worker rebuilds
    the organization on the target cache's geometry, so the spec stays a few
    bytes regardless of the organization's config lattice.  ``geometry``,
    when set, pins the geometry the organization was built on: building the
    spec against a different cache geometry then raises, preserving the
    mismatch guard a live :class:`L1Setup` enforces.
    """

    organization: Optional[str] = None
    strategy: Optional[StrategySpec] = None
    geometry: Optional[CacheGeometry] = None

    @classmethod
    def fixed(cls) -> "L1SetupSpec":
        """Spec for the conventional, non-resizable cache."""
        return cls()

    @classmethod
    def from_setup(cls, setup: Optional[L1Setup]) -> "L1SetupSpec":
        """Convert a live :class:`L1Setup` into a spec."""
        if setup is None or setup.organization is None:
            return cls()
        name = require_registered(setup.organization)
        strategy = None if setup.strategy is None else StrategySpec.from_strategy(setup.strategy)
        return cls(organization=name, strategy=strategy, geometry=setup.organization.geometry)

    def build(self, geometry: CacheGeometry) -> L1Setup:
        """Instantiate the :class:`L1Setup` for a cache of ``geometry``."""
        if self.organization is None:
            if self.strategy is not None:
                # Mirror L1Setup's own guard instead of silently simulating
                # a full-size fixed cache with the strategy dropped.
                raise SimulationError("a resizing strategy requires a resizing organization")
            return L1Setup()
        if self.geometry is not None and self.geometry != geometry:
            raise SimulationError(
                f"organization geometry {self.geometry.describe()} does not match the "
                f"target cache geometry {geometry.describe()}"
            )
        organization = organization_class(self.organization)(geometry)
        strategy = self.strategy.build() if self.strategy is not None else None
        return L1Setup(organization=organization, strategy=strategy)


@dataclass
class SimJob:
    """One complete, self-contained simulation: spec in, result out.

    ``engine`` names the replay engine the executing process should use
    (None = package default).  It is the one field *excluded* from the
    job fingerprint: engines are bit-identical by contract (enforced by
    the cross-engine equivalence suite), so a result computed by either
    engine may serve a job requesting the other — switching ``--engine``
    never invalidates the on-disk cache.

    ``trace`` may be a synthetic :class:`TraceSpec`, an
    :class:`~repro.workloads.ingest.ExternalTraceSpec` naming a trace file
    on disk (fingerprinted by file content), or a literal :class:`Trace`.
    ``sample_every``/``sample_warmup`` select interval sampling (see
    ``docs/SAMPLING.md``); they *are* fingerprinted — a sampled result is
    an estimate and must never serve an exhaustive job or vice versa.
    """

    trace: Union[TraceSpec, ExternalTraceSpec, Trace]
    system: SystemConfig = field(default_factory=SystemConfig)
    d_setup: L1SetupSpec = field(default_factory=L1SetupSpec)
    i_setup: L1SetupSpec = field(default_factory=L1SetupSpec)
    interval_instructions: int = 1500
    warmup_instructions: int = 0
    technology: TechnologyParameters = field(default_factory=TechnologyParameters)
    timing: CoreTimingParameters = field(default_factory=CoreTimingParameters)
    engine: Optional[str] = None
    sample_every: int = 1
    sample_warmup: int = 0

    def fingerprint(self) -> str:
        """Content hash over everything that influences this job's result."""
        return job_fingerprint(self)

    def describe(self) -> dict:
        """Small human-readable summary (stored in cache entries)."""
        if isinstance(self.trace, Trace):
            workload = f"{self.trace.name} ({len(self.trace)} instructions, inline)"
        elif isinstance(self.trace, ExternalTraceSpec):
            workload = f"{self.trace.application} (external: {self.trace.path})"
        else:
            workload = f"{self.trace.application} ({self.trace.n_instructions} instructions)"
        summary = {
            "workload": workload,
            "core": self.system.core.kind.value,
            "d_setup": _describe_setup(self.d_setup),
            "i_setup": _describe_setup(self.i_setup),
            "interval_instructions": self.interval_instructions,
            "warmup_instructions": self.warmup_instructions,
        }
        if self.sample_every > 1:
            summary["sample_every"] = self.sample_every
            summary["sample_warmup"] = self.sample_warmup
        return summary


@dataclass
class LadderJob:
    """One fused multi-configuration pass: K rung specs, one trace decode.

    The executing worker replays the shared trace *once* through every
    rung's cache hierarchy (see :mod:`repro.sim.ladder`) and returns one
    :class:`SimulationResult` per rung, in order — each bit-identical to
    running the rung as a standalone :class:`SimJob`.  The runner fans the
    results out to the rungs' individual job fingerprints, so the on-disk
    cache cannot tell (and need not care) which path computed a result:
    warm caches serve both, and a partially-warm ladder refuses rungs the
    cache already holds (see :meth:`SweepRunner.submit_ladder`).

    Every rung must share the fields the fused pass amortizes — trace,
    system, interval/warmup lengths, technology and timing; only the L1
    setups may differ.  Validated eagerly so a malformed ladder fails at
    submit time, not in a worker.
    """

    rungs: List[SimJob]

    def __post_init__(self) -> None:
        if not self.rungs:
            raise SimulationError("a ladder job needs at least one rung")
        first = self.rungs[0]
        for rung in self.rungs[1:]:
            shared_trace = rung.trace is first.trace or rung.trace == first.trace
            if not (
                shared_trace
                and rung.system == first.system
                and rung.interval_instructions == first.interval_instructions
                and rung.warmup_instructions == first.warmup_instructions
                and rung.technology == first.technology
                and rung.timing == first.timing
                and rung.sample_every == first.sample_every
                and rung.sample_warmup == first.sample_warmup
            ):
                raise SimulationError(
                    "every rung of a ladder job must share the trace, system, "
                    "interval/warmup lengths, sampling schedule, technology and "
                    "timing; only the L1 setups may differ between rungs"
                )

    def describe(self) -> dict:
        """Small human-readable summary (mirrors :meth:`SimJob.describe`)."""
        summary = dict(self.rungs[0].describe())
        summary["fused_rungs"] = [
            f"{_describe_setup(rung.d_setup)} + {_describe_setup(rung.i_setup)}"
            for rung in self.rungs
        ]
        return summary


def execute_ladder_job(job: LadderJob) -> List[SimulationResult]:
    """Run one fused ladder pass to completion (the worker entry point).

    The ladder counterpart of :func:`execute_job`: everything is rebuilt
    from the rung specs, the shared trace is resolved once, and the fused
    engine replays it through every rung's hierarchy in a single pass.
    The ``engine`` field of the rungs is irrelevant here — the fused pass
    *is* an engine choice (the columnar decode feeding K kernels); use the
    per-config submission path to replay a ladder under a specific
    single-run engine.
    """
    from repro.sim.ladder import run_fused  # deferred: ladder imports the simulator stack

    first = job.rungs[0]
    trace = resolve_trace(first.trace)
    simulator = Simulator(first.system, first.technology, first.timing)
    setups = [
        (rung.d_setup.build(first.system.l1d), rung.i_setup.build(first.system.l1i))
        for rung in job.rungs
    ]
    return run_fused(
        simulator,
        trace,
        setups,
        interval_instructions=first.interval_instructions,
        warmup_instructions=first.warmup_instructions,
        sample_every=first.sample_every,
        sample_warmup=first.sample_warmup,
    )


def _describe_setup(spec: L1SetupSpec) -> str:
    if spec.organization is None:
        return "fixed"
    strategy = spec.strategy.kind if spec.strategy is not None else "none"
    label = f"{spec.organization}/{strategy}"
    if spec.strategy is not None and spec.strategy.config is not None:
        label += f"@{spec.strategy.config.label}"
    return label


# ---------------------------------------------------------------------------
# Fingerprinting
# ---------------------------------------------------------------------------


#: Content digests of inline traces, keyed weakly by the trace object.
#: Digesting now hashes the trace's raw column buffers (flat ``array``
#: bytes) instead of one repr per record — ~100x cheaper — but a profiling
#: sweep still submits the same Trace object in every ladder job, so the
#: digest is additionally computed once per object instead of once per job.
#: (Traces are treated as immutable once submitted — the same assumption
#: the simulator itself makes.)
_TRACE_DIGEST_MEMO: "weakref.WeakKeyDictionary[Trace, str]" = weakref.WeakKeyDictionary()


def _trace_digest(trace: Trace) -> str:
    cached = _TRACE_DIGEST_MEMO.get(trace)
    if cached is None:
        cached = trace.content_digest()
        _TRACE_DIGEST_MEMO[trace] = cached
    return cached


def _canonical(value):
    """Reduce a spec component to JSON-serialisable canonical form."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Trace):
        return {"__trace__": _trace_digest(value)}
    if isinstance(value, ExternalTraceSpec):
        # Content-addressed, path deliberately excluded: the same trace file
        # moved (or re-downloaded) elsewhere still hits the cache; editing
        # its bytes — or the ingest semantics — always misses.
        return {"__external_trace__": value.fingerprint_payload()}
    if isinstance(value, L1SetupSpec) and value.organization is not None:
        # Bind the name to the class it currently resolves to, so replacing
        # the registered class behind a name changes the fingerprint instead
        # of serving results simulated by the old class.
        cls = organization_class(value.organization)
        canonical = {"__organization_class__": f"{cls.__module__}.{cls.__qualname__}"}
        for spec_field in fields(value):
            canonical[spec_field.name] = _canonical(getattr(value, spec_field.name))
        return canonical
    if isinstance(value, SimJob):
        canonical = {"__type__": "SimJob"}
        for spec_field in fields(value):
            # `engine` is excluded by design: engines are bit-identical, so
            # the cache serves results across engine choices (see SimJob).
            if spec_field.name == "engine":
                continue
            canonical[spec_field.name] = _canonical(getattr(value, spec_field.name))
        return canonical
    if is_dataclass(value) and not isinstance(value, type):
        canonical = {"__type__": type(value).__name__}
        for spec_field in fields(value):
            canonical[spec_field.name] = _canonical(getattr(value, spec_field.name))
        return canonical
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _canonical(item) for key, item in value.items()}
    if isinstance(value, float):
        # repr round-trips floats exactly, so distinct values never collide.
        return repr(value)
    if value is None or isinstance(value, (bool, int, str)):
        return value
    raise SimulationError(f"cannot fingerprint job component of type {type(value).__name__}")


#: Lazily computed digest of the package's own source files (see
#: :func:`_source_digest`); per-process, so one hash pass per interpreter.
_SOURCE_DIGEST: Optional[str] = None


def _source_digest() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Mixing this into job fingerprints makes stale caches *mechanically*
    impossible: editing any simulation source changes the digest, so every
    cached result computed by the old code misses.  The cost is mild
    over-invalidation (editing e.g. an experiment harness also invalidates)
    and one ~milliseconds hash pass per process.
    """
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        import repro
        from pathlib import Path

        digest = hashlib.sha256()
        package_root = Path(repro.__file__).parent
        for source in sorted(package_root.rglob("*.py")):
            digest.update(str(source.relative_to(package_root)).encode("utf-8"))
            digest.update(source.read_bytes())
        _SOURCE_DIGEST = digest.hexdigest()
    return _SOURCE_DIGEST


def job_fingerprint(job: SimJob) -> str:
    """Hex SHA-256 fingerprint of a job spec.

    Two jobs share a fingerprint iff every parameter that influences the
    simulation outcome is identical: the trace (spec fields, or content for
    inline traces), the full :class:`SystemConfig` (geometries, core, L2,
    memory), both L1 setup specs, interval/warmup lengths, and the
    technology and timing constants.

    The package version *and* a digest of the package's source files are
    mixed in, so any change to simulation logic fails safe: a stale cache
    misses instead of reproducing the old numbers.
    """
    from repro import __version__  # deferred: repro.__init__ imports this module

    payload = json.dumps(
        {
            "version": _FINGERPRINT_VERSION,
            "repro_version": __version__,
            "source": _source_digest(),
            "job": _canonical(job),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Job execution (runs in worker processes; must stay module-level picklable)
# ---------------------------------------------------------------------------

#: Per-process memo of materialised traces keyed by TraceSpec fields, with
#: LRU eviction (a 60k-record trace is tens of MB; an unbounded memo would
#: grow for the process lifetime as contexts with different trace lengths
#: come and go).  Values are never mutated after insertion and the memo is
#: never shared between processes (each worker owns its own copy), so no
#: locking is needed under either fork or spawn start methods.
#: Keys are 3-tuples for synthetic specs (application, n_instructions, seed)
#: and 4-tuples for external files ("external", path, name, content digest).
_TRACE_MEMO: Dict[Tuple, Trace] = {}
_TRACE_MEMO_MAX = 16

#: Per-process trace-resolution counters.  ``trace_memo_reads`` counts every
#: spec-form resolution (memo hit, disk hit or fresh materialisation alike)
#: — i.e. every time a process had to *own* a trace rather than attach one —
#: so a sweep whose workers run entirely over shared-memory refs reports
#: zero worker-side reads.  Snapshots are taken around each job execution
#: and the deltas shipped back to the parent (see :func:`_execute_indexed`).
_STATS = CounterRegistry({"trace_memo_reads": 0})


def _stats_snapshot() -> Dict[str, int]:
    """This process's transport/decode counters, merged into one flat dict."""
    snapshot = dict(_STATS)
    snapshot.update(shm_transport.stats_snapshot())
    snapshot.update(predecode.stats_snapshot())
    return snapshot

#: Process-level on-disk trace memo consulted by :func:`resolve_trace` when
#: the in-memory memo misses.  Configured with :func:`set_trace_cache`
#: (directly, by a :class:`SweepRunner`, or by the pool-worker initializer);
#: None disables disk memoisation of traces.
_TRACE_CACHE: Optional[TraceCache] = None


def set_trace_cache(cache: Union[TraceCache, str, None]) -> Optional[TraceCache]:
    """Install (or clear, with None) the process-level on-disk trace cache."""
    global _TRACE_CACHE
    if cache is not None and not isinstance(cache, TraceCache):
        cache = TraceCache(cache)
    _TRACE_CACHE = cache
    return cache


def get_trace_cache() -> Optional[TraceCache]:
    """The process-level on-disk trace cache, or None when disabled."""
    return _TRACE_CACHE


def resolve_trace(
    trace: Union[TraceSpec, ExternalTraceSpec, Trace, SharedTraceRef],
) -> Trace:
    if isinstance(trace, Trace):
        return trace
    if isinstance(trace, SharedTraceRef):
        # Zero-copy path: attach the parent's published segment.  A failed
        # attach (segment evicted, shared memory lost) falls back to the
        # spec the ref carries, bit-identically — the ref is an optimisation,
        # never the only way to the trace unless the trace was inline.
        attached = shm_transport.attach_trace(trace)
        if attached is not None:
            return attached
        if trace.fallback is not None:
            return resolve_trace(trace.fallback)
        # Transient by classification: a retry re-prepares the job in the
        # parent, which re-publishes the segment, so the next attempt can
        # attach again (only inline traces ship refs without a fallback).
        raise TraceTransportError(
            f"shared-memory segment {trace.segment!r} for trace {trace.name!r} "
            f"is gone and the ref carries no fallback spec"
        )
    _STATS["trace_memo_reads"] += 1
    if isinstance(trace, ExternalTraceSpec):
        # 4-tuple key: cannot collide with a TraceSpec's 3-tuple.  The
        # digest in the key makes an edited file miss the in-memory memo;
        # the disk memo below stores the *converted columns* (binary trace
        # format), so a large text trace is parsed once per machine.
        key = ("external", trace.path, trace.name, trace.content_digest())
    else:
        key = (trace.application, trace.n_instructions, trace.seed)
    cached = _TRACE_MEMO.pop(key, None)
    if cached is None:
        disk = _TRACE_CACHE
        if disk is not None:
            cached = disk.get(trace)
            if cached is None:
                cached = trace.materialize()
                disk.put(trace, cached)
        else:
            cached = trace.materialize()
    _TRACE_MEMO[key] = cached  # re-insert at the back: most recently used
    while len(_TRACE_MEMO) > _TRACE_MEMO_MAX:
        _TRACE_MEMO.pop(next(iter(_TRACE_MEMO)))
    return cached


def execute_job(job: SimJob) -> SimulationResult:
    """Run one job to completion (the worker entry point).

    Everything is rebuilt from the spec — trace, simulator, setups — so the
    result is a pure function of the job and is identical whether executed
    inline, in a forked worker, or in a spawned worker (and, per the
    engine contract, whichever replay engine the job names).
    """
    trace = resolve_trace(job.trace)
    simulator = Simulator(job.system, job.technology, job.timing, engine=job.engine)
    return simulator.run(
        trace,
        d_setup=job.d_setup.build(job.system.l1d),
        i_setup=job.i_setup.build(job.system.l1i),
        interval_instructions=job.interval_instructions,
        warmup_instructions=job.warmup_instructions,
        sample_every=job.sample_every,
        sample_warmup=job.sample_warmup,
    )


class _JobFailure:
    """Wraps a worker-side exception so sibling results are not lost.

    If a worker raised directly, the pool iteration would surface the
    exception mid-batch and any completed results still queued behind it
    would be dropped before the runner could cache them.  The formatted
    worker traceback rides along (pickling strips ``__traceback__``) so the
    re-raise still shows where inside the simulation the failure happened;
    parent-synthesized failures (worker death, timeout) pass ``""`` — there
    is no worker frame to show.  ``attempts`` records how many executions
    the retry policy spent before giving up (1 for non-retried failures).
    """

    def __init__(
        self,
        error: BaseException,
        worker_traceback: Optional[str] = None,
        attempts: int = 1,
    ) -> None:
        self.error = error
        if worker_traceback is None:
            worker_traceback = traceback.format_exc()
        self.worker_traceback = worker_traceback
        self.attempts = attempts


def _execute_indexed(indexed_job):
    """Pool entry point that tags each result with its batch position, so the
    runner can consume completions out of order.  Dispatches on the job
    kind: a :class:`LadderJob` runs the fused multi-configuration pass and
    yields a result *list*, a :class:`SimJob` a single result.

    ``indexed_job`` is ``(position, job)`` — or ``(position, job,
    directive)`` when the parent's fault plan armed this dispatch; the
    directive executes at entry (crash or hang), *before* the stats
    snapshot, exactly where a real segfault or wedge would strike.

    Returns ``(position, outcome, stats_delta)`` — the delta of this
    process's transport/decode counters across the execution, so the
    parent can aggregate worker-side behaviour (shm attaches, trace memo
    reads, decode memo hits) without sharing state between processes.
    """
    if len(indexed_job) == 3:
        position, job, directive = indexed_job
        faults.execute_directive(directive)
    else:
        position, job = indexed_job
    before = _stats_snapshot()
    try:
        if isinstance(job, LadderJob):
            outcome = execute_ladder_job(job)
        else:
            outcome = execute_job(job)
    except Exception as exc:
        outcome = _JobFailure(exc)
    after = _stats_snapshot()
    delta = {
        key: after[key] - before.get(key, 0)
        for key in after
        if after[key] != before.get(key, 0)
    }
    return position, outcome, delta


# ---------------------------------------------------------------------------
# Retry policy
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner reacts to *transient* job failures.

    A job attempt that dies with a :class:`TransientJobError` — worker
    death (:class:`WorkerCrashError`), a wall-clock timeout
    (:class:`JobTimeoutError`), a shared-memory attach failure with no
    fallback (:class:`TraceTransportError`) — is re-dispatched up to
    ``max_attempts`` total executions, each retry delayed by exponential
    backoff with *deterministic* jitter: the jitter factor is hashed from
    the job's identity and the attempt number, so two runs of the same
    sweep back off identically (no RNG state, nothing to seed).  Plain
    deterministic failures (a malformed spec, an empty trace, a simulation
    error) are never retried — they would fail identically every time.

    A job that exhausts its attempts is *quarantined*: its futures fail
    with the last transient error, the job is recorded in
    :attr:`SweepRunner.quarantined`, and — crucially — its batch siblings
    and dependents keep resolving; one poisoned job no longer takes a
    drain down with it.

    Args:
        max_attempts: total executions per job (1 = no retries).
        base_delay: backoff before the first retry, seconds.
        max_delay: backoff ceiling, seconds.
        job_timeout: per-job wall-clock budget, seconds; a job over budget
            has its worker killed and counts as a transient failure.
            None (default) disables timeouts.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    job_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise SimulationError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise SimulationError(f"job_timeout must be positive, got {self.job_timeout}")

    def should_retry(self, error: BaseException, attempt: int) -> bool:
        """Whether to re-dispatch after ``attempt`` executions failed with
        ``error`` (transient classes only, within the attempt budget)."""
        return attempt < self.max_attempts and isinstance(error, TransientJobError)

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Seconds to hold back the retry after ``attempt`` failures.

        Exponential in the attempt number, capped at ``max_delay``, scaled
        by a deterministic jitter factor in [0.5, 1.0) derived from
        ``(key, attempt)`` — so concurrent retries of *different* jobs
        spread out while repeated runs of the *same* sweep stay
        bit-reproducible in their scheduling decisions.
        """
        base = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64
        return base * (0.5 + 0.5 * jitter)


# ---------------------------------------------------------------------------
# The runner
# ---------------------------------------------------------------------------


@dataclass
class _PendingEntry:
    """A concrete job awaiting execution, plus every future tied to it.

    Duplicate submissions (same fingerprint) share one entry; all attached
    futures resolve together when the entry's job completes.
    """

    job: SimJob
    fingerprint: Optional[str]
    futures: List[SimFuture]


@dataclass
class _LadderEntry:
    """A fused ladder awaiting execution: one job, per-rung fan-out.

    ``fingerprints`` and ``futures`` parallel ``job.rungs``: when the fused
    pass completes, each rung's result is cached under that rung's own
    :class:`SimJob` fingerprint and resolves every future attached to that
    rung — exactly the bookkeeping K separate :class:`_PendingEntry`
    objects would have performed, minus K-1 trace decodes.
    """

    job: LadderJob
    fingerprints: List[Optional[str]]
    futures: List[List[SimFuture]]


@dataclass
class _DeferredEntry:
    """A job that can only be built once its dependencies have resolved."""

    builder: Callable[[], SimJob]
    deps: Tuple[SimFuture, ...]
    future: SimFuture


class SweepRunner:
    """Executes batches of :class:`SimJob` with parallelism and caching.

    Args:
        jobs: worker-process count.  1 (the default) executes inline in the
            calling process with zero multiprocessing overhead; results are
            identical either way.
        cache: optional :class:`JobCache`; completed jobs are persisted and
            identical future jobs are served from disk.
        trace_cache: optional :class:`TraceCache` (or directory path) for
            memoising *generated traces* on disk.  Installed as the
            process-level trace cache (see :func:`set_trace_cache`) and
            shipped to pool workers; None keeps whatever the process has
            configured (usually nothing).
        mp_start_method: ``multiprocessing`` start method ("fork", "spawn",
            "forkserver"); None honours the ``REPRO_MP_START_METHOD``
            environment variable, then the platform default.
        retry_policy: how transient failures (worker death, per-job
            timeout, shm attach failure) are retried and when jobs are
            quarantined; None uses the default :class:`RetryPolicy`
            (3 attempts, no timeout).
        checkpoint_path: when set, the runner periodically writes a small
            JSON progress manifest here (atomically) while draining —
            enough for ``--resume`` to report what a killed run had
            completed.  None (default) disables checkpointing.
        checkpoint_interval: minimum seconds between manifest writes.

    Attributes:
        simulate_count: jobs actually simulated by this runner (cache misses).
        cache_hits / cache_misses: on-disk cache lookup statistics.
        dedup_hits: submissions served by an identical job already submitted
            to this runner (in-memory, counted separately from disk hits).
        pool_batches: how many batches were dispatched to the worker pool.
        inline_executions: jobs executed inline in this process (always zero
            when ``jobs > 1`` — every simulation goes through the pool then).
        fused_rungs: rung jobs that joined a fused ladder pass via
            :meth:`submit_ladder` (i.e. were actually simulated fused).
        fused_skipped: rung jobs a :meth:`submit_ladder` call resolved at
            submit time instead of fusing — from the on-disk cache or the
            in-memory dedup memo — so a partially-warm ladder fuses only
            its missing rungs.
        trace_bytes_pickled: trace payload bytes shipped to the pool by
            value (pickled) because the shared-memory transport declined
            them; zero when every dispatched trace rode a segment.
        worker_stats: aggregated per-job counter deltas from the executing
            processes (shm attaches, trace memo reads, decode memo hits —
            see ``_stats_snapshot``), for `--stats` reporting and the
            transport's zero-copy acceptance tests.
        retries: transient-failure re-dispatches performed (every retry of
            every job, summed).
        timeouts: jobs whose attempt exceeded the per-job wall-clock budget
            (each timed-out attempt counts once; its worker was killed).
        worker_deaths: pool workers that died mid-job (crash, OOM kill,
            injected fault) and were replaced.
        quarantined: jobs that exhausted their retry budget, as small
            dicts (job description, attempts, last error); their futures
            failed but their siblings and dependents resolved normally.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[JobCache] = None,
        trace_cache: Union[TraceCache, str, None] = None,
        mp_start_method: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        checkpoint_path: Union[str, Path, None] = None,
        checkpoint_interval: float = 5.0,
    ) -> None:
        if jobs < 1:
            raise SimulationError(f"worker count must be at least 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.checkpoint_path = None if checkpoint_path is None else Path(checkpoint_path)
        self.checkpoint_interval = checkpoint_interval
        self._last_checkpoint = 0.0
        if trace_cache is not None:
            set_trace_cache(trace_cache)
        # Snapshot the process-level cache so the pool initializer ships the
        # same directory whether it was configured here or beforehand.
        self.trace_cache = get_trace_cache()
        if mp_start_method is None:
            mp_start_method = os.environ.get("REPRO_MP_START_METHOD") or None
        self.mp_start_method = mp_start_method
        self.simulate_count = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.dedup_hits = 0
        self.pool_batches = 0
        self.inline_executions = 0
        self.fused_rungs = 0
        self.fused_skipped = 0
        self.trace_bytes_pickled = 0
        self.retries = 0
        self.timeouts = 0
        self.worker_deaths = 0
        self.quarantined: List[dict] = []
        self._interrupted = False
        self.worker_stats: CounterRegistry = CounterRegistry()
        # Shared-memory trace transport: traces dispatched to the pool are
        # published once into this registry and jobs ship SharedTraceRefs.
        # The finalizer unlinks every segment at interpreter exit even when
        # close() is never called (it holds the registry, not the runner,
        # so it does not keep the runner alive).
        self._segments = shm_transport.SegmentRegistry()
        self._segments_finalizer = weakref.finalize(
            self, self._segments.release_all
        )
        self._closing = False
        # One pool for the runner's whole lifetime: workers keep their trace
        # memos warm across batches, so a sweep's trace is generated once per
        # worker instead of once per batch.  The registry snapshot the pool
        # was created with detects late register_organization calls.
        self._pool = None
        self._pool_registry: Dict[str, Type[ResizingOrganization]] = {}
        # Deferred-submission state: concrete jobs (and fused ladders)
        # awaiting the next drain, builder-form jobs awaiting their
        # dependencies, and an in-memory memo of every future this runner
        # ever created (keyed by job fingerprint) so duplicate submissions
        # share one execution.
        self._pending: List[Union[_PendingEntry, _LadderEntry]] = []
        self._deferred: List[_DeferredEntry] = []
        self._memo: Dict[str, SimFuture] = {}
        self._draining = False
        #: Optional observer invoked after every batch entry settles during
        #: a drain, with a small event dict: ``kind`` ("result" or
        #: "failure"), ``jobs`` (rung count for a fused ladder, else 1) and
        #: ``simulated`` (this runner's lifetime execution count).  Runs in
        #: the draining thread; exceptions are swallowed — an observer (the
        #: service layer's progress plumbing) must never wedge a drain.
        self.progress_callback: Optional[Callable[[dict], None]] = None

    # ------------------------------------------------------------- submission
    def submit(self, job: SimJob, label: str = "") -> SimFuture:
        """Enqueue ``job`` and return its future without executing anything.

        The job joins the runner's pending batch; it executes on the next
        :meth:`drain` (or transitively via any future's ``result()``).
        Resolution can happen immediately: an on-disk cache hit, or a
        duplicate of a job already submitted to this runner (same
        fingerprint), returns the already-known future — duplicates within
        a batch simulate exactly once.
        """
        fingerprint = self._try_fingerprint(job)
        if fingerprint is not None:
            existing = self._memo.get(fingerprint)
            # Failures are NOT memoised across submissions: resubmitting a
            # job that failed retries it (the condition may have been
            # transient or since-fixed), exactly as repeated run() calls
            # always re-executed.  _enqueue overwrites the stale entry.
            if existing is not None and not existing.failed():
                self.dedup_hits += 1
                return existing
        future = SimFuture(self, label=label)
        self._enqueue(job, fingerprint, future)
        return future

    def submit_deferred(
        self,
        builder: Callable[[], SimJob],
        deps: Iterable[SimFuture],
        label: str = "",
    ) -> SimFuture:
        """Enqueue a job whose spec depends on other jobs' results.

        ``builder`` is called with no arguments once every future in
        ``deps`` has resolved; it reads the dependency results (via their
        ``result()``, which is then free) and returns the concrete
        :class:`SimJob`.  The returned future resolves when that job does.
        A failed dependency propagates: the deferred future fails with the
        dependency's original exception without the builder ever running.

        This is what lets a dynamic-resizing run — whose miss-bound and
        size-bound parameters are derived from a profiling ladder — be
        enqueued in the same phase as the ladder itself; :meth:`drain`
        executes the ladder in wave one and the dynamic run in wave two.
        """
        future = SimFuture(self, label=label)
        self._deferred.append(_DeferredEntry(builder, tuple(deps), future))
        return future

    def submit_ladder(
        self,
        jobs: Sequence[SimJob],
        labels: Optional[Sequence[str]] = None,
    ) -> List[SimFuture]:
        """Enqueue a ladder of rung jobs to execute as one fused trace pass.

        Returns one future per rung, in order — the same futures
        :meth:`submit` would have produced, resolved from the same per-rung
        cache fingerprints.  Each rung is first checked against the dedup
        memo and the on-disk cache, exactly like an individual submission
        (counted in ``fused_skipped``); only the rungs that actually need
        simulating are fused into a single :class:`LadderJob` (counted in
        ``fused_rungs``), so a partially-warm ladder pays one fused pass
        over its missing rungs and a fully-warm ladder executes nothing.

        The fused pass is bit-identical to running every rung standalone
        (see :mod:`repro.sim.ladder`), which is what makes the per-rung
        fan-out sound: a result computed fused may serve a later
        per-config submission of the same rung and vice versa.  Rungs must
        satisfy the :class:`LadderJob` sharing contract (same trace,
        system, interval/warmup, technology, timing).
        """
        jobs = list(jobs)
        if labels is None:
            labels = [""] * len(jobs)
        elif len(labels) != len(jobs):
            # zip() would silently truncate, dropping rungs (and their
            # futures) off the end of the ladder.
            raise SimulationError(
                f"submit_ladder got {len(jobs)} job(s) but {len(labels)} label(s)"
            )
        futures: List[SimFuture] = []
        missing_jobs: List[SimJob] = []
        missing_fingerprints: List[Optional[str]] = []
        missing_futures: List[List[SimFuture]] = []
        for job, label in zip(jobs, labels):
            fingerprint = self._try_fingerprint(job)
            if fingerprint is not None:
                existing = self._memo.get(fingerprint)
                # Same retry semantics as submit(): failed futures are not
                # reused — the rung rejoins the fused pass instead.
                if existing is not None and not existing.failed():
                    self.dedup_hits += 1
                    self.fused_skipped += 1
                    futures.append(existing)
                    continue
            future = SimFuture(self, label=label)
            futures.append(future)
            if fingerprint is not None:
                self._memo[fingerprint] = future
                if self.cache is not None:
                    cached = self.cache.get(fingerprint)
                    if cached is not None:
                        self.cache_hits += 1
                        self.fused_skipped += 1
                        future._resolve(cached)
                        continue
                    self.cache_misses += 1
            missing_jobs.append(job)
            missing_fingerprints.append(fingerprint)
            missing_futures.append([future])
        if missing_jobs:
            self.fused_rungs += len(missing_jobs)
            self._pending.append(
                _LadderEntry(LadderJob(missing_jobs), missing_fingerprints, missing_futures)
            )
        return futures

    # -------------------------------------------------------------- execution
    def run(self, jobs: Sequence[SimJob]) -> List[SimulationResult]:
        """Execute ``jobs`` and return their results in input order.

        Implemented on top of :meth:`submit` + :meth:`gather`, so batches
        enjoy the same dedup/caching as deferred submissions.  Any failure
        is re-raised only after the whole batch has drained, so every
        completed sibling result is already persisted to the cache.
        """
        return self.gather([self.submit(job) for job in jobs])

    def run_one(self, job: SimJob) -> SimulationResult:
        """Execute a single job (through the cache and dedup memo)."""
        return self.run([job])[0]

    def gather(self, futures: Iterable[SimFuture]) -> List[SimulationResult]:
        """Drain the runner and return the futures' results, in input order.

        Futures may be gathered in any order relative to submission, and a
        future may appear in several gathers.  The first failed future's
        exception is re-raised (with the worker traceback chained) after
        the drain completes, so sibling results are cached first.
        """
        futures = list(futures)
        self.drain()
        for future in futures:
            if future.failed():
                future.result()  # raises with the worker traceback chained
        return [future.result() for future in futures]

    def drain(self) -> None:
        """Execute everything submitted so far, in dependency waves.

        Each wave sends every currently-buildable job to the pool as one
        batch; results then unlock deferred jobs whose dependencies just
        resolved, forming the next wave.  A profile→dynamic graph therefore
        drains in exactly two pool batches regardless of how many
        applications it spans.  Idempotent: draining an empty runner is a
        no-op.

        Not reentrant: a deferred builder that reads a future it did not
        declare in its deps would recurse into this method; the guard
        converts that into a descriptive per-future failure instead of a
        RecursionError (see :meth:`submit_deferred`).
        """
        if self._draining:
            raise SimulationError(
                "drain() re-entered while a drain is already in progress — a deferred "
                "builder resolved a future it did not declare as a dependency; list "
                "every future the builder reads in submit_deferred(deps=...)"
            )
        self._draining = True
        self._interrupted = False
        try:
            self._drain_waves()
        except KeyboardInterrupt:
            # Ctrl-C containment: kill and reap the pool, unlink every
            # shared-memory segment, and drop the pending graph.  The job
            # cache stays consistent by construction — entries are written
            # atomically and only after a result exists — so everything
            # completed before the interrupt is already persisted and a
            # --resume run re-simulates only what was in flight.
            self._interrupted = True
            self._abort_in_flight()
            raise
        finally:
            self._draining = False
            self._write_checkpoint(final=True)

    def _drain_waves(self) -> None:
        while True:
            self._build_ready_deferred()
            if not self._pending:
                if self._deferred:
                    # Only deferred jobs remain and none became buildable:
                    # their dependencies belong to another runner or form a
                    # cycle.  Fail them so result() reports the problem.
                    stuck, self._deferred = self._deferred, []
                    for entry in stuck:
                        entry.future._fail(
                            SimulationError(
                                f"deferred job {entry.future.label or '<unlabelled>'} depends "
                                f"on futures this runner will never resolve (dependency "
                                f"cycle, or a future from a different runner)"
                            )
                        )
                return
            batch, self._pending = self._pending, []
            self._run_batch(batch)

    def _abort_in_flight(self) -> None:
        """Interrupt cleanup: terminate+join the pool, unlink segments and
        clear the pending/deferred graph (their futures stay pending; the
        caller is unwinding anyway).  Idempotent, like everything it calls."""
        self._close_pool()
        self._segments.release_all()
        self._pending.clear()
        self._deferred.clear()

    def _write_checkpoint(self, final: bool = False) -> None:
        """Atomically persist the progress manifest (rate-limited unless
        ``final``).  Best-effort: a manifest write failure never disturbs
        the sweep — the manifest only feeds progress reporting; resume
        correctness comes from the job cache itself."""
        if self.checkpoint_path is None:
            return
        now = time.monotonic()
        if not final and now - self._last_checkpoint < self.checkpoint_interval:
            return
        self._last_checkpoint = now
        manifest = {
            "version": 1,
            "pid": os.getpid(),
            "done": (
                final and not self._pending and not self._deferred and not self._interrupted
            ),
            "interrupted": self._interrupted,
            "simulated": self.simulate_count,
            "cache_hits": self.cache_hits,
            "dedup_hits": self.dedup_hits,
            "fused_rungs": self.fused_rungs,
            "pending": len(self._pending),
            "deferred": len(self._deferred),
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_deaths": self.worker_deaths,
            "quarantined": self.quarantined,
            "updated_at": time.time(),
        }
        try:
            self.checkpoint_path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_json(self.checkpoint_path, manifest, indent=2, sort_keys=True)
        except OSError:
            pass

    @property
    def pending_count(self) -> int:
        """Concrete executions queued for the next drain (dedup already
        applied).  A fused ladder counts as one: it reaches the pool as a
        single task however many rungs it carries."""
        return len(self._pending)

    @property
    def deferred_count(self) -> int:
        """Builder-form jobs still waiting on dependencies."""
        return len(self._deferred)

    # --------------------------------------------------------------- internals
    def _try_fingerprint(self, job: SimJob) -> Optional[str]:
        """Fingerprint ``job``, or None for jobs the spec layer cannot hash
        (those skip dedup and caching but still execute)."""
        try:
            return job.fingerprint()
        except SimulationError:
            return None

    def _enqueue(self, job: SimJob, fingerprint: Optional[str], future: SimFuture) -> None:
        """Register a fresh future for ``job``: resolve from the on-disk
        cache when possible, otherwise append to the pending batch."""
        if fingerprint is not None:
            self._memo[fingerprint] = future
            if self.cache is not None:
                cached = self.cache.get(fingerprint)
                if cached is not None:
                    self.cache_hits += 1
                    future._resolve(cached)
                    return
                self.cache_misses += 1
        self._pending.append(_PendingEntry(job, fingerprint, [future]))

    def _build_ready_deferred(self) -> None:
        """Turn every deferred job whose dependencies resolved into a
        concrete pending job (looping, since a build can unlock others)."""
        progress = True
        while progress and self._deferred:
            progress = False
            remaining: List[_DeferredEntry] = []
            for entry in self._deferred:
                failed_dep = next((dep for dep in entry.deps if dep.failed()), None)
                if failed_dep is not None:
                    # Propagate the dependency's original exception so the
                    # root cause surfaces wherever the result is awaited.
                    entry.future._fail(failed_dep._error, failed_dep._worker_traceback)
                    progress = True
                    continue
                if all(dep.done() for dep in entry.deps):
                    try:
                        job = entry.builder()
                    except Exception as exc:
                        entry.future._fail(exc)
                    else:
                        self._attach_built_job(job, entry.future)
                    progress = True
                else:
                    remaining.append(entry)
            self._deferred = remaining

    def _attach_built_job(self, job: SimJob, future: SimFuture) -> None:
        """Enqueue a builder-produced job, aliasing onto an identical job's
        future when one already exists (the deferred future must resolve in
        lockstep with it rather than simulate again)."""
        fingerprint = self._try_fingerprint(job)
        if fingerprint is not None:
            existing = self._memo.get(fingerprint)
            # A failed memo entry is not aliased onto (mirrors submit):
            # fall through and enqueue a fresh attempt instead.
            if existing is not None and existing is not future and not existing.failed():
                self.dedup_hits += 1
                if existing.done():
                    future._resolve(existing.result())
                    return
                for entry in self._pending:
                    if isinstance(entry, _LadderEntry):
                        if fingerprint in entry.fingerprints:
                            rung = entry.fingerprints.index(fingerprint)
                            entry.futures[rung].append(future)
                            return
                    elif entry.fingerprint == fingerprint:
                        entry.futures.append(future)
                        return
                # The memoised future is pending yet has no pending entry
                # (it was itself deferred and not built yet); run our copy
                # independently rather than risk a resolution deadlock.
                self._pending.append(_PendingEntry(job, None, [future]))
                return
        self._enqueue(job, fingerprint, future)

    def _run_batch(self, batch: "List[Union[_PendingEntry, _LadderEntry]]") -> None:
        """Execute one wave of entries as a single (pool) batch.

        Completions are consumed (and cached) one at a time, in whatever
        order they finish; a failing job marks its futures failed rather
        than raising mid-iteration, so every sibling simulation that
        completes is still cached — a warm restart resumes instead of
        starting over.
        """
        for position, outcome, stats in self._execute([entry.job for entry in batch]):
            self.worker_stats.merge(stats)
            self._write_checkpoint()
            entry = batch[position]
            if isinstance(entry, _LadderEntry):
                if isinstance(outcome, _JobFailure):
                    for rung_futures in entry.futures:
                        for future in rung_futures:
                            future._fail(
                                outcome.error,
                                outcome.worker_traceback,
                                attempts=outcome.attempts,
                            )
                    self._notify_progress("failure", len(entry.futures))
                    continue
                # Fan the fused pass's results out to the per-rung
                # fingerprints: the cache ends up exactly as if every rung
                # had executed as its own job.
                self.simulate_count += len(outcome)
                for rung_job, fingerprint, rung_futures, result in zip(
                    entry.job.rungs, entry.fingerprints, entry.futures, outcome
                ):
                    if self.cache is not None and fingerprint is not None:
                        self.cache.put(fingerprint, result, description=rung_job.describe())
                    for future in rung_futures:
                        future._resolve(result)
                self._notify_progress("result", len(outcome))
                continue
            if isinstance(outcome, _JobFailure):
                for future in entry.futures:
                    future._fail(
                        outcome.error, outcome.worker_traceback, attempts=outcome.attempts
                    )
                self._notify_progress("failure", 1)
                continue
            self.simulate_count += 1
            if self.cache is not None and entry.fingerprint is not None:
                self.cache.put(entry.fingerprint, outcome, description=entry.job.describe())
            for future in entry.futures:
                future._resolve(outcome)
            self._notify_progress("result", 1)

    def _notify_progress(self, kind: str, jobs: int) -> None:
        """Fire :attr:`progress_callback` for one settled batch entry."""
        callback = self.progress_callback
        if callback is None:
            return
        try:
            callback({"kind": kind, "jobs": jobs, "simulated": self.simulate_count})
        except Exception:  # pragma: no cover - observer bugs must not wedge drains
            pass

    def _execute(self, pending: List[SimJob]):
        """Yield (position, result, stats) tuples as jobs complete (any order).

        With ``jobs > 1`` every batch — even a single-job one — goes
        through the pool, so parallel runs perform zero inline executions;
        with ``jobs == 1`` everything runs inline in this process.  Pool
        dispatch rewrites each job's trace into a :class:`SharedTraceRef`
        (publishing the segment on first use) so the pickled job carries a
        few hundred bytes instead of the trace; inline execution skips the
        transport entirely — the trace never leaves this process.
        """
        indexed = list(enumerate(pending))
        if self.jobs <= 1:
            self.inline_executions += len(indexed)
            return self._execute_inline(indexed)
        self.pool_batches += 1
        return self._execute_pool(indexed)

    def _execute_pool(self, indexed):
        """Pool execution with crash containment, timeouts and retries.

        Each job is dispatched through the :class:`FaultTolerantPool` with
        its trace rewritten as a shm ref and (when a fault plan is armed)
        a one-shot fault directive.  Worker death and timeout events are
        converted into :class:`TransientJobError`\\ s and — like transient
        errors raised *inside* a worker — re-dispatched per the retry
        policy with deterministic backoff; a job that exhausts its budget
        is quarantined and yielded as a failure, so its siblings' results
        (and everything not depending on it) still flow.
        """
        pool = self._get_pool()
        policy = self.retry_policy
        originals = dict(indexed)
        attempts = {position: 1 for position, _ in indexed}
        tasks = [(position, self._dispatch_payload(position, job)) for position, job in indexed]
        for event in pool.run_batch(tasks, timeout=policy.job_timeout):
            position = event.task_id
            if event.kind == "result":
                _, outcome, stats = event.value
                if isinstance(outcome, _JobFailure) and isinstance(
                    outcome.error, TransientJobError
                ):
                    if self._retry(pool, originals, attempts, position, outcome.error):
                        continue
                    self._quarantine(originals[position], attempts[position], outcome.error)
                    outcome.attempts = attempts[position]
                yield position, outcome, stats
                continue
            if event.kind == "crash":
                self.worker_deaths += 1
                error: TransientJobError = WorkerCrashError(
                    f"sweep worker died (exit code {event.exitcode}) while executing the "
                    f"job at batch position {position} on attempt "
                    f"{attempts[position]}/{policy.max_attempts}"
                )
            else:  # timeout
                self.timeouts += 1
                error = JobTimeoutError(
                    f"job at batch position {position} exceeded its "
                    f"{policy.job_timeout:.1f}s wall-clock budget (ran {event.elapsed:.1f}s; "
                    f"worker killed) on attempt {attempts[position]}/{policy.max_attempts}"
                )
            if self._retry(pool, originals, attempts, position, error):
                continue
            self._quarantine(originals[position], attempts[position], error)
            yield position, _JobFailure(error, "", attempts=attempts[position]), {}

    def _dispatch_payload(self, position, job):
        """The picklable task for one pool dispatch: the position echo, the
        shm-rewritten job, and this dispatch's fault directive (fault plans
        count *dispatches*, so retries draw fresh — usually empty —
        directives instead of re-firing the crash that killed them)."""
        return (position, self._prepare_for_pool(job), faults.directive_for_dispatch())

    def _retry(self, pool, originals, attempts, position, error) -> bool:
        """Re-dispatch ``position`` after a transient failure if the policy
        allows; returns False when the job must be quarantined instead."""
        attempt = attempts[position]
        if not self.retry_policy.should_retry(error, attempt):
            return False
        attempts[position] = attempt + 1
        self.retries += 1
        job = originals[position]
        delay = self.retry_policy.backoff_delay(self._retry_key(job, position), attempt)
        pool.resubmit(position, self._dispatch_payload(position, job), delay=delay)
        return True

    def _retry_key(self, job, position) -> str:
        """Stable identity for backoff jitter: the job fingerprint when the
        spec layer can hash it, the batch position otherwise."""
        fingerprint = self._try_fingerprint(job) if isinstance(job, SimJob) else None
        return fingerprint if fingerprint is not None else f"batch:{position}"

    def _quarantine(self, job, attempts: int, error: BaseException) -> None:
        """Record a job that exhausted its retry budget.

        The entry carries the job's cache *fingerprints* (one per rung for
        a fused ladder) alongside the human-readable description: the
        checkpoint manifest embeds these entries, so a ``--resume`` run can
        name exactly which jobs the previous attempt quarantined instead of
        silently retrying them from scratch.
        """
        try:
            description = job.describe()
        except Exception:
            description = {}
        if isinstance(job, LadderJob):
            rungs = job.rungs
        else:
            rungs = [job]
        fingerprints = [
            fingerprint
            for fingerprint in (self._try_fingerprint(rung) for rung in rungs)
            if fingerprint is not None
        ]
        self.quarantined.append(
            {
                "job": description,
                "attempts": attempts,
                "error": str(error),
                "fingerprints": fingerprints,
            }
        )

    # ---------------------------------------------------- shared-memory dispatch
    def _prepare_for_pool(self, job: "Union[SimJob, LadderJob]"):
        """A pool-bound copy of ``job`` with its trace(s) as shm refs.

        Returns the original job unchanged when the transport declines
        (shared memory unavailable, publish failure) — the classic pickle
        path — and counts the trace bytes that consequently cross the pool
        boundary by value in :attr:`trace_bytes_pickled`.  The entries kept
        by the runner (for caching, describe(), retries) always hold the
        original job; only the dispatched copy is rewritten.
        """
        if isinstance(job, LadderJob):
            rungs = [self._prepare_sim_job(rung) for rung in job.rungs]
            if all(prepared is original for prepared, original in zip(rungs, job.rungs)):
                return job
            return replace(job, rungs=rungs)
        return self._prepare_sim_job(job)

    def _prepare_sim_job(self, job: SimJob) -> SimJob:
        trace = job.trace
        if isinstance(trace, Trace):
            key = ("inline", _trace_digest(trace))
            fallback = None
            pickled_bytes = trace.nbytes
        elif isinstance(trace, ExternalTraceSpec):
            key = ("external", trace.path, trace.name)
            fallback = trace
            pickled_bytes = 0
        else:
            key = (trace.application, trace.n_instructions, trace.seed)
            fallback = trace
            pickled_bytes = 0
        ref = self._segments.lookup(key)
        if ref is None:
            try:
                materialized = resolve_trace(trace)
            except Exception:
                # Unresolvable trace (unknown application, unreadable
                # file): ship the spec unchanged so the error surfaces in
                # the worker as *this job's* failure — publishing eagerly
                # here would abort the whole drain wave and leave sibling
                # futures unresolved.
                self.trace_bytes_pickled += pickled_bytes
                return job
            ref = self._segments.publish(key, materialized, fallback=fallback)
        if ref is None:
            # Transport declined; the job ships its trace the classic way.
            self.trace_bytes_pickled += pickled_bytes
            return job
        return replace(job, trace=ref)

    @property
    def shm_segments(self) -> int:
        """Distinct shared-memory segments published by this runner."""
        return self._segments.published

    def _execute_inline(self, indexed):
        """Inline execution pins this runner's trace-cache snapshot.

        The on-disk trace memo is process-global, so a runner constructed
        later with a different ``trace_cache`` would otherwise silently
        redirect this runner's trace reads/writes mid-life.  Pinning the
        snapshot for the batch (and restoring afterwards) keeps every
        execution of a runner — inline or pooled — on the cache it was
        built with.
        """
        previous = get_trace_cache()
        set_trace_cache(self.trace_cache)
        try:
            for item in indexed:
                yield _execute_indexed(item)
        finally:
            set_trace_cache(previous)

    def _get_pool(self):
        # A pool whose workers predate a register_organization call would
        # reject jobs naming the new class; recreate it on a stale snapshot.
        # _close_pool (not close) so the rebuild terminates AND joins the
        # old workers — discarding the Pool object without joining leaks
        # its processes until interpreter exit — while the runner's
        # published segments stay live for the replacement pool's jobs.
        if self._pool is not None and self._pool_registry != _ORGANIZATION_REGISTRY:
            self._close_pool()
        if self._pool is None:
            context = multiprocessing.get_context(self.mp_start_method)
            self._pool_registry = dict(_ORGANIZATION_REGISTRY)
            trace_cache_dir = (
                None if self.trace_cache is None else str(self.trace_cache.directory)
            )
            self._pool = FaultTolerantPool(
                context,
                processes=self.jobs,
                target=_execute_indexed,
                initializer=_install_worker_state,
                initargs=(self._pool_registry, trace_cache_dir, faults.plan_text()),
            )
        return self._pool

    # ------------------------------------------------------------- lifecycle
    def release_results(self) -> None:
        """Drop every settled future (and its retained result) from the
        in-memory dedup memo.

        A long-lived runner — the sweep service keeps one alive for days —
        otherwise accumulates a :class:`SimFuture` per distinct job it ever
        executed, each pinning its full :class:`SimulationResult`.  Calling
        this between requests bounds the runner's memory to the working set
        of the *current* request; dedup across requests still happens
        through the on-disk job cache, which serves repeated fingerprints
        without re-simulating.  Pending futures (submitted but not yet
        drained) are kept — dropping them would split a duplicate
        submission away from its in-flight execution.
        """
        self._memo = {
            fingerprint: future
            for fingerprint, future in self._memo.items()
            if not future.done()
        }

    def _close_pool(self) -> None:
        """Terminate and join the worker pool (idempotent).

        Joining matters: a terminated-but-unjoined pool leaves zombie
        worker processes behind for the interpreter's lifetime, which is
        exactly what the registry-change rebuild in :meth:`_get_pool` used
        to risk.  Published shared-memory segments are deliberately left
        alone — a successor pool's jobs may still hold refs to them.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    def close(self) -> None:
        """Shut down the worker pool and unlink every published
        shared-memory segment (idempotent; the runner stays usable — a
        later batch simply starts a fresh pool and republishes).

        Safe under re-entry: a second Ctrl-C can fire a signal handler (or
        ``__del__``, or the ``weakref.finalize`` backstop at interpreter
        exit) *while* a close is already tearing down, and a naive double
        teardown would race the pool join against the segment unlink.  The
        in-progress flag turns any re-entrant call into a no-op — the
        outer close finishes the job — and every step it performs is
        itself idempotent, so close() after close() is always free.
        """
        if self._closing:
            return
        self._closing = True
        try:
            self._close_pool()
            self._segments.release_all()
        finally:
            self._closing = False

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        cache = "none" if self.cache is None else str(self.cache.directory)
        return (
            f"SweepRunner(jobs={self.jobs}, cache={cache}, "
            f"simulated={self.simulate_count}, hits={self.cache_hits}, "
            f"pending={self.pending_count}, deferred={self.deferred_count})"
        )
