"""Profiling sweeps and convenience runners.

Static resizing needs one profiling run per offered configuration (the paper
extracts static sizes "offline through profiling"), and the dynamic
framework's miss-bound / size-bound are derived from the same profile.  The
functions here run those sweeps on top of :class:`repro.sim.simulator.Simulator`
and return the structures the experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.organization import ResizingOrganization, SizeConfig
from repro.resizing.profiler import (
    DynamicParameters,
    ProfilePoint,
    derive_dynamic_parameters,
    select_static_config,
)
from repro.resizing.static_strategy import StaticResizing
from repro.sim.results import SimulationResult
from repro.sim.simulator import L1Setup, Simulator
from repro.workloads.trace import Trace

#: Which L1 cache a sweep resizes.
DCACHE = "dcache"
ICACHE = "icache"


def _setups_for(target: str, setup: L1Setup):
    """Return (d_setup, i_setup) with ``setup`` applied to the targeted cache."""
    if target == DCACHE:
        return setup, L1Setup()
    if target == ICACHE:
        return L1Setup(), setup
    raise SimulationError(f"unknown resizing target {target!r}; use 'dcache' or 'icache'")


def run_baseline(
    simulator: Simulator,
    trace: Trace,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
) -> SimulationResult:
    """Run the non-resizable baseline (both L1 caches fixed at full size)."""
    return simulator.run(
        trace,
        d_setup=L1Setup(),
        i_setup=L1Setup(),
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
    )


def run_with_setups(
    simulator: Simulator,
    trace: Trace,
    d_setup: Optional[L1Setup] = None,
    i_setup: Optional[L1Setup] = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
) -> SimulationResult:
    """Run an arbitrary combination of L1 setups."""
    return simulator.run(
        trace,
        d_setup=d_setup,
        i_setup=i_setup,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
    )


@dataclass
class StaticProfile:
    """Outcome of profiling every configuration an organization offers."""

    organization: ResizingOrganization
    target: str
    baseline: SimulationResult
    points: List[ProfilePoint] = field(default_factory=list)
    results: Dict[SizeConfig, SimulationResult] = field(default_factory=dict)
    max_slowdown: Optional[float] = None

    @property
    def best_point(self) -> ProfilePoint:
        """Profile point with the lowest processor energy-delay."""
        return select_static_config(
            self.points, baseline_cycles=self.baseline.cycles, max_slowdown=self.max_slowdown
        )

    @property
    def best_config(self) -> SizeConfig:
        """Statically selected configuration."""
        return self.best_point.config

    @property
    def best_result(self) -> SimulationResult:
        """Simulation result of the statically selected configuration."""
        return self.results[self.best_config]

    def energy_delay_reduction(self) -> float:
        """Best static energy-delay reduction vs the non-resizable baseline (%)."""
        return self.best_result.energy_delay_reduction(self.baseline)

    def size_reduction(self) -> float:
        """Average cache-size reduction of the statically selected configuration (%)."""
        if self.target == DCACHE:
            return self.best_result.l1d_size_reduction()
        return self.best_result.l1i_size_reduction()

    def dynamic_parameters(
        self, sense_interval_accesses: int = 2048, miss_bound_factor: float = 1.5
    ) -> DynamicParameters:
        """Derive the dynamic framework's parameters from this profile."""
        return derive_dynamic_parameters(
            self.points,
            sense_interval_accesses=sense_interval_accesses,
            miss_bound_factor=miss_bound_factor,
            baseline_cycles=self.baseline.cycles,
            max_slowdown=self.max_slowdown,
        )


def profile_static(
    simulator: Simulator,
    trace: Trace,
    organization: ResizingOrganization,
    target: str = DCACHE,
    baseline: Optional[SimulationResult] = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    max_slowdown: Optional[float] = None,
) -> StaticProfile:
    """Profile every size on the organization's resizing ladder.

    Args:
        simulator: configured simulator (system, technology, timing).
        trace: the application trace (reused unchanged for every candidate).
        organization: the resizing organization to evaluate.
        target: ``"dcache"`` or ``"icache"`` — which L1 is resized.
        baseline: a pre-computed non-resizable baseline run (computed here
            when omitted).
        max_slowdown: optional bound on tolerated slowdown when picking the
            best static configuration.
    """
    if baseline is None:
        baseline = run_baseline(
            simulator, trace, interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
        )
    profile = StaticProfile(
        organization=organization, target=target, baseline=baseline, max_slowdown=max_slowdown
    )
    for config in organization.ladder():
        setup = L1Setup(organization=organization, strategy=StaticResizing(config))
        d_setup, i_setup = _setups_for(target, setup)
        result = simulator.run(
            trace,
            d_setup=d_setup,
            i_setup=i_setup,
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
        )
        if target == DCACHE:
            accesses, misses = result.l1d_accesses, result.l1d_misses
        else:
            accesses, misses = result.l1i_accesses, result.l1i_misses
        profile.points.append(
            ProfilePoint(
                config=config,
                energy=result.energy.total,
                cycles=result.cycles,
                l1_accesses=accesses,
                l1_misses=misses,
            )
        )
        profile.results[config] = result
    return profile


def run_dynamic(
    simulator: Simulator,
    trace: Trace,
    organization: ResizingOrganization,
    parameters: DynamicParameters,
    target: str = DCACHE,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    initial_config=None,
) -> SimulationResult:
    """Run the miss-ratio based dynamic strategy with profiled parameters.

    ``initial_config`` sets the size the cache starts in (typically the
    statically profiled size, since the dynamic parameters come from the same
    profiling pass); the controller is free to move away from it immediately.
    """
    strategy = DynamicResizing(
        miss_bound=parameters.miss_bound,
        size_bound_bytes=parameters.size_bound_bytes,
        sense_interval_accesses=parameters.sense_interval_accesses,
        initial_config=initial_config,
    )
    setup = L1Setup(organization=organization, strategy=strategy)
    d_setup, i_setup = _setups_for(target, setup)
    return simulator.run(
        trace,
        d_setup=d_setup,
        i_setup=i_setup,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
    )
