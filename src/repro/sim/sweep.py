"""Profiling sweeps and the unified :class:`Sweep` facade.

Static resizing needs one profiling run per offered configuration (the paper
extracts static sizes "offline through profiling"), and the dynamic
framework's miss-bound / size-bound are derived from the same profile.  The
machinery here expresses those sweeps as batches of
:class:`repro.sim.runner.SimJob` and executes them through a
:class:`repro.sim.runner.SweepRunner`, so a profiling sweep parallelises
across the organization's whole resizing ladder (and hits the on-disk job
cache) when the caller provides a configured runner.  Without one, a serial,
uncached runner is used and the behaviour — including every computed value —
is identical to calling :meth:`repro.sim.simulator.Simulator.run` directly.

The canonical entry point is the :class:`Sweep` facade: it binds one
simulator and one runner (plus the run parameters shared by every job) and
exposes each sweep in two shapes —

* **Deferred** (:meth:`Sweep.submit_baseline`, :meth:`Sweep.submit_profile`,
  :meth:`Sweep.submit_dynamic`, :meth:`Sweep.submit_with_setups`): enqueue
  jobs on the runner and return futures, so a caller can lay out an *entire
  evaluation* — every application's profiling ladder, then every
  baseline/dynamic/joint run — before a single simulation starts, and the
  runner executes the whole graph as a couple of pool batches.
* **Eager** (:meth:`Sweep.baseline`, :meth:`Sweep.profile`,
  :meth:`Sweep.dynamic`, :meth:`Sweep.with_setups`): submit and resolve
  immediately — the historical call-and-return interface.  The eager
  methods are thin wrappers over the deferred ones, so both paths compute
  byte-identical results.

The module-level ``submit_*`` functions remain as thin aliases of the
facade's deferred methods; the module-level eager functions
(``run_baseline``, ``run_with_setups``, ``run_dynamic``) are **deprecated**
wrappers that emit :class:`DeprecationWarning` and forward to the facade
(``profile_static`` stays silent for now — it is the documented entry point
for unregistered organization classes).

Profiling ladders additionally default to the **fused** execution mode
(``ladder_mode=FUSED``): instead of K per-configuration jobs that each
decode the same trace, the ladder collapses into one
:class:`repro.sim.runner.LadderJob` whose worker decodes each interval once
and feeds every rung's cache hierarchy in the same pass
(:mod:`repro.sim.ladder`).  Results fan out to the rungs' individual cache
fingerprints, so fused and per-config runs serve each other's warm caches
and a partially-warm ladder fuses only its missing rungs;
``ladder_mode=PER_CONFIG`` keeps the historical one-job-per-rung path for
debugging and for spreading a single ladder across pool workers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import SimulationError
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.static_strategy import StaticResizing
from repro.resizing.organization import ResizingOrganization, SizeConfig
from repro.resizing.profiler import (
    DynamicParameters,
    ProfilePoint,
    derive_dynamic_parameters,
    select_static_config,
)
from repro.sim.engine import engine_name
from repro.sim.future import SimFuture
from repro.sim.results import SimulationResult
from repro.sim.runner import (
    L1SetupSpec,
    SimJob,
    StrategySpec,
    SweepRunner,
    TraceSpec,
    require_registered,
    resolve_trace,
)
from repro.sim.simulator import L1Setup, Simulator
from repro.workloads.ingest import ExternalTraceSpec
from repro.workloads.trace import Trace

#: Which L1 cache a sweep resizes.
DCACHE = "dcache"
ICACHE = "icache"

#: How a profiling ladder executes.  ``FUSED`` (the default) collapses the
#: whole ladder into one :class:`repro.sim.runner.LadderJob`: a single
#: worker decodes the trace once and feeds every rung's cache hierarchy in
#: the same pass (see :mod:`repro.sim.ladder`), with results fanned out to
#: the rungs' individual cache fingerprints.  ``PER_CONFIG`` submits each
#: rung as its own job — the historical path, kept for debugging (it honours
#: ``--engine`` per rung and spreads rungs across pool workers).  Both modes
#: are bit-identical and share the job cache in both directions.
FUSED = "fused"
PER_CONFIG = "per-config"
LADDER_MODES = (FUSED, PER_CONFIG)


def require_ladder_mode(ladder_mode: str) -> str:
    """Validate (and return) a ladder-mode name against :data:`LADDER_MODES`."""
    if ladder_mode not in LADDER_MODES:
        known = ", ".join(LADDER_MODES)
        raise SimulationError(
            f"unknown ladder mode {ladder_mode!r}; available modes: {known}"
        )
    return ladder_mode


#: A sweep accepts a materialised trace or a declarative spec — synthetic
#: (:class:`TraceSpec`) or an external trace file
#: (:class:`~repro.workloads.ingest.ExternalTraceSpec`).
TraceLike = Union[Trace, TraceSpec, ExternalTraceSpec]
SetupLike = Union[L1Setup, L1SetupSpec, None]


def _apply_to_target(target: str, setup, empty):
    """Return (d, i) with ``setup`` on the targeted cache and ``empty`` on the other."""
    if target == DCACHE:
        return setup, empty
    if target == ICACHE:
        return empty, setup
    raise SimulationError(f"unknown resizing target {target!r}; use 'dcache' or 'icache'")


def _specs_for(target: str, spec: L1SetupSpec) -> Tuple[L1SetupSpec, L1SetupSpec]:
    """(d_spec, i_spec) with ``spec`` applied to the targeted cache."""
    return _apply_to_target(target, spec, L1SetupSpec())


def _as_setup_spec(setup: SetupLike) -> L1SetupSpec:
    if setup is None:
        return L1SetupSpec()
    if isinstance(setup, L1SetupSpec):
        return setup
    return L1SetupSpec.from_setup(setup)


def _default_runner(runner: Optional[SweepRunner]) -> SweepRunner:
    return runner if runner is not None else SweepRunner()


def make_job(
    simulator: Simulator,
    trace: TraceLike,
    d_setup: SetupLike = None,
    i_setup: SetupLike = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimJob:
    """Build the :class:`SimJob` equivalent of one ``simulator.run(...)`` call.

    Prefer a :class:`TraceSpec` over a materialised :class:`Trace` when the
    job will run on a parallel runner: an inline trace is pickled into every
    job that carries it (a 60k-record trace is several MB per job), whereas
    a spec is a few bytes and each worker materialises it once.  The same
    goes for :class:`~repro.workloads.ingest.ExternalTraceSpec`: the job
    carries a path and a digest, and each worker ingests the file once.

    The simulator's replay-engine choice rides along by name, so a sweep
    replays with the engine the caller configured regardless of which
    worker process executes each job.
    """
    return SimJob(
        trace=trace,
        system=simulator.system,
        d_setup=_as_setup_spec(d_setup),
        i_setup=_as_setup_spec(i_setup),
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        technology=simulator.technology,
        timing=simulator.timing,
        engine=engine_name(simulator.engine),
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def _job_label(kind: str, trace: TraceLike) -> str:
    name = trace.name if isinstance(trace, Trace) else trace.application
    return f"{kind}:{name}"


def _as_live_setup(setup: SetupLike, simulator: Simulator, cache: str) -> Optional[L1Setup]:
    """Materialise a setup argument into the L1Setup the simulator consumes."""
    if setup is None or isinstance(setup, L1Setup):
        return setup
    geometry = simulator.system.l1d if cache == "l1d" else simulator.system.l1i
    return setup.build(geometry)


def _live_setups_for(target: str, setup: L1Setup) -> Tuple[Optional[L1Setup], Optional[L1Setup]]:
    """(d_setup, i_setup) with the live ``setup`` applied to the targeted cache."""
    return _apply_to_target(target, setup, None)


@dataclass
class StaticProfile:
    """Outcome of profiling every configuration an organization offers."""

    organization: ResizingOrganization
    target: str
    baseline: SimulationResult
    points: List[ProfilePoint] = field(default_factory=list)
    results: Dict[SizeConfig, SimulationResult] = field(default_factory=dict)
    max_slowdown: Optional[float] = None

    @property
    def best_point(self) -> ProfilePoint:
        """Profile point with the lowest processor energy-delay."""
        return select_static_config(
            self.points, baseline_cycles=self.baseline.cycles, max_slowdown=self.max_slowdown
        )

    @property
    def best_config(self) -> SizeConfig:
        """Statically selected configuration."""
        return self.best_point.config

    @property
    def best_result(self) -> SimulationResult:
        """Simulation result of the statically selected configuration."""
        return self.results[self.best_config]

    def energy_delay_reduction(self) -> float:
        """Best static energy-delay reduction vs the non-resizable baseline (%)."""
        return self.best_result.energy_delay_reduction(self.baseline)

    def size_reduction(self) -> float:
        """Average cache-size reduction of the statically selected configuration (%)."""
        if self.target == DCACHE:
            return self.best_result.l1d_size_reduction()
        return self.best_result.l1i_size_reduction()

    def dynamic_parameters(
        self, sense_interval_accesses: int = 2048, miss_bound_factor: float = 1.5
    ) -> DynamicParameters:
        """Derive the dynamic framework's parameters from this profile."""
        return derive_dynamic_parameters(
            self.points,
            sense_interval_accesses=sense_interval_accesses,
            miss_bound_factor=miss_bound_factor,
            baseline_cycles=self.baseline.cycles,
            max_slowdown=self.max_slowdown,
        )


def _append_point(profile: StaticProfile, target: str, config, result: SimulationResult) -> None:
    """Record one profiled configuration's result (shared by both sweep paths)."""
    if target == DCACHE:
        accesses, misses = result.l1d_accesses, result.l1d_misses
    else:
        accesses, misses = result.l1i_accesses, result.l1i_misses
    profile.points.append(
        ProfilePoint(
            config=config,
            energy=result.energy.total,
            cycles=result.cycles,
            l1_accesses=accesses,
            l1_misses=misses,
        )
    )
    profile.results[config] = result


@dataclass
class StaticProfileFuture:
    """A profiling sweep whose ladder runs have been enqueued, not resolved.

    Mirrors :class:`StaticProfile` one level earlier: the baseline and one
    future per ladder configuration are submitted to the runner, and
    :meth:`result` assembles the :class:`StaticProfile` once they resolve
    (draining the runner on first call; memoised afterwards).  The
    :attr:`dependencies` list feeds :meth:`SweepRunner.submit_deferred`, so
    downstream jobs — a dynamic run whose parameters derive from this
    profile — can be enqueued *before* the ladder has simulated.
    """

    organization: ResizingOrganization
    target: str
    baseline: Union[SimFuture, SimulationResult]
    ladder: List[SizeConfig]
    futures: List[SimFuture]
    max_slowdown: Optional[float] = None
    _profile: Optional[StaticProfile] = None

    def done(self) -> bool:
        """True once every underlying simulation has resolved."""
        baseline_done = not isinstance(self.baseline, SimFuture) or self.baseline.done()
        return baseline_done and all(future.done() for future in self.futures)

    @property
    def dependencies(self) -> List[SimFuture]:
        """The futures a job deferred on this profile must wait for."""
        deps = list(self.futures)
        if isinstance(self.baseline, SimFuture):
            deps.append(self.baseline)
        return deps

    def result(self) -> StaticProfile:
        """Resolve (draining the runner if needed) into a StaticProfile."""
        if self._profile is None:
            baseline = (
                self.baseline.result()
                if isinstance(self.baseline, SimFuture)
                else self.baseline
            )
            profile = StaticProfile(
                organization=self.organization,
                target=self.target,
                baseline=baseline,
                max_slowdown=self.max_slowdown,
            )
            for config, future in zip(self.ladder, self.futures):
                _append_point(profile, self.target, config, future.result())
            self._profile = profile
        return self._profile


def _dynamic_job(
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    parameters: DynamicParameters,
    target: str,
    interval_instructions: int,
    warmup_instructions: int,
    initial_config,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimJob:
    """The SimJob for one dynamic-resizing run (shared by both API shapes)."""
    spec = L1SetupSpec(
        organization=organization.name,
        geometry=organization.geometry,
        strategy=StrategySpec.dynamic(
            miss_bound=parameters.miss_bound,
            size_bound_bytes=parameters.size_bound_bytes,
            sense_interval_accesses=parameters.sense_interval_accesses,
            initial_config=initial_config,
        ),
    )
    d_spec, i_spec = _specs_for(target, spec)
    return make_job(
        simulator,
        trace,
        d_setup=d_spec,
        i_setup=i_spec,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


class Sweep:
    """One simulator, one runner, every sweep shape — the unified facade.

    A :class:`Sweep` binds the pieces every submission needs (the configured
    simulator, the runner executing the jobs, and the run parameters shared
    across an evaluation — interval/warmup instructions, the sampling
    schedule, the ladder mode, the slowdown bound) so call sites name only
    what varies: the trace, the organization, the target.

    Every method accepts the shared parameters as per-call keyword overrides
    (``None`` means "use the sweep's default"), so one facade instance can
    serve an entire evaluation while still expressing the odd special run.

    The ``submit_*`` methods enqueue and return futures (nothing executes
    until :meth:`drain` or a ``result()`` call); their eager counterparts
    (:meth:`baseline`, :meth:`profile`, :meth:`dynamic`,
    :meth:`with_setups`) resolve immediately and also carry the in-process
    fallbacks for setups the declarative job layer cannot express
    (unregistered organization classes, custom strategy subclasses).
    """

    def __init__(
        self,
        simulator: Simulator,
        runner: Optional[SweepRunner] = None,
        interval_instructions: int = 1500,
        warmup_instructions: int = 0,
        sample_every: int = 1,
        sample_warmup: int = 0,
        ladder_mode: str = FUSED,
        max_slowdown: Optional[float] = None,
    ) -> None:
        self.simulator = simulator
        #: Every job this facade submits executes through this runner, so a
        #: parallel and/or cache-backed runner accelerates the whole sweep.
        #: Serial and uncached when omitted — identical numbers, no reuse.
        self.runner = _default_runner(runner)
        self.interval_instructions = interval_instructions
        self.warmup_instructions = warmup_instructions
        self.sample_every = sample_every
        self.sample_warmup = sample_warmup
        self.ladder_mode = require_ladder_mode(ladder_mode)
        self.max_slowdown = max_slowdown

    # ------------------------------------------------------------- internals
    def _run_kwargs(
        self,
        interval_instructions: Optional[int],
        warmup_instructions: Optional[int],
        sample_every: Optional[int],
        sample_warmup: Optional[int],
    ) -> Dict[str, int]:
        """Resolve per-call overrides against the facade's defaults."""
        return {
            "interval_instructions": (
                self.interval_instructions
                if interval_instructions is None else interval_instructions
            ),
            "warmup_instructions": (
                self.warmup_instructions
                if warmup_instructions is None else warmup_instructions
            ),
            "sample_every": self.sample_every if sample_every is None else sample_every,
            "sample_warmup": self.sample_warmup if sample_warmup is None else sample_warmup,
        }

    # -------------------------------------------------------------- baseline
    def submit_baseline(
        self,
        trace: TraceLike,
        interval_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        sample_every: Optional[int] = None,
        sample_warmup: Optional[int] = None,
    ) -> SimFuture:
        """Enqueue the non-resizable baseline and return its future."""
        job = make_job(
            self.simulator,
            trace,
            **self._run_kwargs(
                interval_instructions, warmup_instructions, sample_every, sample_warmup
            ),
        )
        return self.runner.submit(job, label=_job_label("baseline", trace))

    def baseline(
        self,
        trace: TraceLike,
        interval_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        sample_every: Optional[int] = None,
        sample_warmup: Optional[int] = None,
    ) -> SimulationResult:
        """Run the non-resizable baseline (both L1 caches fixed at full size)."""
        return self.submit_baseline(
            trace,
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
            sample_every=sample_every,
            sample_warmup=sample_warmup,
        ).result()

    # ----------------------------------------------------- arbitrary setups
    def submit_with_setups(
        self,
        trace: TraceLike,
        d_setup: SetupLike = None,
        i_setup: SetupLike = None,
        interval_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        sample_every: Optional[int] = None,
        sample_warmup: Optional[int] = None,
    ) -> SimFuture:
        """Enqueue an arbitrary combination of L1 setups and return its future.

        Unlike :meth:`with_setups` there is no in-process fallback: the
        setups must be expressible as job specs (registered organizations,
        built-in strategy classes), because a deferred job has to be
        picklable for whichever worker eventually executes it.
        """
        job = make_job(
            self.simulator,
            trace,
            d_setup=d_setup,
            i_setup=i_setup,
            **self._run_kwargs(
                interval_instructions, warmup_instructions, sample_every, sample_warmup
            ),
        )
        return self.runner.submit(job, label=_job_label("setups", trace))

    def with_setups(
        self,
        trace: TraceLike,
        d_setup: SetupLike = None,
        i_setup: SetupLike = None,
        interval_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        sample_every: Optional[int] = None,
        sample_warmup: Optional[int] = None,
    ) -> SimulationResult:
        """Run an arbitrary combination of L1 setups.

        Setups that cannot be expressed as job specs (a custom strategy
        class, an unregistered organization) are still supported: they run
        directly in this process, exactly as before the sweep engine
        existed, bypassing the runner's pool and cache (which both require
        declarative, picklable jobs).

        Note that for the built-in strategy classes the run executes from a
        spec (a fresh instance, possibly in a worker process), so counters
        on a live strategy object the caller passed in (e.g.
        ``DynamicResizing.upsizes``) are *not* updated; pass a strategy
        subclass to force the in-process path when instrumenting a run that
        way.
        """
        kwargs = self._run_kwargs(
            interval_instructions, warmup_instructions, sample_every, sample_warmup
        )
        try:
            future = self.submit_with_setups(trace, d_setup=d_setup, i_setup=i_setup, **kwargs)
        except SimulationError:
            return self.simulator.run(
                resolve_trace(trace),  # shares the runner's per-process trace memo
                d_setup=_as_live_setup(d_setup, self.simulator, "l1d"),
                i_setup=_as_live_setup(i_setup, self.simulator, "l1i"),
                **kwargs,
            )
        return future.result()

    # ------------------------------------------------------------- profiling
    def submit_profile(
        self,
        trace: TraceLike,
        organization: ResizingOrganization,
        target: str = DCACHE,
        baseline: Union[SimFuture, SimulationResult, None] = None,
        max_slowdown: Optional[float] = None,
        ladder_mode: Optional[str] = None,
        interval_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        sample_every: Optional[int] = None,
        sample_warmup: Optional[int] = None,
    ) -> StaticProfileFuture:
        """Enqueue a whole profiling ladder and return its profile future.

        ``baseline`` may be an already-resolved result, a future from an
        earlier submission (shared across profiles of the same application),
        or None to enqueue the baseline alongside the ladder.  Nothing
        executes until the runner drains; the organization must be
        registered (the deferred path has no in-process fallback — use
        :meth:`profile` for unregistered classes).

        ``ladder_mode`` selects how the ladder executes (see :data:`FUSED` /
        :data:`PER_CONFIG`): fused, the whole ladder — and, when the
        baseline is enqueued here too, the baseline with it (its L1s are
        fixed, which is exactly the shape the fused engine pilots) — reaches
        the runner as one job whose results fan out to the rungs' individual
        cache fingerprints; per-config submits one job per rung.  Results
        are bit-identical either way, and a partially-warm ladder only fuses
        the rungs the cache cannot serve.
        """
        require_registered(organization)
        mode = require_ladder_mode(self.ladder_mode if ladder_mode is None else ladder_mode)
        if max_slowdown is None:
            max_slowdown = self.max_slowdown
        kwargs = self._run_kwargs(
            interval_instructions, warmup_instructions, sample_every, sample_warmup
        )
        ladder = organization.ladder()
        rung_jobs: List[SimJob] = []
        rung_labels: List[str] = []
        for config in ladder:
            spec = L1SetupSpec(
                organization=organization.name,
                strategy=StrategySpec.static(config),
                geometry=organization.geometry,
            )
            d_spec, i_spec = _specs_for(target, spec)
            rung_jobs.append(
                make_job(self.simulator, trace, d_setup=d_spec, i_setup=i_spec, **kwargs)
            )
            rung_labels.append(f"{_job_label('profile', trace)}@{config.label}")

        if mode == FUSED:
            if baseline is None:
                # The baseline is a rung like any other to the fused engine
                # (fixed L1s on the shared trace), so ride it along in the
                # same pass instead of decoding the trace once more for it.
                rung_jobs.insert(0, make_job(self.simulator, trace, **kwargs))
                rung_labels.insert(0, _job_label("baseline", trace))
                futures = self.runner.submit_ladder(rung_jobs, labels=rung_labels)
                baseline = futures.pop(0)
            else:
                futures = self.runner.submit_ladder(rung_jobs, labels=rung_labels)
        else:
            if baseline is None:
                baseline = self.submit_baseline(trace, **kwargs)
            futures = [
                self.runner.submit(job, label=label)
                for job, label in zip(rung_jobs, rung_labels)
            ]
        return StaticProfileFuture(
            organization=organization,
            target=target,
            baseline=baseline,
            ladder=ladder,
            futures=futures,
            max_slowdown=max_slowdown,
        )

    def profile(
        self,
        trace: TraceLike,
        organization: ResizingOrganization,
        target: str = DCACHE,
        baseline: Optional[SimulationResult] = None,
        max_slowdown: Optional[float] = None,
        ladder_mode: Optional[str] = None,
        interval_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        sample_every: Optional[int] = None,
        sample_warmup: Optional[int] = None,
    ) -> StaticProfile:
        """Profile every size on the organization's resizing ladder.

        By default the whole ladder (plus the baseline, when not supplied)
        executes as one *fused* trace pass — decoded once, dispatched to
        every candidate configuration (see :mod:`repro.sim.ladder`); pass
        ``ladder_mode="per-config"`` to submit one job per rung instead,
        which spreads rungs across a parallel runner's workers.  Both modes
        produce bit-identical profiles and share the job cache.

        Organizations whose class is not registered with the runner's
        registry (see :func:`repro.sim.runner.register_organization`) are
        still supported: their ladders simulate directly in this process,
        bypassing the pool and cache, which both need declarative job specs.
        """
        kwargs = self._run_kwargs(
            interval_instructions, warmup_instructions, sample_every, sample_warmup
        )
        if max_slowdown is None:
            max_slowdown = self.max_slowdown
        try:
            require_registered(organization)
        except SimulationError:
            # Unregistered organization class: simulate directly in this
            # process (the pre-engine behaviour).
            return _profile_static_direct(
                self.simulator, trace, organization, target, baseline,
                kwargs["interval_instructions"], kwargs["warmup_instructions"],
                max_slowdown, kwargs["sample_every"], kwargs["sample_warmup"],
            )
        return self.submit_profile(
            trace,
            organization,
            target=target,
            baseline=baseline,
            max_slowdown=max_slowdown,
            ladder_mode=ladder_mode,
            **kwargs,
        ).result()

    # --------------------------------------------------------------- dynamic
    def submit_dynamic(
        self,
        trace: TraceLike,
        organization: ResizingOrganization,
        profile: StaticProfileFuture,
        target: str = DCACHE,
        sense_interval_accesses: int = 2048,
        miss_bound_factor: float = 1.5,
        start_at_best_config: bool = True,
        interval_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        sample_every: Optional[int] = None,
        sample_warmup: Optional[int] = None,
    ) -> SimFuture:
        """Enqueue a dynamic run whose parameters derive from a pending profile.

        The dynamic job cannot be built yet — its miss-bound and size-bound
        come from the profiling ladder's results — so it is submitted as a
        *deferred* job depending on the profile's futures: the runner
        executes the ladder in one wave, derives the parameters, and runs
        the dynamic job in the next, all within a single
        :meth:`SweepRunner.drain`.

        ``start_at_best_config`` starts the cache at the statically profiled
        size (the shape every experiment uses); pass False to start
        full-size.
        """
        require_registered(organization)
        kwargs = self._run_kwargs(
            interval_instructions, warmup_instructions, sample_every, sample_warmup
        )
        simulator = self.simulator

        def builder() -> SimJob:
            resolved = profile.result()  # dependencies guarantee this is free
            parameters = resolved.dynamic_parameters(
                sense_interval_accesses=sense_interval_accesses,
                miss_bound_factor=miss_bound_factor,
            )
            initial_config = resolved.best_config if start_at_best_config else None
            return _dynamic_job(
                simulator, trace, organization, parameters,
                target, kwargs["interval_instructions"], kwargs["warmup_instructions"],
                initial_config,
                sample_every=kwargs["sample_every"], sample_warmup=kwargs["sample_warmup"],
            )

        return self.runner.submit_deferred(
            builder, profile.dependencies, label=_job_label("dynamic", trace)
        )

    def dynamic(
        self,
        trace: TraceLike,
        organization: ResizingOrganization,
        parameters: DynamicParameters,
        target: str = DCACHE,
        initial_config=None,
        interval_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        sample_every: Optional[int] = None,
        sample_warmup: Optional[int] = None,
    ) -> SimulationResult:
        """Run the miss-ratio based dynamic strategy with profiled parameters.

        ``initial_config`` sets the size the cache starts in (typically the
        statically profiled size, since the dynamic parameters come from the
        same profiling pass); the controller is free to move away from it
        immediately.  Unregistered organization classes run in-process, as
        with :meth:`profile`.
        """
        kwargs = self._run_kwargs(
            interval_instructions, warmup_instructions, sample_every, sample_warmup
        )
        try:
            require_registered(organization)
        except SimulationError:
            strategy = DynamicResizing(
                miss_bound=parameters.miss_bound,
                size_bound_bytes=parameters.size_bound_bytes,
                sense_interval_accesses=parameters.sense_interval_accesses,
                initial_config=initial_config,
            )
            d_setup, i_setup = _live_setups_for(target, L1Setup(organization, strategy))
            return self.simulator.run(
                resolve_trace(trace), d_setup=d_setup, i_setup=i_setup, **kwargs
            )
        job = _dynamic_job(
            self.simulator, trace, organization, parameters,
            target, kwargs["interval_instructions"], kwargs["warmup_instructions"],
            initial_config,
            sample_every=kwargs["sample_every"], sample_warmup=kwargs["sample_warmup"],
        )
        return self.runner.submit(job, label=_job_label("dynamic", trace)).result()

    # ----------------------------------------------------------------- drain
    def drain(self) -> None:
        """Execute every enqueued job now (dependency waves, pool batches)."""
        self.runner.drain()


# ---------------------------------------------------------------------------
# Module-level functions.  The ``submit_*`` names are thin aliases of the
# facade's deferred methods (library code predating the facade uses them);
# the eager ``run_*`` names are deprecated wrappers.
# ---------------------------------------------------------------------------


def submit_baseline(
    runner: SweepRunner,
    simulator: Simulator,
    trace: TraceLike,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimFuture:
    """Enqueue the non-resizable baseline and return its future."""
    return Sweep(simulator, runner).submit_baseline(
        trace,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def run_baseline(
    simulator: Simulator,
    trace: TraceLike,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    runner: Optional[SweepRunner] = None,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimulationResult:
    """Deprecated alias — use :meth:`Sweep.baseline`."""
    warnings.warn(
        "run_baseline() is deprecated; use Sweep(simulator, runner).baseline(trace)",
        DeprecationWarning,
        stacklevel=2,
    )
    return Sweep(simulator, runner).baseline(
        trace,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def submit_with_setups(
    runner: SweepRunner,
    simulator: Simulator,
    trace: TraceLike,
    d_setup: SetupLike = None,
    i_setup: SetupLike = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimFuture:
    """Enqueue an arbitrary combination of L1 setups and return its future.

    See :meth:`Sweep.submit_with_setups` (no in-process fallback here).
    """
    return Sweep(simulator, runner).submit_with_setups(
        trace,
        d_setup=d_setup,
        i_setup=i_setup,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def run_with_setups(
    simulator: Simulator,
    trace: TraceLike,
    d_setup: SetupLike = None,
    i_setup: SetupLike = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    runner: Optional[SweepRunner] = None,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimulationResult:
    """Deprecated alias — use :meth:`Sweep.with_setups`."""
    warnings.warn(
        "run_with_setups() is deprecated; use Sweep(simulator, runner).with_setups(trace, ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return Sweep(simulator, runner).with_setups(
        trace,
        d_setup=d_setup,
        i_setup=i_setup,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def submit_profile_static(
    runner: SweepRunner,
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    target: str = DCACHE,
    baseline: Union[SimFuture, SimulationResult, None] = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    max_slowdown: Optional[float] = None,
    ladder_mode: str = FUSED,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> StaticProfileFuture:
    """Enqueue a whole profiling ladder and return its profile future.

    See :meth:`Sweep.submit_profile` for the full semantics.
    """
    return Sweep(simulator, runner).submit_profile(
        trace,
        organization,
        target=target,
        baseline=baseline,
        max_slowdown=max_slowdown,
        ladder_mode=ladder_mode,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def profile_static(
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    target: str = DCACHE,
    baseline: Optional[SimulationResult] = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    max_slowdown: Optional[float] = None,
    runner: Optional[SweepRunner] = None,
    ladder_mode: str = FUSED,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> StaticProfile:
    """Profile every size on the organization's resizing ladder.

    Alias of :meth:`Sweep.profile` — the documented entry point for
    unregistered organization classes, hence not (yet) deprecated.
    """
    return Sweep(simulator, runner).profile(
        trace,
        organization,
        target=target,
        baseline=baseline,
        max_slowdown=max_slowdown,
        ladder_mode=ladder_mode,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def submit_dynamic(
    runner: SweepRunner,
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    profile: StaticProfileFuture,
    target: str = DCACHE,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sense_interval_accesses: int = 2048,
    miss_bound_factor: float = 1.5,
    start_at_best_config: bool = True,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimFuture:
    """Enqueue a dynamic run whose parameters derive from a pending profile.

    See :meth:`Sweep.submit_dynamic` for the full semantics.
    """
    return Sweep(simulator, runner).submit_dynamic(
        trace,
        organization,
        profile,
        target=target,
        sense_interval_accesses=sense_interval_accesses,
        miss_bound_factor=miss_bound_factor,
        start_at_best_config=start_at_best_config,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def run_dynamic(
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    parameters: DynamicParameters,
    target: str = DCACHE,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    initial_config=None,
    runner: Optional[SweepRunner] = None,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimulationResult:
    """Deprecated alias — use :meth:`Sweep.dynamic`."""
    warnings.warn(
        "run_dynamic() is deprecated; use Sweep(simulator, runner).dynamic(trace, ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return Sweep(simulator, runner).dynamic(
        trace,
        organization,
        parameters,
        target=target,
        initial_config=initial_config,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def _profile_static_direct(
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    target: str,
    baseline: Optional[SimulationResult],
    interval_instructions: int,
    warmup_instructions: int,
    max_slowdown: Optional[float],
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> StaticProfile:
    """In-process profiling sweep for organizations the spec layer cannot name."""
    trace_obj = resolve_trace(trace)
    _live_setups_for(target, L1Setup())  # validate the target up front
    if baseline is None:
        baseline = simulator.run(
            trace_obj,
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
            sample_every=sample_every,
            sample_warmup=sample_warmup,
        )
    profile = StaticProfile(
        organization=organization, target=target, baseline=baseline, max_slowdown=max_slowdown
    )
    for config in organization.ladder():
        setup = L1Setup(organization=organization, strategy=StaticResizing(config))
        d_setup, i_setup = _live_setups_for(target, setup)
        result = simulator.run(
            trace_obj,
            d_setup=d_setup,
            i_setup=i_setup,
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
            sample_every=sample_every,
            sample_warmup=sample_warmup,
        )
        _append_point(profile, target, config, result)
    return profile
