"""Profiling sweeps and convenience runners.

Static resizing needs one profiling run per offered configuration (the paper
extracts static sizes "offline through profiling"), and the dynamic
framework's miss-bound / size-bound are derived from the same profile.  The
functions here express those sweeps as batches of :class:`repro.sim.runner.SimJob`
and execute them through a :class:`repro.sim.runner.SweepRunner`, so a
profiling sweep parallelises across the organization's whole resizing ladder
(and hits the on-disk job cache) when the caller provides a configured
runner.  Without one, a serial, uncached runner is used and the behaviour —
including every computed value — is identical to calling
:meth:`repro.sim.simulator.Simulator.run` directly.

Two shapes of API live here:

* **Eager** (``run_baseline``, ``profile_static``, ``run_dynamic``,
  ``run_with_setups``): submit and resolve immediately — the historical
  call-and-return interface.
* **Deferred** (``submit_baseline``, ``submit_profile_static``,
  ``submit_dynamic``, ``submit_with_setups``): enqueue jobs on the runner
  and return futures, so a caller can lay out an *entire evaluation* —
  every application's profiling ladder, then every baseline/dynamic/joint
  run — before a single simulation starts, and the runner executes the
  whole graph as a couple of pool batches.  The eager functions are thin
  wrappers over the deferred ones, so both paths compute byte-identical
  results.

Profiling ladders additionally default to the **fused** execution mode
(``ladder_mode=FUSED``): instead of K per-configuration jobs that each
decode the same trace, the ladder collapses into one
:class:`repro.sim.runner.LadderJob` whose worker decodes each interval once
and feeds every rung's cache hierarchy in the same pass
(:mod:`repro.sim.ladder`).  Results fan out to the rungs' individual cache
fingerprints, so fused and per-config runs serve each other's warm caches
and a partially-warm ladder fuses only its missing rungs;
``ladder_mode=PER_CONFIG`` keeps the historical one-job-per-rung path for
debugging and for spreading a single ladder across pool workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.common.errors import SimulationError
from repro.resizing.dynamic_strategy import DynamicResizing
from repro.resizing.static_strategy import StaticResizing
from repro.resizing.organization import ResizingOrganization, SizeConfig
from repro.resizing.profiler import (
    DynamicParameters,
    ProfilePoint,
    derive_dynamic_parameters,
    select_static_config,
)
from repro.sim.engine import engine_name
from repro.sim.future import SimFuture
from repro.sim.results import SimulationResult
from repro.sim.runner import (
    L1SetupSpec,
    SimJob,
    StrategySpec,
    SweepRunner,
    TraceSpec,
    require_registered,
    resolve_trace,
)
from repro.sim.simulator import L1Setup, Simulator
from repro.workloads.ingest import ExternalTraceSpec
from repro.workloads.trace import Trace

#: Which L1 cache a sweep resizes.
DCACHE = "dcache"
ICACHE = "icache"

#: How a profiling ladder executes.  ``FUSED`` (the default) collapses the
#: whole ladder into one :class:`repro.sim.runner.LadderJob`: a single
#: worker decodes the trace once and feeds every rung's cache hierarchy in
#: the same pass (see :mod:`repro.sim.ladder`), with results fanned out to
#: the rungs' individual cache fingerprints.  ``PER_CONFIG`` submits each
#: rung as its own job — the historical path, kept for debugging (it honours
#: ``--engine`` per rung and spreads rungs across pool workers).  Both modes
#: are bit-identical and share the job cache in both directions.
FUSED = "fused"
PER_CONFIG = "per-config"
LADDER_MODES = (FUSED, PER_CONFIG)


def require_ladder_mode(ladder_mode: str) -> str:
    """Validate (and return) a ladder-mode name against :data:`LADDER_MODES`."""
    if ladder_mode not in LADDER_MODES:
        known = ", ".join(LADDER_MODES)
        raise SimulationError(
            f"unknown ladder mode {ladder_mode!r}; available modes: {known}"
        )
    return ladder_mode


#: A sweep accepts a materialised trace or a declarative spec — synthetic
#: (:class:`TraceSpec`) or an external trace file
#: (:class:`~repro.workloads.ingest.ExternalTraceSpec`).
TraceLike = Union[Trace, TraceSpec, ExternalTraceSpec]
SetupLike = Union[L1Setup, L1SetupSpec, None]


def _apply_to_target(target: str, setup, empty):
    """Return (d, i) with ``setup`` on the targeted cache and ``empty`` on the other."""
    if target == DCACHE:
        return setup, empty
    if target == ICACHE:
        return empty, setup
    raise SimulationError(f"unknown resizing target {target!r}; use 'dcache' or 'icache'")


def _specs_for(target: str, spec: L1SetupSpec) -> Tuple[L1SetupSpec, L1SetupSpec]:
    """(d_spec, i_spec) with ``spec`` applied to the targeted cache."""
    return _apply_to_target(target, spec, L1SetupSpec())


def _as_setup_spec(setup: SetupLike) -> L1SetupSpec:
    if setup is None:
        return L1SetupSpec()
    if isinstance(setup, L1SetupSpec):
        return setup
    return L1SetupSpec.from_setup(setup)


def _default_runner(runner: Optional[SweepRunner]) -> SweepRunner:
    return runner if runner is not None else SweepRunner()


def make_job(
    simulator: Simulator,
    trace: TraceLike,
    d_setup: SetupLike = None,
    i_setup: SetupLike = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimJob:
    """Build the :class:`SimJob` equivalent of one ``simulator.run(...)`` call.

    Prefer a :class:`TraceSpec` over a materialised :class:`Trace` when the
    job will run on a parallel runner: an inline trace is pickled into every
    job that carries it (a 60k-record trace is several MB per job), whereas
    a spec is a few bytes and each worker materialises it once.  The same
    goes for :class:`~repro.workloads.ingest.ExternalTraceSpec`: the job
    carries a path and a digest, and each worker ingests the file once.

    The simulator's replay-engine choice rides along by name, so a sweep
    replays with the engine the caller configured regardless of which
    worker process executes each job.
    """
    return SimJob(
        trace=trace,
        system=simulator.system,
        d_setup=_as_setup_spec(d_setup),
        i_setup=_as_setup_spec(i_setup),
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        technology=simulator.technology,
        timing=simulator.timing,
        engine=engine_name(simulator.engine),
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def submit_baseline(
    runner: SweepRunner,
    simulator: Simulator,
    trace: TraceLike,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimFuture:
    """Enqueue the non-resizable baseline and return its future."""
    job = make_job(
        simulator,
        trace,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )
    return runner.submit(job, label=_job_label("baseline", trace))


def run_baseline(
    simulator: Simulator,
    trace: TraceLike,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    runner: Optional[SweepRunner] = None,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimulationResult:
    """Run the non-resizable baseline (both L1 caches fixed at full size)."""
    return submit_baseline(
        _default_runner(runner),
        simulator,
        trace,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    ).result()


def _job_label(kind: str, trace: TraceLike) -> str:
    name = trace.name if isinstance(trace, Trace) else trace.application
    return f"{kind}:{name}"


def submit_with_setups(
    runner: SweepRunner,
    simulator: Simulator,
    trace: TraceLike,
    d_setup: SetupLike = None,
    i_setup: SetupLike = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimFuture:
    """Enqueue an arbitrary combination of L1 setups and return its future.

    Unlike :func:`run_with_setups` there is no in-process fallback: the
    setups must be expressible as job specs (registered organizations,
    built-in strategy classes), because a deferred job has to be picklable
    for whichever worker eventually executes it.
    """
    job = make_job(
        simulator,
        trace,
        d_setup=d_setup,
        i_setup=i_setup,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )
    return runner.submit(job, label=_job_label("setups", trace))


def run_with_setups(
    simulator: Simulator,
    trace: TraceLike,
    d_setup: SetupLike = None,
    i_setup: SetupLike = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    runner: Optional[SweepRunner] = None,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimulationResult:
    """Run an arbitrary combination of L1 setups.

    Setups that cannot be expressed as job specs (a custom strategy class, an
    unregistered organization) are still supported: they run directly in this
    process, exactly as before the sweep engine existed, bypassing the
    runner's pool and cache (which both require declarative, picklable jobs).

    Note that for the built-in strategy classes the run executes from a spec
    (a fresh instance, possibly in a worker process), so counters on a live
    strategy object the caller passed in (e.g. ``DynamicResizing.upsizes``)
    are *not* updated; pass a strategy subclass to force the in-process
    path when instrumenting a run that way.
    """
    try:
        future = submit_with_setups(
            _default_runner(runner),
            simulator,
            trace,
            d_setup=d_setup,
            i_setup=i_setup,
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
            sample_every=sample_every,
            sample_warmup=sample_warmup,
        )
    except SimulationError:
        return simulator.run(
            resolve_trace(trace),  # shares the runner's per-process trace memo
            d_setup=_as_live_setup(d_setup, simulator, "l1d"),
            i_setup=_as_live_setup(i_setup, simulator, "l1i"),
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
            sample_every=sample_every,
            sample_warmup=sample_warmup,
        )
    return future.result()


def _as_live_setup(setup: SetupLike, simulator: Simulator, cache: str) -> Optional[L1Setup]:
    """Materialise a setup argument into the L1Setup the simulator consumes."""
    if setup is None or isinstance(setup, L1Setup):
        return setup
    geometry = simulator.system.l1d if cache == "l1d" else simulator.system.l1i
    return setup.build(geometry)


def _live_setups_for(target: str, setup: L1Setup) -> Tuple[Optional[L1Setup], Optional[L1Setup]]:
    """(d_setup, i_setup) with the live ``setup`` applied to the targeted cache."""
    return _apply_to_target(target, setup, None)


@dataclass
class StaticProfile:
    """Outcome of profiling every configuration an organization offers."""

    organization: ResizingOrganization
    target: str
    baseline: SimulationResult
    points: List[ProfilePoint] = field(default_factory=list)
    results: Dict[SizeConfig, SimulationResult] = field(default_factory=dict)
    max_slowdown: Optional[float] = None

    @property
    def best_point(self) -> ProfilePoint:
        """Profile point with the lowest processor energy-delay."""
        return select_static_config(
            self.points, baseline_cycles=self.baseline.cycles, max_slowdown=self.max_slowdown
        )

    @property
    def best_config(self) -> SizeConfig:
        """Statically selected configuration."""
        return self.best_point.config

    @property
    def best_result(self) -> SimulationResult:
        """Simulation result of the statically selected configuration."""
        return self.results[self.best_config]

    def energy_delay_reduction(self) -> float:
        """Best static energy-delay reduction vs the non-resizable baseline (%)."""
        return self.best_result.energy_delay_reduction(self.baseline)

    def size_reduction(self) -> float:
        """Average cache-size reduction of the statically selected configuration (%)."""
        if self.target == DCACHE:
            return self.best_result.l1d_size_reduction()
        return self.best_result.l1i_size_reduction()

    def dynamic_parameters(
        self, sense_interval_accesses: int = 2048, miss_bound_factor: float = 1.5
    ) -> DynamicParameters:
        """Derive the dynamic framework's parameters from this profile."""
        return derive_dynamic_parameters(
            self.points,
            sense_interval_accesses=sense_interval_accesses,
            miss_bound_factor=miss_bound_factor,
            baseline_cycles=self.baseline.cycles,
            max_slowdown=self.max_slowdown,
        )


def _append_point(profile: StaticProfile, target: str, config, result: SimulationResult) -> None:
    """Record one profiled configuration's result (shared by both sweep paths)."""
    if target == DCACHE:
        accesses, misses = result.l1d_accesses, result.l1d_misses
    else:
        accesses, misses = result.l1i_accesses, result.l1i_misses
    profile.points.append(
        ProfilePoint(
            config=config,
            energy=result.energy.total,
            cycles=result.cycles,
            l1_accesses=accesses,
            l1_misses=misses,
        )
    )
    profile.results[config] = result


@dataclass
class StaticProfileFuture:
    """A profiling sweep whose ladder runs have been enqueued, not resolved.

    Mirrors :class:`StaticProfile` one level earlier: the baseline and one
    future per ladder configuration are submitted to the runner, and
    :meth:`result` assembles the :class:`StaticProfile` once they resolve
    (draining the runner on first call; memoised afterwards).  The
    :attr:`dependencies` list feeds :meth:`SweepRunner.submit_deferred`, so
    downstream jobs — a dynamic run whose parameters derive from this
    profile — can be enqueued *before* the ladder has simulated.
    """

    organization: ResizingOrganization
    target: str
    baseline: Union[SimFuture, SimulationResult]
    ladder: List[SizeConfig]
    futures: List[SimFuture]
    max_slowdown: Optional[float] = None
    _profile: Optional[StaticProfile] = None

    def done(self) -> bool:
        """True once every underlying simulation has resolved."""
        baseline_done = not isinstance(self.baseline, SimFuture) or self.baseline.done()
        return baseline_done and all(future.done() for future in self.futures)

    @property
    def dependencies(self) -> List[SimFuture]:
        """The futures a job deferred on this profile must wait for."""
        deps = list(self.futures)
        if isinstance(self.baseline, SimFuture):
            deps.append(self.baseline)
        return deps

    def result(self) -> StaticProfile:
        """Resolve (draining the runner if needed) into a StaticProfile."""
        if self._profile is None:
            baseline = (
                self.baseline.result()
                if isinstance(self.baseline, SimFuture)
                else self.baseline
            )
            profile = StaticProfile(
                organization=self.organization,
                target=self.target,
                baseline=baseline,
                max_slowdown=self.max_slowdown,
            )
            for config, future in zip(self.ladder, self.futures):
                _append_point(profile, self.target, config, future.result())
            self._profile = profile
        return self._profile


def submit_profile_static(
    runner: SweepRunner,
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    target: str = DCACHE,
    baseline: Union[SimFuture, SimulationResult, None] = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    max_slowdown: Optional[float] = None,
    ladder_mode: str = FUSED,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> StaticProfileFuture:
    """Enqueue a whole profiling ladder and return its profile future.

    ``baseline`` may be an already-resolved result, a future from an
    earlier submission (shared across profiles of the same application), or
    None to enqueue the baseline alongside the ladder.  Nothing executes
    until the runner drains; the organization must be registered (the
    deferred path has no in-process fallback — use :func:`profile_static`
    for unregistered classes).

    ``ladder_mode`` selects how the ladder executes (see :data:`FUSED` /
    :data:`PER_CONFIG`): fused, the whole ladder — and, when the baseline
    is enqueued here too, the baseline with it (its L1s are fixed, which is
    exactly the shape the fused engine pilots) — reaches the runner as one
    job whose results fan out to the rungs' individual cache fingerprints;
    per-config submits one job per rung.  Results are bit-identical either
    way, and a partially-warm ladder only fuses the rungs the cache cannot
    serve.
    """
    require_registered(organization)
    require_ladder_mode(ladder_mode)
    ladder = organization.ladder()
    rung_jobs: List[SimJob] = []
    rung_labels: List[str] = []
    for config in ladder:
        spec = L1SetupSpec(
            organization=organization.name,
            strategy=StrategySpec.static(config),
            geometry=organization.geometry,
        )
        d_spec, i_spec = _specs_for(target, spec)
        rung_jobs.append(
            make_job(
                simulator,
                trace,
                d_setup=d_spec,
                i_setup=i_spec,
                interval_instructions=interval_instructions,
                warmup_instructions=warmup_instructions,
                sample_every=sample_every,
                sample_warmup=sample_warmup,
            )
        )
        rung_labels.append(f"{_job_label('profile', trace)}@{config.label}")

    if ladder_mode == FUSED:
        if baseline is None:
            # The baseline is a rung like any other to the fused engine
            # (fixed L1s on the shared trace), so ride it along in the same
            # pass instead of decoding the trace once more for it.
            rung_jobs.insert(
                0,
                make_job(
                    simulator,
                    trace,
                    interval_instructions=interval_instructions,
                    warmup_instructions=warmup_instructions,
                    sample_every=sample_every,
                    sample_warmup=sample_warmup,
                ),
            )
            rung_labels.insert(0, _job_label("baseline", trace))
            futures = runner.submit_ladder(rung_jobs, labels=rung_labels)
            baseline = futures.pop(0)
        else:
            futures = runner.submit_ladder(rung_jobs, labels=rung_labels)
    else:
        if baseline is None:
            baseline = submit_baseline(
                runner,
                simulator,
                trace,
                interval_instructions=interval_instructions,
                warmup_instructions=warmup_instructions,
                sample_every=sample_every,
                sample_warmup=sample_warmup,
            )
        futures = [
            runner.submit(job, label=label)
            for job, label in zip(rung_jobs, rung_labels)
        ]
    return StaticProfileFuture(
        organization=organization,
        target=target,
        baseline=baseline,
        ladder=ladder,
        futures=futures,
        max_slowdown=max_slowdown,
    )


def profile_static(
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    target: str = DCACHE,
    baseline: Optional[SimulationResult] = None,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    max_slowdown: Optional[float] = None,
    runner: Optional[SweepRunner] = None,
    ladder_mode: str = FUSED,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> StaticProfile:
    """Profile every size on the organization's resizing ladder.

    By default the whole ladder (plus the baseline, when not supplied)
    executes as one *fused* trace pass — decoded once, dispatched to every
    candidate configuration (see :mod:`repro.sim.ladder`); pass
    ``ladder_mode="per-config"`` to submit one job per rung instead, which
    spreads rungs across a parallel runner's workers.  Both modes produce
    bit-identical profiles and share the job cache.

    Args:
        simulator: configured simulator (system, technology, timing).
        trace: the application trace — a :class:`Trace`, or a
            :class:`TraceSpec` that each worker materialises on demand
            (reused unchanged for every candidate).
        organization: the resizing organization to evaluate.  Its class must
            be registered with the runner's organization registry (the three
            paper organizations are; see
            :func:`repro.sim.runner.register_organization`).
        target: ``"dcache"`` or ``"icache"`` — which L1 is resized.
        baseline: a pre-computed non-resizable baseline run (computed here
            when omitted).
        max_slowdown: optional bound on tolerated slowdown when picking the
            best static configuration.
        runner: sweep runner to execute through (serial/uncached if omitted).
    """
    try:
        require_registered(organization)
    except SimulationError:
        # Unregistered organization class: simulate directly in this process
        # (the pre-engine behaviour), bypassing the pool and cache, which
        # both need declarative job specs.
        return _profile_static_direct(
            simulator, trace, organization, target, baseline,
            interval_instructions, warmup_instructions, max_slowdown,
            sample_every, sample_warmup,
        )
    return submit_profile_static(
        _default_runner(runner),
        simulator,
        trace,
        organization,
        target=target,
        baseline=baseline,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        max_slowdown=max_slowdown,
        ladder_mode=ladder_mode,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    ).result()


def _dynamic_job(
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    parameters: DynamicParameters,
    target: str,
    interval_instructions: int,
    warmup_instructions: int,
    initial_config,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimJob:
    """The SimJob for one dynamic-resizing run (shared by both API shapes)."""
    spec = L1SetupSpec(
        organization=organization.name,
        geometry=organization.geometry,
        strategy=StrategySpec.dynamic(
            miss_bound=parameters.miss_bound,
            size_bound_bytes=parameters.size_bound_bytes,
            sense_interval_accesses=parameters.sense_interval_accesses,
            initial_config=initial_config,
        ),
    )
    d_spec, i_spec = _specs_for(target, spec)
    return make_job(
        simulator,
        trace,
        d_setup=d_spec,
        i_setup=i_spec,
        interval_instructions=interval_instructions,
        warmup_instructions=warmup_instructions,
        sample_every=sample_every,
        sample_warmup=sample_warmup,
    )


def submit_dynamic(
    runner: SweepRunner,
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    profile: StaticProfileFuture,
    target: str = DCACHE,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sense_interval_accesses: int = 2048,
    miss_bound_factor: float = 1.5,
    start_at_best_config: bool = True,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimFuture:
    """Enqueue a dynamic run whose parameters derive from a pending profile.

    The dynamic job cannot be built yet — its miss-bound and size-bound come
    from the profiling ladder's results — so it is submitted as a *deferred*
    job depending on the profile's futures: the runner executes the ladder
    in one wave, derives the parameters, and runs the dynamic job in the
    next, all within a single :meth:`SweepRunner.drain`.

    ``start_at_best_config`` starts the cache at the statically profiled
    size (the shape every experiment uses); pass False to start full-size.
    """
    require_registered(organization)

    def builder() -> SimJob:
        resolved = profile.result()  # dependencies guarantee this is free
        parameters = resolved.dynamic_parameters(
            sense_interval_accesses=sense_interval_accesses,
            miss_bound_factor=miss_bound_factor,
        )
        initial_config = resolved.best_config if start_at_best_config else None
        return _dynamic_job(
            simulator, trace, organization, parameters,
            target, interval_instructions, warmup_instructions, initial_config,
            sample_every=sample_every, sample_warmup=sample_warmup,
        )

    return runner.submit_deferred(
        builder, profile.dependencies, label=_job_label("dynamic", trace)
    )


def run_dynamic(
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    parameters: DynamicParameters,
    target: str = DCACHE,
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    initial_config=None,
    runner: Optional[SweepRunner] = None,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> SimulationResult:
    """Run the miss-ratio based dynamic strategy with profiled parameters.

    ``initial_config`` sets the size the cache starts in (typically the
    statically profiled size, since the dynamic parameters come from the same
    profiling pass); the controller is free to move away from it immediately.
    """
    try:
        require_registered(organization)
    except SimulationError:
        strategy = DynamicResizing(
            miss_bound=parameters.miss_bound,
            size_bound_bytes=parameters.size_bound_bytes,
            sense_interval_accesses=parameters.sense_interval_accesses,
            initial_config=initial_config,
        )
        d_setup, i_setup = _live_setups_for(target, L1Setup(organization, strategy))
        return simulator.run(
            resolve_trace(trace),
            d_setup=d_setup,
            i_setup=i_setup,
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
            sample_every=sample_every,
            sample_warmup=sample_warmup,
        )
    job = _dynamic_job(
        simulator, trace, organization, parameters,
        target, interval_instructions, warmup_instructions, initial_config,
        sample_every=sample_every, sample_warmup=sample_warmup,
    )
    return _default_runner(runner).submit(job, label=_job_label("dynamic", trace)).result()


def _profile_static_direct(
    simulator: Simulator,
    trace: TraceLike,
    organization: ResizingOrganization,
    target: str,
    baseline: Optional[SimulationResult],
    interval_instructions: int,
    warmup_instructions: int,
    max_slowdown: Optional[float],
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> StaticProfile:
    """In-process profiling sweep for organizations the spec layer cannot name."""
    trace_obj = resolve_trace(trace)
    _live_setups_for(target, L1Setup())  # validate the target up front
    if baseline is None:
        baseline = simulator.run(
            trace_obj,
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
            sample_every=sample_every,
            sample_warmup=sample_warmup,
        )
    profile = StaticProfile(
        organization=organization, target=target, baseline=baseline, max_slowdown=max_slowdown
    )
    for config in organization.ladder():
        setup = L1Setup(organization=organization, strategy=StaticResizing(config))
        d_setup, i_setup = _live_setups_for(target, setup)
        result = simulator.run(
            trace_obj,
            d_setup=d_setup,
            i_setup=i_setup,
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
            sample_every=sample_every,
            sample_warmup=sample_warmup,
        )
        _append_point(profile, target, config, result)
    return profile
