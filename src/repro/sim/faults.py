"""Deterministic fault injection for the sweep execution stack.

The fault-tolerance layer (worker-death containment, per-job timeouts,
retries, checksummed caches) is only trustworthy if its failure paths are
exercised on demand, repeatably, in CI.  This module provides that: a
*fault plan* names exactly which injection points fire and on which
occurrence, everything else runs untouched, and — because every failure
path in the stack degrades to a clean retry or a cache miss — any plan
must produce results **byte-identical** to a clean run (pinned by
``tests/sim/test_faults.py`` and the CI ``chaos`` job).

Plan grammar (``REPRO_FAULT_PLAN`` or :func:`install_plan`)::

    plan   := fault (';' fault)*
    fault  := kind ':' ordinal_key '=' N (',' arg '=' value)*

    worker_crash:job=3          # the 3rd pool dispatch hard-exits its worker
    hang:job=7,seconds=120      # the 7th dispatch sleeps 120s before running
    shm_publish_fail:segment=1  # the 1st segment publish declines
    shm_attach_fail:attach=2    # the 2nd worker attach declines (falls back)
    cache_corrupt:shard=2       # the 2nd job-cache write lands torn on disk
    trace_corrupt:entry=1       # the 1st trace-cache write lands torn

The ordinal key's *name* is documentation only (``job=3`` reads better than
``n=3``); what matters is the value: each kind keeps its own occurrence
counter in the process that owns the injection point, and the fault fires
when the counter reaches the ordinal.  Counters are deterministic because
every counted event is: pool dispatches are counted in the parent in
dispatch order (retries included), cache writes and shm publishes in
whichever process performs them.

Scope and transport: the parent process loads the plan lazily from
``REPRO_FAULT_PLAN`` (or takes one via :func:`install_plan`), and the
runner ships the plan *text* to pool workers through the worker
initializer, so spawn workers — which never inherit parent state — arm the
same plan with fresh counters.  ``worker_crash``/``hang`` are decided in
the parent and ride the dispatched task as a one-shot
:class:`FaultDirective`: deciding them worker-side would re-fire the same
ordinal on the respawned worker and livelock the retry loop.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import ConfigurationError

#: Exit code a ``worker_crash`` directive dies with (distinguishable from
#: signal deaths and clean exits in the crash event's diagnostics).
CRASH_EXIT_CODE = 87

#: Injection-point kinds, with the process that counts them.
KINDS = {
    "worker_crash": "parent (per pool dispatch)",
    "hang": "parent (per pool dispatch)",
    "shm_publish_fail": "parent (per segment publish)",
    "shm_attach_fail": "worker (per segment attach)",
    "cache_corrupt": "writer (per job-cache write)",
    "trace_corrupt": "writer (per trace-cache write)",
}


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: fire ``kind`` on its ``ordinal``-th occurrence."""

    kind: str
    ordinal: int
    args: Dict[str, str] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        """Sleep length for ``hang`` faults (default: 3600, i.e. wedge until
        the per-job timeout kills the worker — or forever without one)."""
        return float(self.args.get("seconds", 3600.0))


@dataclass(frozen=True)
class FaultDirective:
    """A one-shot, picklable fault decision attached to a dispatched task.

    ``kind`` is ``"crash"`` or ``"hang"``.  Executed at worker entry by
    :func:`execute_directive`; the parent attaches at most one per
    dispatch, so a retried job gets a fresh (usually empty) decision.
    """

    kind: str
    seconds: float = 0.0


class FaultPlan:
    """A parsed plan plus this process's per-kind occurrence counters."""

    def __init__(self, specs: List[FaultSpec], text: str) -> None:
        self.text = text
        self._by_kind: Dict[str, List[FaultSpec]] = {}
        for spec in specs:
            self._by_kind.setdefault(spec.kind, []).append(spec)
        self._counters: Dict[str, int] = {}

    def fire(self, kind: str) -> Optional[FaultSpec]:
        """Count one occurrence of ``kind``; the spec to execute, or None."""
        count = self._counters.get(kind, 0) + 1
        self._counters[kind] = count
        for spec in self._by_kind.get(kind, ()):
            if spec.ordinal == count:
                return spec
        return None

    def __repr__(self) -> str:
        return f"FaultPlan({self.text!r})"


def parse_plan(text: str) -> FaultPlan:
    """Parse the plan grammar; raises :class:`ConfigurationError` on any
    malformed clause so a typo'd plan fails loudly instead of silently
    testing nothing."""
    specs: List[FaultSpec] = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        kind, sep, rest = clause.partition(":")
        kind = kind.strip()
        if not sep or kind not in KINDS:
            known = ", ".join(sorted(KINDS))
            raise ConfigurationError(
                f"bad fault clause {clause!r}: expected '<kind>:<key>=<N>[,arg=value]' "
                f"with kind one of: {known}"
            )
        ordinal: Optional[int] = None
        args: Dict[str, str] = {}
        for pair in rest.split(","):
            key, sep, value = pair.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not key or not value:
                raise ConfigurationError(f"bad fault argument {pair!r} in clause {clause!r}")
            if ordinal is None and key != "seconds":
                # The first non-reserved key is the ordinal, whatever it is
                # named (job=3, shard=2, attach=1 — see the module docs).
                try:
                    ordinal = int(value)
                except ValueError:
                    ordinal = -1
                if ordinal < 1:
                    raise ConfigurationError(
                        f"fault ordinal must be a positive integer, got {pair!r}"
                    )
            else:
                args[key] = value
        if ordinal is None:
            raise ConfigurationError(f"fault clause {clause!r} names no ordinal (e.g. job=3)")
        specs.append(FaultSpec(kind=kind, ordinal=ordinal, args=args))
    return FaultPlan(specs, text)


# ---------------------------------------------------------------------------
# Process-global plan state
# ---------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
#: Whether this process has resolved its plan yet (lazy, so spawn workers
#: read REPRO_FAULT_PLAN on first use rather than at import time).
_LOADED = False


def install_plan(plan: "Optional[FaultPlan | str]") -> Optional[FaultPlan]:
    """Install ``plan`` (a :class:`FaultPlan`, plan text, or None to clear)
    as this process's active plan, resetting its occurrence counters."""
    global _PLAN, _LOADED
    if isinstance(plan, str):
        plan = parse_plan(plan) if plan.strip() else None
    elif isinstance(plan, FaultPlan):
        # Fresh counters: re-installing a plan re-arms it from occurrence 1.
        plan = FaultPlan([s for specs in plan._by_kind.values() for s in specs], plan.text)
    _PLAN = plan
    _LOADED = True
    return _PLAN


def reset() -> None:
    """Forget the active plan AND the lazy-load latch (test isolation):
    the next :func:`active_plan` call re-reads ``REPRO_FAULT_PLAN``."""
    global _PLAN, _LOADED
    _PLAN = None
    _LOADED = False


def active_plan() -> Optional[FaultPlan]:
    """This process's plan, lazily loaded from ``REPRO_FAULT_PLAN``."""
    global _LOADED
    if not _LOADED:
        text = os.environ.get("REPRO_FAULT_PLAN", "")
        install_plan(text)
    return _PLAN


def plan_text() -> Optional[str]:
    """The active plan's source text (for shipping to pool workers)."""
    plan = active_plan()
    return None if plan is None else plan.text


def fire(kind: str) -> Optional[FaultSpec]:
    """Count one occurrence of ``kind`` against the active plan.

    The no-plan path is a dict lookup and a None check — cheap enough to
    sit permanently on the cache-write and shm hot paths.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.fire(kind)


# ---------------------------------------------------------------------------
# Directive execution (worker side)
# ---------------------------------------------------------------------------


def directive_for_dispatch() -> Optional[FaultDirective]:
    """The parent-side fault decision for the next pool dispatch, if any.

    Counts one ``worker_crash`` and one ``hang`` occurrence per call (each
    kind has its own counter, so plans may combine them freely).
    """
    plan = active_plan()
    if plan is None:
        return None
    crash = plan.fire("worker_crash")
    hang = plan.fire("hang")
    if crash is not None:
        return FaultDirective(kind="crash")
    if hang is not None:
        return FaultDirective(kind="hang", seconds=hang.seconds)
    return None


def execute_directive(directive: Optional[FaultDirective]) -> None:
    """Apply a dispatched directive at worker entry.

    ``crash`` hard-exits the process — :func:`os._exit` so no ``finally``
    blocks, no atexit handlers, no pickled goodbye: exactly a segfault's
    signature as seen from the parent.  ``hang`` sleeps, then lets the job
    run normally (a timed-out worker never reaches that point: the parent
    SIGKILLs it).
    """
    if directive is None:
        return
    if directive.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if directive.kind == "hang":
        time.sleep(directive.seconds)


def corrupt_bytes(data: bytes) -> bytes:
    """The torn-write stand-in: the first half of ``data``.

    Truncation (rather than bit flips) is what a crashed non-atomic writer
    actually leaves behind, and it defeats both framing and checksum, so
    one corruption shape exercises every validation layer.
    """
    return data[: len(data) // 2]
