"""Fused multi-configuration ladder replay.

The paper extracts static sizes and the dynamic framework's miss/size
bounds "offline through profiling", so every figure multiplies replay cost
by the organization's whole resizing ladder: K configurations of the same
L1 against the *same trace*.  Replaying the ladder as K independent
simulations decodes the op stream, models the branches and walks the
intervals K times to feed K cache kernels — all of it redundant, because
none of that work depends on cache configuration.

Architecture
------------
:class:`LadderEngine` replays one trace through K
:class:`~repro.sim.engine.ReplayContext` objects in a single pass.  Per
interval it

1. slices the trace columns and runs :func:`~repro.sim.engine.decode_interval`
   **once** — fetch-block dedup, branch prediction and memory-op extraction
   are configuration-independent, so the resulting cache-op stream and the
   branch/store/reference totals are shared verbatim by every rung;
2. resolves the *invariant* L1 side once on a pilot cache (see below),
   shrinking the stream to the ops that can differ per rung;
3. dispatches the reduced stream to each rung's hierarchy through its
   allocation-free packed kernels, accumulating that rung's interval
   counts; and
4. closes the interval on each context, so timing/energy aggregation,
   warmup accounting and per-rung resizing decisions run exactly as they
   would standalone (:meth:`ReplayContext.close_interval` is shared by
   construction).

The branch predictor is run once, on the first context's predictor: every
standalone run starts from an identical fresh predictor and the predictor
shares no state with the caches, so each rung's per-interval mispredict
totals are identical to its standalone run's by construction.  The same
argument covers the fetch-block dedup state.

**Pilot resolution of the invariant side.**  A profiling ladder resizes
exactly one L1; the other is the full-size fixed cache in every rung.  A
fixed L1's hit/miss (and dirty-victim) sequence depends only on its own
access stream — which is shared — so it is *identical across rungs*.  The
fused pass therefore drives the first context's copy of that cache (the
"pilot") once per op and shares the outcome:

* an L1 *hit* touches no per-rung state at all (the packed replay path
  never consumes latency — cycles come from the interval counts), so the
  op vanishes from the per-rung stream and is folded into a shared count;
* an L1 *miss* stays in the stream, pre-resolved (for the data side the
  pilot's packed outcome rides along, carrying the victim-writeback bit),
  and each rung performs only the L2/memory fill — the part that really
  does depend on that rung's L2 contents.

Per-rung work then shrinks to: variant-L1 kernel accesses, plus L2/memory
fills for the (rare) invariant-side misses.  Everything
configuration-*dependent* — cache contents, resize decisions, flush
writebacks, energy, cycles — stays in per-rung state, which is why every
rung's :class:`~repro.sim.results.SimulationResult` is **bit-identical**
to a standalone run of the columnar engine (enforced by
``tests/sim/test_ladder.py`` and ``tests/properties/test_property_ladder.py``).
Heterogeneous ladders where *both* L1 setups vary across rungs fall back
to re-dispatching the full shared stream per rung — still decoding once.

One caveat: the invariant-side cache *objects* of rungs 1..K-1 are never
driven (the pilot is rung 0's copy), so their internal hit/miss counters
stay zero.  Nothing in result assembly reads them — interval accounting
works entirely off :class:`~repro.metrics.counts.IntervalCounts` — but
introspecting ``hierarchy.miss_ratios()`` on a non-pilot context after a
fused replay would show an idle invariant side.

Amortization: a per-config ladder costs ``K × (slice + decode + predict +
full dispatch + close)``; the fused pass costs ``slice + decode + predict
+ pilot + K × (reduced dispatch + close)``.  The shared side is roughly
the price of one replay, so the win grows with K (the job layer fuses
only the rungs the job cache cannot already serve — see
:meth:`repro.sim.runner.SweepRunner.submit_ladder`).

:func:`run_fused` is the entry point: it builds one context per
``(d_setup, i_setup)`` pair off a configured
:class:`~repro.sim.simulator.Simulator` and finalizes each into its
result.  :class:`LadderEngine` is deliberately *not* a registered
:class:`~repro.sim.engine.ReplayEngine` — it replays many contexts at
once, a different contract from the single-run engines the ``--engine``
flag selects; the CLI exposes it through ``--ladder-mode`` instead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cache.cache import PACKED_WRITEBACK_VALID
from repro.cache.hierarchy import (
    HIER_COUNT_MASK,
    HIER_L2_ACCESSES_SHIFT,
    HIER_MEM_ACCESSES_SHIFT,
)
from repro.common.errors import SimulationError
from repro.sim.engine import _OP_FETCH, _OP_LOAD, decode_interval, dispatch_cache_ops
from repro.sim.results import SimulationResult
from repro.sim.simulator import L1Setup, ReplayContext, Simulator
from repro.workloads.trace import Trace

#: Extra op codes of the pilot-reduced stream (the shared decode emits only
#: the engine module's fetch/load/store codes; pilot resolution rewrites
#: the invariant side into these).
_OP_IMISS = 3  #: L1i miss (pilot-resolved): operand is the fetch PC.
_OP_DMISS = 4  #: L1d miss (pilot-resolved): operands are address, l1_packed.


class LadderEngine:
    """Replays one trace through K replay contexts in a single decode pass."""

    def replay_many(self, trace: Trace, contexts: Sequence[ReplayContext]) -> None:
        """Replay ``trace`` through every context, decoding each interval once.

        All contexts must share the interval length and fetch-block
        geometry (they do when built from one simulator, as
        :func:`run_fused` does); per-context cache/strategy state is free
        to diverge — that is the point.
        """
        if not contexts:
            return
        first = contexts[0]
        for ctx in contexts[1:]:
            if (
                ctx.interval_instructions != first.interval_instructions
                or ctx.block_mask != first.block_mask
            ):
                raise SimulationError(
                    "fused ladder replay requires every rung to share the interval "
                    "length and fetch-block geometry"
                )
            if (
                ctx.sample_every != first.sample_every
                or ctx.sample_warmup != first.sample_warmup
            ):
                raise SimulationError(
                    "fused ladder replay requires every rung to share the "
                    "sampling schedule (sample_every/sample_warmup)"
                )
        # Pilot-resolve whichever L1 side is fixed in every rung (a fixed
        # cache's behaviour is shared by construction — see the module
        # docstring).  A d-cache ladder pilots the L1i and vice versa; a
        # ladder that resizes both sides in some rung gets the general
        # mode, which re-dispatches the full shared stream per rung.
        # Every mode is expressed as a (resolve, fold, rung-kernels)
        # triple driven by one shared interval walk, so the interval
        # semantics — partial final chunk, ``total_seen`` threading,
        # per-rung close ordering — exist exactly once.
        hierarchy = first.hierarchy
        if all(not ctx.i_runtime.is_resizable for ctx in contexts):
            pilot = hierarchy._l1i_packed
            resolve = lambda ops: _resolve_pilot_i(ops, pilot)  # noqa: E731
            fold = _fold_pilot_i
            rungs = [
                (ctx, ctx.hierarchy._l1d_packed, ctx.hierarchy._miss_packed)
                for ctx in contexts
            ]
        elif all(not ctx.d_runtime.is_resizable for ctx in contexts):
            pilot = hierarchy._l1d_packed
            resolve = lambda ops: _resolve_pilot_d(ops, pilot)  # noqa: E731
            fold = _fold_pilot_d
            rungs = [
                (ctx, ctx.hierarchy._l1i_packed, ctx.hierarchy._miss_packed)
                for ctx in contexts
            ]
        else:
            resolve = _resolve_general
            fold = _fold_general
            rungs = [
                (ctx, ctx.hierarchy.instruction_fetch_packed,
                 ctx.hierarchy.data_access_packed)
                for ctx in contexts
            ]
        self._walk_intervals(trace, first, rungs, resolve, fold)

    def _walk_intervals(self, trace, first, rungs, resolve, fold) -> None:
        """The single shared interval walk every fused mode runs on.

        Per interval: slice the columns, decode once (branch prediction on
        the first context's predictor), ``resolve`` the stream once for
        all rungs (pilot modes shrink it; the general mode passes it
        through), then ``fold`` it into each rung's counts and close that
        rung's interval.  ``rungs`` are ``(context, kernel_a, kernel_b)``
        triples whose kernel meaning is mode-specific — the fold function
        and the rung list are built together in :meth:`replay_many`.
        """
        interval_instructions = first.interval_instructions
        block_mask = first.block_mask
        predict = first.predictor.predict_and_update
        decode = decode_interval

        pc_column, address_column, flag_column = trace.columns()
        pc_view = memoryview(pc_column)
        address_view = memoryview(address_column)
        flag_view = memoryview(flag_column)

        n = len(trace)
        plan = first.sampling_plan(n)
        if plan is not None:
            # Sampled walk, same shape as ColumnarEngine's: the plan picks
            # the row ranges, decode/resolve run once per segment, every
            # rung folds and closes (measured) or discards (warmup).
            last_fetch_block = -1
            total_seen = 0
            prev_stop = 0
            for start, stop, measured in plan:
                if start != prev_stop:
                    last_fetch_block = -1
                chunk = stop - start
                pcs = pc_view[start:stop].tolist()
                flags = flag_view[start:stop].tolist()
                addresses = address_view[start:stop].tolist()

                ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores = (
                    decode(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict)
                )
                reduced, shared = resolve(ops)
                total_seen += chunk
                prev_stop = stop
                close = measured and chunk == interval_instructions

                for ctx, kernel_a, kernel_b in rungs:
                    counts = ctx.counts
                    counts.instructions += chunk
                    counts.branches += branches
                    counts.branch_mispredicts += branch_mispredicts
                    counts.l1d_accesses += memory_refs
                    counts.l1d_stores += stores
                    fold(counts, reduced, shared, kernel_a, kernel_b)
                    if close:
                        ctx.total_seen = total_seen
                        ctx.close_interval()
                    elif not measured:
                        ctx.discard_interval()

            for ctx, _, _ in rungs:
                ctx.total_seen = total_seen
                ctx.close_interval(final=True)
            return

        last_fetch_block = -1
        total_seen = 0
        position = 0
        while position < n:
            stop = position + interval_instructions
            if stop > n:
                stop = n
            chunk = stop - position
            pcs = pc_view[position:stop].tolist()
            flags = flag_view[position:stop].tolist()
            addresses = address_view[position:stop].tolist()
            position = stop

            ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores = (
                decode(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict)
            )
            reduced, shared = resolve(ops)
            total_seen += chunk
            close = chunk == interval_instructions

            for ctx, kernel_a, kernel_b in rungs:
                counts = ctx.counts
                counts.instructions += chunk
                counts.branches += branches
                counts.branch_mispredicts += branch_mispredicts
                counts.l1d_accesses += memory_refs
                counts.l1d_stores += stores
                fold(counts, reduced, shared, kernel_a, kernel_b)
                if close:
                    ctx.total_seen = total_seen
                    ctx.close_interval()

        for ctx, _, _ in rungs:
            ctx.total_seen = total_seen
            ctx.close_interval(final=True)


def _resolve_general(ops):
    """General mode: nothing to pre-resolve, every rung replays all ops."""
    return ops, None


def _fold_general(counts, ops, shared, instruction_fetch, data_access):
    """Full per-rung dispatch through the engine's shared cache-op loop."""
    (
        l1i_accesses, l1i_misses, l1i_memory,
        l1d_misses, l1d_memory, l1d_writebacks,
        l2_accesses, memory_accesses,
    ) = dispatch_cache_ops(ops, instruction_fetch, data_access)
    counts.l1i_accesses += l1i_accesses
    counts.l1i_misses += l1i_misses
    counts.l1i_memory_accesses += l1i_memory
    counts.l1d_misses += l1d_misses
    counts.l1d_memory_accesses += l1d_memory
    counts.l1d_writebacks += l1d_writebacks
    counts.l2_accesses += l2_accesses
    counts.memory_accesses += memory_accesses


def _fold_pilot_i(counts, reduced, shared, l1d_kernel, miss_fill):
    """Fold one rung's interval when the L1i was pilot-resolved."""
    fetches, i_misses = shared
    counts.l1i_accesses += fetches
    counts.l1i_misses += i_misses
    (
        l1i_memory, l1d_misses, l1d_memory, l1d_writebacks,
        l2_accesses, memory_accesses,
    ) = _dispatch_variant_d(reduced, l1d_kernel, miss_fill)
    counts.l1i_memory_accesses += l1i_memory
    counts.l1d_misses += l1d_misses
    counts.l1d_memory_accesses += l1d_memory
    counts.l1d_writebacks += l1d_writebacks
    counts.l2_accesses += l2_accesses
    counts.memory_accesses += memory_accesses


def _fold_pilot_d(counts, reduced, shared, l1i_kernel, miss_fill):
    """Fold one rung's interval when the L1d was pilot-resolved."""
    d_misses, d_writebacks = shared
    counts.l1d_misses += d_misses
    counts.l1d_writebacks += d_writebacks
    (
        l1i_accesses, l1i_misses, l1i_memory, l1d_memory,
        l2_accesses, memory_accesses,
    ) = _dispatch_variant_i(reduced, l1i_kernel, miss_fill)
    counts.l1i_accesses += l1i_accesses
    counts.l1i_misses += l1i_misses
    counts.l1i_memory_accesses += l1i_memory
    counts.l1d_memory_accesses += l1d_memory
    counts.l2_accesses += l2_accesses
    counts.memory_accesses += memory_accesses


def _resolve_pilot_i(ops, l1i_kernel):
    """Resolve every fetch op on the pilot L1i; keep only the misses.

    Hits leave the stream entirely — an L1i hit touches no per-rung state
    and the replay path never consumes per-access latency.  Returns
    ``(reduced, (fetches, i_misses))``; each rung adds ``fetches`` to its
    ``l1i_accesses`` and ``i_misses`` to ``l1i_misses`` and performs one
    L2 fill per ``_OP_IMISS`` op (the L1i never holds dirty blocks, so
    there is no victim writeback to forward).
    """
    reduced = []
    append = reduced.append
    fetches = 0
    i_misses = 0
    op_fetch = _OP_FETCH
    op_imiss = _OP_IMISS
    stream = iter(ops)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            fetches += 1
            if not l1i_kernel(operand, False) & 1:
                i_misses += 1
                append(op_imiss)
                append(operand)
        else:
            append(code)
            append(operand)
    return reduced, (fetches, i_misses)


def _resolve_pilot_d(ops, l1d_kernel):
    """Resolve every load/store on the pilot L1d; keep only the misses.

    A surviving ``_OP_DMISS`` op carries the pilot's packed L1 outcome so
    each rung can forward the (shared) dirty-victim writeback into its own
    L2 via ``_miss_packed``.  Returns ``(reduced, (d_misses,
    d_writebacks))`` — both shared per-interval counts, since the victim
    sequence of a fixed L1d is configuration-independent.
    """
    reduced = []
    append = reduced.append
    d_misses = 0
    d_writebacks = 0
    op_fetch = _OP_FETCH
    op_load = _OP_LOAD
    op_dmiss = _OP_DMISS
    writeback_valid = PACKED_WRITEBACK_VALID
    stream = iter(ops)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            append(op_fetch)
            append(operand)
        else:
            l1_packed = l1d_kernel(operand, code != op_load)
            if not l1_packed & 1:
                d_misses += 1
                if l1_packed & writeback_valid:
                    d_writebacks += 1
                append(op_dmiss)
                append(operand)
                append(l1_packed)
    return reduced, (d_misses, d_writebacks)


def _dispatch_variant_d(reduced, l1d_kernel, miss_fill):
    """Per-rung dispatch when the L1i was pilot-resolved (d-cache ladder).

    Drives the rung's (variant) L1d kernel for every load/store and its
    ``_miss_packed`` fill path for both d-misses and the pre-resolved
    i-misses.  Returns ``(l1i_memory, l1d_misses, l1d_memory,
    l1d_writebacks, l2_accesses, memory_accesses)``.
    """
    l2a_shift, mem_shift = HIER_L2_ACCESSES_SHIFT, HIER_MEM_ACCESSES_SHIFT
    count_mask = HIER_COUNT_MASK
    op_imiss = _OP_IMISS
    op_load = _OP_LOAD
    l1i_memory = 0
    l1d_misses = 0
    l1d_memory = 0
    l1d_writebacks = 0
    l2_accesses = 0
    memory_accesses = 0
    stream = iter(reduced)
    for code in stream:
        operand = next(stream)
        if code == op_imiss:
            packed = miss_fill(0, operand)
            l2_accesses += (packed >> l2a_shift) & count_mask
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1i_memory += transfers
        else:
            l1_packed = l1d_kernel(operand, code != op_load)
            if not l1_packed & 1:
                packed = miss_fill(l1_packed, operand)
                l1d_misses += 1
                fills = (packed >> l2a_shift) & count_mask
                l2_accesses += fills
                transfers = (packed >> mem_shift) & count_mask
                memory_accesses += transfers
                l1d_memory += transfers
                if fills > 1:
                    l1d_writebacks += fills - 1
    return l1i_memory, l1d_misses, l1d_memory, l1d_writebacks, l2_accesses, memory_accesses


def _dispatch_variant_i(reduced, l1i_kernel, miss_fill):
    """Per-rung dispatch when the L1d was pilot-resolved (i-cache ladder).

    Drives the rung's (variant) L1i kernel for every fetch op and its
    ``_miss_packed`` fill path for both i-misses and the pre-resolved
    d-misses (whose shared victim-writeback outcome rides in the stream).
    Returns ``(l1i_accesses, l1i_misses, l1i_memory, l1d_memory,
    l2_accesses, memory_accesses)``.
    """
    l2a_shift, mem_shift = HIER_L2_ACCESSES_SHIFT, HIER_MEM_ACCESSES_SHIFT
    count_mask = HIER_COUNT_MASK
    op_fetch = _OP_FETCH
    l1i_accesses = 0
    l1i_misses = 0
    l1i_memory = 0
    l1d_memory = 0
    l2_accesses = 0
    memory_accesses = 0
    stream = iter(reduced)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            l1_packed = l1i_kernel(operand, False)
            l1i_accesses += 1
            if not l1_packed & 1:
                packed = miss_fill(l1_packed, operand)
                l1i_misses += 1
                l2_accesses += (packed >> l2a_shift) & count_mask
                transfers = (packed >> mem_shift) & count_mask
                memory_accesses += transfers
                l1i_memory += transfers
        else:
            l1_packed = next(stream)
            packed = miss_fill(l1_packed, operand)
            fills = (packed >> l2a_shift) & count_mask
            l2_accesses += fills
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1d_memory += transfers
    return l1i_accesses, l1i_misses, l1i_memory, l1d_memory, l2_accesses, memory_accesses


def run_fused(
    simulator: Simulator,
    trace: Trace,
    setups: Sequence[Tuple[Optional[L1Setup], Optional[L1Setup]]],
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> List[SimulationResult]:
    """Simulate every ``(d_setup, i_setup)`` rung in one fused trace pass.

    The fused counterpart of calling ``simulator.run(...)`` once per rung:
    results are returned in rung order and each is bit-identical to its
    standalone run (including under interval sampling — the sampling
    schedule is row-range-driven and configuration-independent, so it is
    shared by every rung).  Setups are live :class:`L1Setup` objects
    (strategies and organizations are stateful, so every rung needs its
    own); the worker-side job layer builds them from declarative specs —
    see :func:`repro.sim.runner.execute_ladder_job`.
    """
    if not setups:
        raise SimulationError("a fused ladder needs at least one rung")
    if len(trace) == 0:
        raise SimulationError("cannot simulate an empty trace")
    if interval_instructions < 1:
        raise SimulationError("interval length must be at least one instruction")
    if sample_every < 1:
        raise SimulationError("sample_every must be at least 1")
    if sample_warmup < 0:
        raise SimulationError("sample_warmup cannot be negative")
    contexts = [
        simulator._prepare_run(
            trace, d_setup, i_setup, interval_instructions, warmup_instructions,
            sample_every=sample_every, sample_warmup=sample_warmup,
        )
        for d_setup, i_setup in setups
    ]
    LadderEngine().replay_many(trace, contexts)
    return [Simulator._finalize_run(context) for context in contexts]
