"""Fused multi-configuration ladder replay.

The paper extracts static sizes and the dynamic framework's miss/size
bounds "offline through profiling", so every figure multiplies replay cost
by the organization's whole resizing ladder: K configurations of the same
L1 against the *same trace*.  Replaying the ladder as K independent
simulations decodes the op stream, models the branches and walks the
intervals K times to feed K cache kernels — all of it redundant, because
none of that work depends on cache configuration.

Architecture
------------
:class:`LadderEngine` replays one trace through K
:class:`~repro.sim.engine.ReplayContext` objects in a single pass.  Per
interval it

1. slices the trace columns and runs :func:`~repro.sim.engine.decode_interval`
   **once** — fetch-block dedup, branch prediction and memory-op extraction
   are configuration-independent, so the resulting cache-op stream and the
   branch/store/reference totals are shared verbatim by every rung;
2. resolves the *invariant* L1 side once on a pilot cache (see below),
   shrinking the stream to the ops that can differ per rung;
3. dispatches the reduced stream to each rung's hierarchy through its
   allocation-free packed kernels, accumulating that rung's interval
   counts; and
4. closes the interval on each context, so timing/energy aggregation,
   warmup accounting and per-rung resizing decisions run exactly as they
   would standalone (:meth:`ReplayContext.close_interval` is shared by
   construction).

The branch predictor is run once, on the first context's predictor: every
standalone run starts from an identical fresh predictor and the predictor
shares no state with the caches, so each rung's per-interval mispredict
totals are identical to its standalone run's by construction.  The same
argument covers the fetch-block dedup state.

**Pilot resolution of the invariant side.**  A profiling ladder resizes
exactly one L1; the other is the full-size fixed cache in every rung.  A
fixed L1's hit/miss (and dirty-victim) sequence depends only on its own
access stream — which is shared — so it is *identical across rungs*.  The
fused pass therefore drives the first context's copy of that cache (the
"pilot") once per op and shares the outcome:

* an L1 *hit* touches no per-rung state at all (the packed replay path
  never consumes latency — cycles come from the interval counts), so the
  op vanishes from the per-rung stream and is folded into a shared count;
* an L1 *miss* stays in the stream, pre-resolved (for the data side the
  pilot's packed outcome rides along, carrying the victim-writeback bit),
  and each rung performs only the L2/memory fill — the part that really
  does depend on that rung's L2 contents.

Per-rung work then shrinks to: variant-L1 kernel accesses, plus L2/memory
fills for the (rare) invariant-side misses.  Everything
configuration-*dependent* — cache contents, resize decisions, flush
writebacks, energy, cycles — stays in per-rung state, which is why every
rung's :class:`~repro.sim.results.SimulationResult` is **bit-identical**
to a standalone run of the columnar engine (enforced by
``tests/sim/test_ladder.py`` and ``tests/properties/test_property_ladder.py``).
Heterogeneous ladders where *both* L1 setups vary across rungs fall back
to re-dispatching the full shared stream per rung — still decoding once.

One caveat: the invariant-side cache *objects* of rungs 1..K-1 are never
driven (the pilot is rung 0's copy), so their internal hit/miss counters
stay zero.  Nothing in result assembly reads them — interval accounting
works entirely off :class:`~repro.metrics.counts.IntervalCounts` — but
introspecting ``hierarchy.miss_ratios()`` on a non-pilot context after a
fused replay would show an idle invariant side.  When the memoized pilot
pre-screen applies (:func:`repro.sim.predecode.pilot_for` — exhaustive
replay, fresh fixed pilot), rung 0's copy joins them: the reduced stream
comes from the memo and no live pilot is driven at all.

Exhaustive fused replays additionally consume the whole-trace pre-decode
memo (:func:`repro.sim.predecode.decoded_for`): the decode/predict phase
is skipped entirely and each interval's op stream and totals are O(1)
slices of the per-trace artifact, and the per-rung dispatch loops run the
variant L1's hit path inline against hoisted kernel state
(``_dispatch_variant_d_fast`` / ``_dispatch_variant_i_fast``) — both
bit-identical to the scalar path by the same suites.

Amortization: a per-config ladder costs ``K × (slice + decode + predict +
full dispatch + close)``; the fused pass costs ``slice + decode + predict
+ pilot + K × (reduced dispatch + close)``.  The shared side is roughly
the price of one replay, so the win grows with K (the job layer fuses
only the rungs the job cache cannot already serve — see
:meth:`repro.sim.runner.SweepRunner.submit_ladder`).

:func:`run_fused` is the entry point: it builds one context per
``(d_setup, i_setup)`` pair off a configured
:class:`~repro.sim.simulator.Simulator` and finalizes each into its
result.  :class:`LadderEngine` is deliberately *not* a registered
:class:`~repro.sim.engine.ReplayEngine` — it replays many contexts at
once, a different contract from the single-run engines the ``--engine``
flag selects; the CLI exposes it through ``--ladder-mode`` instead.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.cache.cache import (
    PACKED_FILLED,
    PACKED_WRITEBACK_SHIFT,
    PACKED_WRITEBACK_VALID,
)
from repro.cache.hierarchy import (
    HIER_COUNT_MASK,
    HIER_L2_ACCESSES_SHIFT,
    HIER_MEM_ACCESSES_SHIFT,
)
from repro.common.errors import SimulationError
from repro.sim.engine import (
    _OP_FETCH,
    _OP_LOAD,
    decode_interval,
    dispatch_cache_ops_fast,
)
from repro.sim.predecode import decoded_for, pilot_for
from repro.sim.results import SimulationResult
from repro.sim.simulator import L1Setup, ReplayContext, Simulator
from repro.workloads.trace import Trace

#: Extra op codes of the pilot-reduced stream (the shared decode emits only
#: the engine module's fetch/load/store codes; pilot resolution rewrites
#: the invariant side into these).
_OP_IMISS = 3  #: L1i miss (pilot-resolved): operand is the fetch PC.
_OP_DMISS = 4  #: L1d miss (pilot-resolved): operands are address, l1_packed.


class LadderEngine:
    """Replays one trace through K replay contexts in a single decode pass."""

    def replay_many(self, trace: Trace, contexts: Sequence[ReplayContext]) -> None:
        """Replay ``trace`` through every context, decoding each interval once.

        All contexts must share the interval length and fetch-block
        geometry (they do when built from one simulator, as
        :func:`run_fused` does); per-context cache/strategy state is free
        to diverge — that is the point.
        """
        if not contexts:
            return
        first = contexts[0]
        for ctx in contexts[1:]:
            if (
                ctx.interval_instructions != first.interval_instructions
                or ctx.block_mask != first.block_mask
            ):
                raise SimulationError(
                    "fused ladder replay requires every rung to share the interval "
                    "length and fetch-block geometry"
                )
            if (
                ctx.sample_every != first.sample_every
                or ctx.sample_warmup != first.sample_warmup
            ):
                raise SimulationError(
                    "fused ladder replay requires every rung to share the "
                    "sampling schedule (sample_every/sample_warmup)"
                )
        # Pilot-resolve whichever L1 side is fixed in every rung (a fixed
        # cache's behaviour is shared by construction — see the module
        # docstring).  A d-cache ladder pilots the L1i and vice versa; a
        # ladder that resizes both sides in some rung gets the general
        # mode, which re-dispatches the full shared stream per rung.
        # Every mode is expressed as a (resolve, fold, rung-kernels)
        # triple driven by one shared interval walk, so the interval
        # semantics — partial final chunk, ``total_seen`` threading,
        # per-rung close ordering — exist exactly once.
        hierarchy = first.hierarchy
        if all(not ctx.i_runtime.is_resizable for ctx in contexts):
            side = "i"
            pilot_cache = hierarchy.l1i
            pilot = hierarchy._l1i_packed
            resolve = lambda ops: _resolve_pilot_i(ops, pilot)  # noqa: E731
            fold = _fold_pilot_i
            rungs = [
                (ctx, ctx.hierarchy, ctx.hierarchy._l1d_packed,
                 ctx.hierarchy._miss_packed)
                for ctx in contexts
            ]
        elif all(not ctx.d_runtime.is_resizable for ctx in contexts):
            side = "d"
            pilot_cache = hierarchy.l1d
            pilot = hierarchy._l1d_packed
            resolve = lambda ops: _resolve_pilot_d(ops, pilot)  # noqa: E731
            fold = _fold_pilot_d
            rungs = [
                (ctx, ctx.hierarchy, ctx.hierarchy._l1i_packed,
                 ctx.hierarchy._miss_packed)
                for ctx in contexts
            ]
        else:
            side = None
            pilot_cache = None
            resolve = _resolve_general
            fold = _fold_general
            rungs = [(ctx, ctx.hierarchy, None, None) for ctx in contexts]
        plan = first.sampling_plan(len(trace))
        if plan is None:
            # Exhaustive replay: try the memoized whole-trace pre-decode
            # (and, for pilot modes, the memoized pilot pre-screen — valid
            # because the pilot is the fixed full-size L1, identical in
            # every rung and every run of this trace).  Gate refusals fall
            # back to the scalar walk, bit-identically.
            decoded = decoded_for(trace, first.block_mask, first.predictor)
            if decoded is not None:
                pilot_res = None
                if side is not None:
                    pilot_res = pilot_for(trace, decoded, side, pilot_cache)
                self._walk_decoded(first, rungs, resolve, fold, decoded, pilot_res)
                return
        self._walk_intervals(trace, first, rungs, resolve, fold, plan)

    def _walk_decoded(self, first, rungs, resolve, fold, decoded, pilot_res) -> None:
        """The exhaustive interval walk over memoized pre-decoded streams.

        Interval totals come from the decode's per-row prefix arrays; the
        per-interval op stream is an O(1) slice.  With a pilot resolution
        in hand the pilot pre-screen is skipped too — the reduced stream
        and the shared hit/miss totals are sliced from the memo, and the
        live pilot cache is never driven (rung 0 joins the documented
        idle-invariant-side caveat).  Without one (gate refusal), the
        shared ``resolve`` runs per interval exactly as the scalar walk
        would run it.
        """
        n = decoded.n
        interval_instructions = first.interval_instructions
        interval_ops = decoded.interval_ops
        op_prefix = decoded.op_prefix
        branch_prefix = decoded.branch_prefix
        mispredict_prefix = decoded.mispredict_prefix
        memref_prefix = decoded.memref_prefix
        store_prefix = decoded.store_prefix
        side = None if pilot_res is None else pilot_res.side

        total_seen = 0
        position = 0
        while position < n:
            stop = position + interval_instructions
            if stop > n:
                stop = n
            chunk = stop - position
            branches = branch_prefix[stop] - branch_prefix[position]
            branch_mispredicts = mispredict_prefix[stop] - mispredict_prefix[position]
            memory_refs = memref_prefix[stop] - memref_prefix[position]
            stores = store_prefix[stop] - store_prefix[position]

            if pilot_res is None:
                reduced, shared = resolve(interval_ops(position, stop))
            else:
                reduced = pilot_res.interval_entries(position, stop)
                misses = pilot_res.miss_prefix[stop] - pilot_res.miss_prefix[position]
                if side == "i":
                    fetches = (op_prefix[stop] - op_prefix[position]) - memory_refs
                    shared = (fetches, misses)
                else:
                    writebacks = (
                        pilot_res.wb_prefix[stop] - pilot_res.wb_prefix[position]
                    )
                    shared = (misses, writebacks)

            total_seen += chunk
            position = stop
            close = chunk == interval_instructions

            for ctx, aux, kernel_a, kernel_b in rungs:
                counts = ctx.counts
                counts.instructions += chunk
                counts.branches += branches
                counts.branch_mispredicts += branch_mispredicts
                counts.l1d_accesses += memory_refs
                counts.l1d_stores += stores
                fold(counts, reduced, shared, aux, kernel_a, kernel_b)
                if close:
                    ctx.total_seen = total_seen
                    ctx.close_interval()

        for ctx, _, _, _ in rungs:
            ctx.total_seen = total_seen
            ctx.close_interval(final=True)

    def _walk_intervals(self, trace, first, rungs, resolve, fold, plan) -> None:
        """The single shared interval walk every fused mode runs on.

        Per interval: slice the columns, decode once (branch prediction on
        the first context's predictor), ``resolve`` the stream once for
        all rungs (pilot modes shrink it; the general mode passes it
        through), then ``fold`` it into each rung's counts and close that
        rung's interval.  ``rungs`` are ``(context, aux, kernel_a,
        kernel_b)`` tuples whose aux/kernel meaning is mode-specific — the
        fold function and the rung list are built together in
        :meth:`replay_many`.
        """
        interval_instructions = first.interval_instructions
        block_mask = first.block_mask
        predict = first.predictor.predict_and_update
        decode = decode_interval

        pc_column, address_column, flag_column = trace.columns()
        pc_view = memoryview(pc_column)
        address_view = memoryview(address_column)
        flag_view = memoryview(flag_column)

        n = len(trace)
        if plan is not None:
            # Sampled walk, same shape as ColumnarEngine's: the plan picks
            # the row ranges, decode/resolve run once per segment, every
            # rung folds and closes (measured) or discards (warmup).
            last_fetch_block = -1
            total_seen = 0
            prev_stop = 0
            for start, stop, measured in plan:
                if start != prev_stop:
                    last_fetch_block = -1
                chunk = stop - start
                pcs = pc_view[start:stop].tolist()
                flags = flag_view[start:stop].tolist()
                addresses = address_view[start:stop].tolist()

                ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores = (
                    decode(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict)
                )
                reduced, shared = resolve(ops)
                total_seen += chunk
                prev_stop = stop
                close = measured and chunk == interval_instructions

                for ctx, aux, kernel_a, kernel_b in rungs:
                    counts = ctx.counts
                    counts.instructions += chunk
                    counts.branches += branches
                    counts.branch_mispredicts += branch_mispredicts
                    counts.l1d_accesses += memory_refs
                    counts.l1d_stores += stores
                    fold(counts, reduced, shared, aux, kernel_a, kernel_b)
                    if close:
                        ctx.total_seen = total_seen
                        ctx.close_interval()
                    elif not measured:
                        ctx.discard_interval()

            for ctx, _, _, _ in rungs:
                ctx.total_seen = total_seen
                ctx.close_interval(final=True)
            return

        last_fetch_block = -1
        total_seen = 0
        position = 0
        while position < n:
            stop = position + interval_instructions
            if stop > n:
                stop = n
            chunk = stop - position
            pcs = pc_view[position:stop].tolist()
            flags = flag_view[position:stop].tolist()
            addresses = address_view[position:stop].tolist()
            position = stop

            ops, last_fetch_block, branches, branch_mispredicts, memory_refs, stores = (
                decode(pcs, flags, addresses, chunk, block_mask, last_fetch_block, predict)
            )
            reduced, shared = resolve(ops)
            total_seen += chunk
            close = chunk == interval_instructions

            for ctx, aux, kernel_a, kernel_b in rungs:
                counts = ctx.counts
                counts.instructions += chunk
                counts.branches += branches
                counts.branch_mispredicts += branch_mispredicts
                counts.l1d_accesses += memory_refs
                counts.l1d_stores += stores
                fold(counts, reduced, shared, aux, kernel_a, kernel_b)
                if close:
                    ctx.total_seen = total_seen
                    ctx.close_interval()

        for ctx, _, _, _ in rungs:
            ctx.total_seen = total_seen
            ctx.close_interval(final=True)


def _resolve_general(ops):
    """General mode: nothing to pre-resolve, every rung replays all ops."""
    return ops, None


def _fold_general(counts, ops, shared, hierarchy, kernel_a, kernel_b):
    """Full per-rung dispatch through the engine's shared cache-op loop."""
    (
        l1i_accesses, l1i_misses, l1i_memory,
        l1d_misses, l1d_memory, l1d_writebacks,
        l2_accesses, memory_accesses,
    ) = dispatch_cache_ops_fast(ops, hierarchy)
    counts.l1i_accesses += l1i_accesses
    counts.l1i_misses += l1i_misses
    counts.l1i_memory_accesses += l1i_memory
    counts.l1d_misses += l1d_misses
    counts.l1d_memory_accesses += l1d_memory
    counts.l1d_writebacks += l1d_writebacks
    counts.l2_accesses += l2_accesses
    counts.memory_accesses += memory_accesses


def _fold_pilot_i(counts, reduced, shared, hierarchy, l1d_kernel, miss_fill):
    """Fold one rung's interval when the L1i was pilot-resolved."""
    fetches, i_misses = shared
    counts.l1i_accesses += fetches
    counts.l1i_misses += i_misses
    state = getattr(hierarchy.l1d, "_kernel_state", None)
    if state is not None:
        l2_state = getattr(hierarchy.l2, "_kernel_state", None)
        (
            l1i_memory, l1d_misses, l1d_memory, l1d_writebacks,
            l2_accesses, memory_accesses,
        ) = _dispatch_variant_d_fast(
            reduced, state(), miss_fill,
            l2_state() if l2_state is not None else None,
            hierarchy._memory_state() if l2_state is not None else None,
        )
    else:
        (
            l1i_memory, l1d_misses, l1d_memory, l1d_writebacks,
            l2_accesses, memory_accesses,
        ) = _dispatch_variant_d(reduced, l1d_kernel, miss_fill)
    counts.l1i_memory_accesses += l1i_memory
    counts.l1d_misses += l1d_misses
    counts.l1d_memory_accesses += l1d_memory
    counts.l1d_writebacks += l1d_writebacks
    counts.l2_accesses += l2_accesses
    counts.memory_accesses += memory_accesses


def _fold_pilot_d(counts, reduced, shared, hierarchy, l1i_kernel, miss_fill):
    """Fold one rung's interval when the L1d was pilot-resolved."""
    d_misses, d_writebacks = shared
    counts.l1d_misses += d_misses
    counts.l1d_writebacks += d_writebacks
    state = getattr(hierarchy.l1i, "_kernel_state", None)
    if state is not None:
        l2_state = getattr(hierarchy.l2, "_kernel_state", None)
        (
            l1i_accesses, l1i_misses, l1i_memory, l1d_memory,
            l2_accesses, memory_accesses,
        ) = _dispatch_variant_i_fast(
            reduced, state(), miss_fill,
            l2_state() if l2_state is not None else None,
            hierarchy._memory_state() if l2_state is not None else None,
        )
    else:
        (
            l1i_accesses, l1i_misses, l1i_memory, l1d_memory,
            l2_accesses, memory_accesses,
        ) = _dispatch_variant_i(reduced, l1i_kernel, miss_fill)
    counts.l1i_accesses += l1i_accesses
    counts.l1i_misses += l1i_misses
    counts.l1i_memory_accesses += l1i_memory
    counts.l1d_memory_accesses += l1d_memory
    counts.l2_accesses += l2_accesses
    counts.memory_accesses += memory_accesses


def _resolve_pilot_i(ops, l1i_kernel):
    """Resolve every fetch op on the pilot L1i; keep only the misses.

    Hits leave the stream entirely — an L1i hit touches no per-rung state
    and the replay path never consumes per-access latency.  Returns
    ``(reduced, (fetches, i_misses))``; each rung adds ``fetches`` to its
    ``l1i_accesses`` and ``i_misses`` to ``l1i_misses`` and performs one
    L2 fill per ``_OP_IMISS`` op (the L1i never holds dirty blocks, so
    there is no victim writeback to forward).
    """
    reduced = []
    append = reduced.append
    fetches = 0
    i_misses = 0
    op_fetch = _OP_FETCH
    op_imiss = _OP_IMISS
    stream = iter(ops)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            fetches += 1
            if not l1i_kernel(operand, False) & 1:
                i_misses += 1
                append(op_imiss)
                append(operand)
        else:
            append(code)
            append(operand)
    return reduced, (fetches, i_misses)


def _resolve_pilot_d(ops, l1d_kernel):
    """Resolve every load/store on the pilot L1d; keep only the misses.

    A surviving ``_OP_DMISS`` op carries the pilot's packed L1 outcome so
    each rung can forward the (shared) dirty-victim writeback into its own
    L2 via ``_miss_packed``.  Returns ``(reduced, (d_misses,
    d_writebacks))`` — both shared per-interval counts, since the victim
    sequence of a fixed L1d is configuration-independent.
    """
    reduced = []
    append = reduced.append
    d_misses = 0
    d_writebacks = 0
    op_fetch = _OP_FETCH
    op_load = _OP_LOAD
    op_dmiss = _OP_DMISS
    writeback_valid = PACKED_WRITEBACK_VALID
    stream = iter(ops)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            append(op_fetch)
            append(operand)
        else:
            l1_packed = l1d_kernel(operand, code != op_load)
            if not l1_packed & 1:
                d_misses += 1
                if l1_packed & writeback_valid:
                    d_writebacks += 1
                append(op_dmiss)
                append(operand)
                append(l1_packed)
    return reduced, (d_misses, d_writebacks)


def _dispatch_variant_d(reduced, l1d_kernel, miss_fill):
    """Per-rung dispatch when the L1i was pilot-resolved (d-cache ladder).

    Drives the rung's (variant) L1d kernel for every load/store and its
    ``_miss_packed`` fill path for both d-misses and the pre-resolved
    i-misses.  Returns ``(l1i_memory, l1d_misses, l1d_memory,
    l1d_writebacks, l2_accesses, memory_accesses)``.
    """
    l2a_shift, mem_shift = HIER_L2_ACCESSES_SHIFT, HIER_MEM_ACCESSES_SHIFT
    count_mask = HIER_COUNT_MASK
    op_imiss = _OP_IMISS
    op_load = _OP_LOAD
    l1i_memory = 0
    l1d_misses = 0
    l1d_memory = 0
    l1d_writebacks = 0
    l2_accesses = 0
    memory_accesses = 0
    stream = iter(reduced)
    for code in stream:
        operand = next(stream)
        if code == op_imiss:
            packed = miss_fill(0, operand)
            l2_accesses += (packed >> l2a_shift) & count_mask
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1i_memory += transfers
        else:
            l1_packed = l1d_kernel(operand, code != op_load)
            if not l1_packed & 1:
                packed = miss_fill(l1_packed, operand)
                l1d_misses += 1
                fills = (packed >> l2a_shift) & count_mask
                l2_accesses += fills
                transfers = (packed >> mem_shift) & count_mask
                memory_accesses += transfers
                l1d_memory += transfers
                if fills > 1:
                    l1d_writebacks += fills - 1
    return l1i_memory, l1d_misses, l1d_memory, l1d_writebacks, l2_accesses, memory_accesses


def _dispatch_variant_d_fast(reduced, kernel_state, miss_fill, l2_state=None, mem_state=None):
    """:func:`_dispatch_variant_d` with the variant L1d's hit path inline.

    ``kernel_state`` is the variant cache's hoisted
    :meth:`~repro.cache.cache.Cache._kernel_state` tuple, fetched fresh by
    the fold each interval (resizes land exactly at interval boundaries).
    The access body mirrors ``access_packed`` statement for statement; stat
    deltas are flushed into the cache's counters before returning, so the
    boundary-observable state is identical to the per-call kernel's.

    ``l2_state`` (the rung L2's hoisted kernel tuple, or None) enables the
    inline L2 probe for misses with no dirty L1 victim, and ``mem_state``
    (:meth:`~repro.cache.hierarchy.CacheHierarchy._memory_state`, or None)
    extends it to the L2-miss outcome: the L2 fill/victim-spill and the
    memory transfers are dict ops and counter bumps whose latency this
    path never consumes, so the whole miss resolves without the
    ``_miss_packed`` frame.  Only dirty-L1-victim spills still take it.
    """
    (d_stats, d_sets, d_off, d_idx, d_mask, d_ways, d_refresh, d_random, d_selector) = (
        kernel_state
    )
    if l2_state is not None:
        (l2_stats, l2_sets, l2_off, l2_idx, l2_mask, l2_ways, l2_refresh,
         l2_random, l2_selector) = l2_state
        l2_shift1 = l2_off + 1
    else:
        l2_stats = l2_sets = l2_off = l2_idx = l2_mask = None
        l2_ways = l2_refresh = l2_random = l2_selector = l2_shift1 = None
        mem_state = None
    inline_mem = mem_state is not None
    if inline_mem:
        wb_pending = mem_state[4]._pending
        wb_entries = mem_state[4].num_entries
    else:
        wb_pending = wb_entries = None
    l2_hits = l2m = l2_wb = l2_whits = l2_wm = 0
    wb_enq = wb_over = wb_drain = 0
    d_shift1 = d_off + 1
    l2a_shift, mem_shift = HIER_L2_ACCESSES_SHIFT, HIER_MEM_ACCESSES_SHIFT
    count_mask = HIER_COUNT_MASK
    filled, wb_valid, wb_shift = PACKED_FILLED, PACKED_WRITEBACK_VALID, PACKED_WRITEBACK_SHIFT
    op_imiss = _OP_IMISS
    op_load = _OP_LOAD
    da = dw = dh = dwm = dwb = 0
    l1i_memory = 0
    l1d_misses = 0
    l1d_memory = 0
    l1d_writebacks = 0
    l2_accesses = 0
    memory_accesses = 0
    stream = iter(reduced)
    for code in stream:
        operand = next(stream)
        if code == op_imiss:
            # Pre-resolved i-miss: no L1 victim at all, so either L2
            # outcome settles inline — a read hit is one probe, a read
            # miss adds the fill/victim dict ops and memory counter bumps.
            if l2_sets is not None:
                b2 = operand >> l2_off
                t2 = b2 >> l2_idx
                bl2 = l2_sets[b2 & l2_mask]
                p2 = bl2.get(t2)
                if p2 is not None:
                    if l2_refresh:
                        del bl2[t2]
                        bl2[t2] = p2
                    l2_hits += 1
                    l2_accesses += 1
                    continue
                if inline_mem:
                    l2m += 1
                    v2 = None
                    if len(bl2) >= l2_ways:
                        vt2 = l2_selector.choose_victim(bl2) if l2_random else next(iter(bl2))
                        v2 = bl2.pop(vt2)
                    bl2[t2] = b2 << l2_shift1
                    if v2 is not None and v2 & 1:
                        l2_wb += 1
                        transfers = 2
                    else:
                        transfers = 1
                    l2_accesses += 1
                    memory_accesses += transfers
                    l1i_memory += transfers
                    continue
            packed = miss_fill(0, operand)
            l2_accesses += (packed >> l2a_shift) & count_mask
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1i_memory += transfers
        else:
            is_write = code != op_load
            da += 1
            if is_write:
                dw += 1
            block = operand >> d_off
            tag = block >> d_idx
            blocks = d_sets[block & d_mask]
            packed = blocks.get(tag)
            if packed is not None:
                dh += 1
                if is_write:
                    packed |= 1
                    if d_refresh:
                        del blocks[tag]
                    blocks[tag] = packed
                elif d_refresh:
                    del blocks[tag]
                    blocks[tag] = packed
                continue
            if is_write:
                dwm += 1
            victim = None
            if len(blocks) >= d_ways:
                victim_tag = d_selector.choose_victim(blocks) if d_random else next(iter(blocks))
                victim = blocks.pop(victim_tag)
            blocks[tag] = (block << d_shift1) | (1 if is_write else 0)
            if victim is not None and victim & 1:
                dwb += 1
                if inline_mem:
                    # Dirty victim: L2 read fill, buffer push, L2
                    # write-allocate of the victim — _miss_packed's whole
                    # body as dict ops and counter bumps.
                    b2 = operand >> l2_off
                    t2 = b2 >> l2_idx
                    bl2 = l2_sets[b2 & l2_mask]
                    p2 = bl2.get(t2)
                    if p2 is not None:
                        if l2_refresh:
                            del bl2[t2]
                            bl2[t2] = p2
                        l2_hits += 1
                        transfers = 0
                    else:
                        l2m += 1
                        v2 = None
                        if len(bl2) >= l2_ways:
                            vt2 = l2_selector.choose_victim(bl2) if l2_random else next(iter(bl2))
                            v2 = bl2.pop(vt2)
                        bl2[t2] = b2 << l2_shift1
                        if v2 is not None and v2 & 1:
                            l2_wb += 1
                            transfers = 2
                        else:
                            transfers = 1
                    wb_addr = victim >> 1
                    wb_enq += 1
                    if len(wb_pending) >= wb_entries:
                        wb_over += 1
                        wb_pending.popleft()
                        wb_drain += 1
                    wb_pending.append(wb_addr)
                    b3 = wb_addr >> l2_off
                    t3 = b3 >> l2_idx
                    bl3 = l2_sets[b3 & l2_mask]
                    p3 = bl3.get(t3)
                    if p3 is not None:
                        l2_whits += 1
                        p3 |= 1
                        if l2_refresh:
                            del bl3[t3]
                        bl3[t3] = p3
                    else:
                        l2_wm += 1
                        v3 = None
                        if len(bl3) >= l2_ways:
                            vt3 = l2_selector.choose_victim(bl3) if l2_random else next(iter(bl3))
                            v3 = bl3.pop(vt3)
                        bl3[t3] = (b3 << l2_shift1) | 1
                        transfers += 1
                        if v3 is not None and v3 & 1:
                            l2_wb += 1
                            transfers += 1
                    l1d_misses += 1
                    l1d_writebacks += 1
                    l2_accesses += 2
                    memory_accesses += transfers
                    l1d_memory += transfers
                    continue
                l1_packed = filled | wb_valid | ((victim >> 1) << wb_shift)
            else:
                if l2_sets is not None:
                    b2 = operand >> l2_off
                    t2 = b2 >> l2_idx
                    bl2 = l2_sets[b2 & l2_mask]
                    p2 = bl2.get(t2)
                    if p2 is not None:
                        if l2_refresh:
                            del bl2[t2]
                            bl2[t2] = p2
                        l2_hits += 1
                        l1d_misses += 1
                        l2_accesses += 1
                        continue
                    if inline_mem:
                        l2m += 1
                        v2 = None
                        if len(bl2) >= l2_ways:
                            vt2 = l2_selector.choose_victim(bl2) if l2_random else next(iter(bl2))
                            v2 = bl2.pop(vt2)
                        bl2[t2] = b2 << l2_shift1
                        if v2 is not None and v2 & 1:
                            l2_wb += 1
                            transfers = 2
                        else:
                            transfers = 1
                        l1d_misses += 1
                        l2_accesses += 1
                        memory_accesses += transfers
                        l1d_memory += transfers
                        continue
                l1_packed = filled
            packed = miss_fill(l1_packed, operand)
            l1d_misses += 1
            fills = (packed >> l2a_shift) & count_mask
            l2_accesses += fills
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1d_memory += transfers
            if fills > 1:
                l1d_writebacks += fills - 1

    d_stats.accesses += da
    d_stats.writes += dw
    d_stats.reads += da - dw
    d_stats.hits += dh
    dm = da - dh
    d_stats.misses += dm
    d_stats.write_misses += dwm
    d_stats.read_misses += dm - dwm
    d_stats.fills += dm
    d_stats.writebacks += dwb
    if l2_hits or l2m or l2_whits or l2_wm:
        l2_stats.accesses += l2_hits + l2m + l2_whits + l2_wm
        l2_stats.reads += l2_hits + l2m
        l2_stats.writes += l2_whits + l2_wm
        l2_stats.hits += l2_hits + l2_whits
        l2_stats.misses += l2m + l2_wm
        l2_stats.read_misses += l2m
        l2_stats.write_misses += l2_wm
        l2_stats.fills += l2m + l2_wm
        l2_stats.writebacks += l2_wb
    if l2m or l2_wm or l2_wb:
        mem_reads, mem_writes, mem_bytes, l2_block, _ = mem_state
        mem_reads.value += l2m + l2_wm
        mem_writes.value += l2_wb
        mem_bytes.value += (l2m + l2_wm + l2_wb) * l2_block
    if wb_enq:
        wb_buffer = mem_state[4]
        wb_buffer.enqueued += wb_enq
        wb_buffer.overflows += wb_over
        wb_buffer.drained += wb_drain
    return l1i_memory, l1d_misses, l1d_memory, l1d_writebacks, l2_accesses, memory_accesses


def _dispatch_variant_i(reduced, l1i_kernel, miss_fill):
    """Per-rung dispatch when the L1d was pilot-resolved (i-cache ladder).

    Drives the rung's (variant) L1i kernel for every fetch op and its
    ``_miss_packed`` fill path for both i-misses and the pre-resolved
    d-misses (whose shared victim-writeback outcome rides in the stream).
    Returns ``(l1i_accesses, l1i_misses, l1i_memory, l1d_memory,
    l2_accesses, memory_accesses)``.
    """
    l2a_shift, mem_shift = HIER_L2_ACCESSES_SHIFT, HIER_MEM_ACCESSES_SHIFT
    count_mask = HIER_COUNT_MASK
    op_fetch = _OP_FETCH
    l1i_accesses = 0
    l1i_misses = 0
    l1i_memory = 0
    l1d_memory = 0
    l2_accesses = 0
    memory_accesses = 0
    stream = iter(reduced)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            l1_packed = l1i_kernel(operand, False)
            l1i_accesses += 1
            if not l1_packed & 1:
                packed = miss_fill(l1_packed, operand)
                l1i_misses += 1
                l2_accesses += (packed >> l2a_shift) & count_mask
                transfers = (packed >> mem_shift) & count_mask
                memory_accesses += transfers
                l1i_memory += transfers
        else:
            l1_packed = next(stream)
            packed = miss_fill(l1_packed, operand)
            fills = (packed >> l2a_shift) & count_mask
            l2_accesses += fills
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1d_memory += transfers
    return l1i_accesses, l1i_misses, l1i_memory, l1d_memory, l2_accesses, memory_accesses


def _dispatch_variant_i_fast(reduced, kernel_state, miss_fill, l2_state=None, mem_state=None):
    """:func:`_dispatch_variant_i` with the variant L1i's hit path inline.

    Same contract as :func:`_dispatch_variant_d_fast`: hoisted kernel
    state, inline ``access_packed`` body (the L1i is read-only, so the hit
    path is just the probe plus LRU refresh and fills are never dirty),
    the full inline L2 access — hit probe, and with ``mem_state`` the
    read-miss fill/victim-spill and memory counter bumps — for misses
    without a dirty L1 victim, stat deltas flushed before returning.
    """
    (i_stats, i_sets, i_off, i_idx, i_mask, i_ways, i_refresh, i_random, i_selector) = (
        kernel_state
    )
    if l2_state is not None:
        (l2_stats, l2_sets, l2_off, l2_idx, l2_mask, l2_ways, l2_refresh,
         l2_random, l2_selector) = l2_state
        l2_shift1 = l2_off + 1
    else:
        l2_stats = l2_sets = l2_off = l2_idx = l2_mask = None
        l2_ways = l2_refresh = l2_random = l2_selector = l2_shift1 = None
        mem_state = None
    inline_mem = mem_state is not None
    if inline_mem:
        wb_pending = mem_state[4]._pending
        wb_entries = mem_state[4].num_entries
    else:
        wb_pending = wb_entries = None
    l2_hits = l2m = l2_wb = l2_whits = l2_wm = 0
    wb_enq = wb_over = wb_drain = 0
    i_shift1 = i_off + 1
    l2a_shift, mem_shift = HIER_L2_ACCESSES_SHIFT, HIER_MEM_ACCESSES_SHIFT
    count_mask = HIER_COUNT_MASK
    filled, wb_valid, wb_shift = PACKED_FILLED, PACKED_WRITEBACK_VALID, PACKED_WRITEBACK_SHIFT
    op_fetch = _OP_FETCH
    ia = ih = iwb = 0
    l1i_misses = 0
    l1i_memory = 0
    l1d_memory = 0
    l2_accesses = 0
    memory_accesses = 0
    stream = iter(reduced)
    for code in stream:
        operand = next(stream)
        if code == op_fetch:
            ia += 1
            block = operand >> i_off
            tag = block >> i_idx
            blocks = i_sets[block & i_mask]
            packed = blocks.get(tag)
            if packed is not None:
                ih += 1
                if i_refresh:
                    del blocks[tag]
                    blocks[tag] = packed
                continue
            victim = None
            if len(blocks) >= i_ways:
                victim_tag = i_selector.choose_victim(blocks) if i_random else next(iter(blocks))
                victim = blocks.pop(victim_tag)
            blocks[tag] = block << i_shift1
            if victim is not None and victim & 1:
                iwb += 1
                l1_packed = filled | wb_valid | ((victim >> 1) << wb_shift)
            else:
                if l2_sets is not None:
                    b2 = operand >> l2_off
                    t2 = b2 >> l2_idx
                    bl2 = l2_sets[b2 & l2_mask]
                    p2 = bl2.get(t2)
                    if p2 is not None:
                        if l2_refresh:
                            del bl2[t2]
                            bl2[t2] = p2
                        l2_hits += 1
                        l1i_misses += 1
                        l2_accesses += 1
                        continue
                    if inline_mem:
                        l2m += 1
                        v2 = None
                        if len(bl2) >= l2_ways:
                            vt2 = l2_selector.choose_victim(bl2) if l2_random else next(iter(bl2))
                            v2 = bl2.pop(vt2)
                        bl2[t2] = b2 << l2_shift1
                        if v2 is not None and v2 & 1:
                            l2_wb += 1
                            transfers = 2
                        else:
                            transfers = 1
                        l1i_misses += 1
                        l2_accesses += 1
                        memory_accesses += transfers
                        l1i_memory += transfers
                        continue
                l1_packed = filled
            packed = miss_fill(l1_packed, operand)
            l1i_misses += 1
            l2_accesses += (packed >> l2a_shift) & count_mask
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1i_memory += transfers
        else:
            l1_packed = next(stream)
            # Pre-resolved d-miss: l1_packed == filled means the shared
            # L1d fill evicted no dirty victim, so the L2 access again
            # resolves inline whatever its outcome.
            if l1_packed == filled and l2_sets is not None:
                b2 = operand >> l2_off
                t2 = b2 >> l2_idx
                bl2 = l2_sets[b2 & l2_mask]
                p2 = bl2.get(t2)
                if p2 is not None:
                    if l2_refresh:
                        del bl2[t2]
                        bl2[t2] = p2
                    l2_hits += 1
                    l2_accesses += 1
                    continue
                if inline_mem:
                    l2m += 1
                    v2 = None
                    if len(bl2) >= l2_ways:
                        vt2 = l2_selector.choose_victim(bl2) if l2_random else next(iter(bl2))
                        v2 = bl2.pop(vt2)
                    bl2[t2] = b2 << l2_shift1
                    if v2 is not None and v2 & 1:
                        l2_wb += 1
                        transfers = 2
                    else:
                        transfers = 1
                    l2_accesses += 1
                    memory_accesses += transfers
                    l1d_memory += transfers
                    continue
            elif inline_mem and l1_packed & wb_valid:
                # Shared dirty victim: L2 read fill, buffer push, L2
                # write-allocate of the victim, all inline.
                b2 = operand >> l2_off
                t2 = b2 >> l2_idx
                bl2 = l2_sets[b2 & l2_mask]
                p2 = bl2.get(t2)
                if p2 is not None:
                    if l2_refresh:
                        del bl2[t2]
                        bl2[t2] = p2
                    l2_hits += 1
                    transfers = 0
                else:
                    l2m += 1
                    v2 = None
                    if len(bl2) >= l2_ways:
                        vt2 = l2_selector.choose_victim(bl2) if l2_random else next(iter(bl2))
                        v2 = bl2.pop(vt2)
                    bl2[t2] = b2 << l2_shift1
                    if v2 is not None and v2 & 1:
                        l2_wb += 1
                        transfers = 2
                    else:
                        transfers = 1
                wb_addr = l1_packed >> wb_shift
                wb_enq += 1
                if len(wb_pending) >= wb_entries:
                    wb_over += 1
                    wb_pending.popleft()
                    wb_drain += 1
                wb_pending.append(wb_addr)
                b3 = wb_addr >> l2_off
                t3 = b3 >> l2_idx
                bl3 = l2_sets[b3 & l2_mask]
                p3 = bl3.get(t3)
                if p3 is not None:
                    l2_whits += 1
                    p3 |= 1
                    if l2_refresh:
                        del bl3[t3]
                    bl3[t3] = p3
                else:
                    l2_wm += 1
                    v3 = None
                    if len(bl3) >= l2_ways:
                        vt3 = l2_selector.choose_victim(bl3) if l2_random else next(iter(bl3))
                        v3 = bl3.pop(vt3)
                    bl3[t3] = (b3 << l2_shift1) | 1
                    transfers += 1
                    if v3 is not None and v3 & 1:
                        l2_wb += 1
                        transfers += 1
                l2_accesses += 2
                memory_accesses += transfers
                l1d_memory += transfers
                continue
            packed = miss_fill(l1_packed, operand)
            fills = (packed >> l2a_shift) & count_mask
            l2_accesses += fills
            transfers = (packed >> mem_shift) & count_mask
            memory_accesses += transfers
            l1d_memory += transfers

    i_stats.accesses += ia
    i_stats.reads += ia
    i_stats.hits += ih
    im = ia - ih
    i_stats.misses += im
    i_stats.read_misses += im
    i_stats.fills += im
    i_stats.writebacks += iwb
    if l2_hits or l2m or l2_whits or l2_wm:
        l2_stats.accesses += l2_hits + l2m + l2_whits + l2_wm
        l2_stats.reads += l2_hits + l2m
        l2_stats.writes += l2_whits + l2_wm
        l2_stats.hits += l2_hits + l2_whits
        l2_stats.misses += l2m + l2_wm
        l2_stats.read_misses += l2m
        l2_stats.write_misses += l2_wm
        l2_stats.fills += l2m + l2_wm
        l2_stats.writebacks += l2_wb
    if l2m or l2_wm or l2_wb:
        mem_reads, mem_writes, mem_bytes, l2_block, _ = mem_state
        mem_reads.value += l2m + l2_wm
        mem_writes.value += l2_wb
        mem_bytes.value += (l2m + l2_wm + l2_wb) * l2_block
    if wb_enq:
        wb_buffer = mem_state[4]
        wb_buffer.enqueued += wb_enq
        wb_buffer.overflows += wb_over
        wb_buffer.drained += wb_drain
    return ia, l1i_misses, l1i_memory, l1d_memory, l2_accesses, memory_accesses


def run_fused(
    simulator: Simulator,
    trace: Trace,
    setups: Sequence[Tuple[Optional[L1Setup], Optional[L1Setup]]],
    interval_instructions: int = 1500,
    warmup_instructions: int = 0,
    sample_every: int = 1,
    sample_warmup: int = 0,
) -> List[SimulationResult]:
    """Simulate every ``(d_setup, i_setup)`` rung in one fused trace pass.

    The fused counterpart of calling ``simulator.run(...)`` once per rung:
    results are returned in rung order and each is bit-identical to its
    standalone run (including under interval sampling — the sampling
    schedule is row-range-driven and configuration-independent, so it is
    shared by every rung).  Setups are live :class:`L1Setup` objects
    (strategies and organizations are stateful, so every rung needs its
    own); the worker-side job layer builds them from declarative specs —
    see :func:`repro.sim.runner.execute_ladder_job`.
    """
    if not setups:
        raise SimulationError("a fused ladder needs at least one rung")
    if len(trace) == 0:
        raise SimulationError("cannot simulate an empty trace")
    if interval_instructions < 1:
        raise SimulationError("interval length must be at least one instruction")
    if sample_every < 1:
        raise SimulationError("sample_every must be at least 1")
    if sample_warmup < 0:
        raise SimulationError("sample_warmup cannot be negative")
    contexts = [
        simulator._prepare_run(
            trace, d_setup, i_setup, interval_instructions, warmup_instructions,
            sample_every=sample_every, sample_warmup=sample_warmup,
        )
        for d_setup, i_setup in setups
    ]
    LadderEngine().replay_many(trace, contexts)
    return [Simulator._finalize_run(context) for context in contexts]
