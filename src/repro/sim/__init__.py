"""Simulation driver: ties caches, cores, energy models and workloads together."""

from repro.sim.results import SimulationResult
from repro.sim.simulator import L1Setup, Simulator
from repro.sim.sweep import (
    StaticProfile,
    profile_static,
    run_baseline,
    run_dynamic,
    run_with_setups,
)

__all__ = [
    "SimulationResult",
    "L1Setup",
    "Simulator",
    "StaticProfile",
    "run_baseline",
    "run_with_setups",
    "profile_static",
    "run_dynamic",
]
