"""Simulation driver: ties caches, cores, energy models and workloads together."""

from repro.sim.engine import (
    DEFAULT_ENGINE,
    ColumnarEngine,
    ReferenceEngine,
    ReplayEngine,
    available_engines,
    get_engine,
    register_engine,
)
from repro.sim.future import SimFuture
from repro.sim.jobcache import JobCache
from repro.sim.ladder import LadderEngine, run_fused
from repro.sim.results import SimulationResult
from repro.sim.runner import (
    L1SetupSpec,
    LadderJob,
    SimJob,
    StrategySpec,
    SweepRunner,
    TraceSpec,
    execute_job,
    execute_ladder_job,
    get_trace_cache,
    job_fingerprint,
    register_organization,
    resolve_trace,
    set_trace_cache,
)
from repro.sim.simulator import L1Setup, Simulator
from repro.sim.tracecache import TraceCache
from repro.sim.sweep import (
    FUSED,
    LADDER_MODES,
    PER_CONFIG,
    StaticProfile,
    StaticProfileFuture,
    Sweep,
    make_job,
    profile_static,
    run_baseline,
    run_dynamic,
    run_with_setups,
    submit_baseline,
    submit_dynamic,
    submit_profile_static,
    submit_with_setups,
)

__all__ = [
    "SimulationResult",
    "L1Setup",
    "Simulator",
    # the unified sweep facade (canonical entry point)
    "Sweep",
    "StaticProfile",
    "run_baseline",
    "run_with_setups",
    "profile_static",
    "run_dynamic",
    "make_job",
    # sweep engine
    "SimJob",
    "TraceSpec",
    "StrategySpec",
    "L1SetupSpec",
    "SweepRunner",
    "JobCache",
    "execute_job",
    "job_fingerprint",
    "register_organization",
    "resolve_trace",
    # deferred-submission job graph
    "SimFuture",
    "StaticProfileFuture",
    "submit_baseline",
    "submit_with_setups",
    "submit_profile_static",
    "submit_dynamic",
    # fused ladder replay
    "LadderEngine",
    "LadderJob",
    "execute_ladder_job",
    "run_fused",
    "FUSED",
    "PER_CONFIG",
    "LADDER_MODES",
    # replay engines
    "ReplayEngine",
    "ReferenceEngine",
    "ColumnarEngine",
    "DEFAULT_ENGINE",
    "available_engines",
    "get_engine",
    "register_engine",
    # trace cache
    "TraceCache",
    "set_trace_cache",
    "get_trace_cache",
]
