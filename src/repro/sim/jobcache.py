"""On-disk memoisation of completed simulation jobs.

A :class:`JobCache` maps a job *fingerprint* (a content hash over everything
that influences a simulation's outcome — trace spec, system configuration,
L1 setups, interval/warmup parameters, technology and timing constants; see
:func:`repro.sim.runner.job_fingerprint`) to the :class:`SimulationResult`
the job produced.  Re-running a sweep then only simulates jobs whose spec
actually changed: perturbing any parameter changes the fingerprint and
misses the cache, while an identical spec is served from disk without
touching the simulator.

Layout on disk (sharded by the first two fingerprint hex digits so that a
full paper reproduction does not put thousands of files into one directory)::

    <cache-dir>/
        ab/
            ab3f...e1.json          # one completed job
        c0/
            c04d...77.json

Each entry file contains the format version, the fingerprint, a small
human-readable description of the job (workload, cache setups) for
debugging, and the full result.  Writes go through a per-process temporary
file followed by an atomic :func:`os.replace`, so concurrent workers (or
concurrent sweep processes sharing one cache directory) can never observe a
half-written entry — the worst case is both simulating the same job and one
harmlessly overwriting the other with an identical payload.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.sim.results import SimulationResult

#: Bump when the fingerprint inputs or the result schema change; entries
#: written by other versions are treated as misses.
CACHE_FORMAT_VERSION = 1


class JobCache:
    """A directory of completed simulation jobs keyed by fingerprint."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ paths
    def _entry_path(self, fingerprint: str) -> Path:
        return self.directory / fingerprint[:2] / f"{fingerprint}.json"

    # ----------------------------------------------------------------- access
    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        """Return the cached result for ``fingerprint``, or None on a miss.

        Unreadable, truncated or foreign-version entries are treated as
        misses rather than errors: the caller simply re-simulates and
        overwrites them.
        """
        path = self._entry_path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != CACHE_FORMAT_VERSION:
                return None
            if payload.get("fingerprint") != fingerprint:
                return None
            return SimulationResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def put(
        self, fingerprint: str, result: SimulationResult, description: Optional[dict] = None
    ) -> None:
        """Persist ``result`` under ``fingerprint`` (atomically).

        The cache is only a memo: a write failure (disk full, permissions)
        is swallowed so the simulation result in hand still reaches the
        caller — the job simply is not memoised.
        """
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "job": description if description is not None else {},
            "result": result.to_dict(),
        }
        try:
            path = self._entry_path(fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            self._atomic_write(path, payload)
        except OSError:
            pass

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    # ------------------------------------------------------------ maintenance
    def _shards(self):
        """Existing shard directories (empty if the cache dir was deleted)."""
        try:
            return [shard for shard in self.directory.iterdir() if shard.is_dir()]
        except OSError:
            return []

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for shard in self._shards() for entry in shard.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry (and any orphaned atomic-write temp files left
        by a killed process); returns how many entries were removed."""
        removed = 0
        for shard in self._shards():
            for entry in shard.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            for orphan in shard.glob("*.json.tmp.*"):
                try:
                    orphan.unlink()
                except OSError:
                    pass
        return removed

    # -------------------------------------------------------------- internals
    @staticmethod
    def _atomic_write(path: Path, payload: dict) -> None:
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True)
        os.replace(tmp, path)

    def __repr__(self) -> str:
        return f"JobCache({str(self.directory)!r})"
