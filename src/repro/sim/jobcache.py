"""On-disk memoisation of completed simulation jobs.

A :class:`JobCache` maps a job *fingerprint* (a content hash over everything
that influences a simulation's outcome — trace spec, system configuration,
L1 setups, interval/warmup parameters, technology and timing constants; see
:func:`repro.sim.runner.job_fingerprint`) to the :class:`SimulationResult`
the job produced.  Re-running a sweep then only simulates jobs whose spec
actually changed: perturbing any parameter changes the fingerprint and
misses the cache, while an identical spec is served from disk without
touching the simulator.

Layout on disk (sharded by the first two fingerprint hex digits so that a
full paper reproduction does not put thousands of files into one directory)::

    <cache-dir>/
        ab/
            ab3f...e1.json          # one completed job
        c0/
            c04d...77.json

Each entry file contains the format version, the fingerprint, a small
human-readable description of the job (workload, cache setups) for
debugging, the full result, and a SHA-256 checksum over all of the above.
Writes go through a per-process temporary file followed by an atomic
:func:`os.replace` (see :mod:`repro.common.atomicio`), so concurrent
workers (or concurrent sweep processes sharing one cache directory) can
never observe a half-written entry — the worst case is both simulating the
same job and one harmlessly overwriting the other with an identical
payload.  The checksum guards against corruption rename atomicity cannot:
bit rot, a crashed writer on a filesystem without atomic rename, an
injected ``cache_corrupt`` fault.  A corrupt entry *self-heals*: the read
counts it (:attr:`JobCache.corrupt_entries`), deletes the file, and
reports a miss — the job re-simulates and overwrites the entry; nothing
ever crashes on cache content.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional, Union

from repro.common.atomicio import atomic_write_json, atomic_write_text
from repro.sim import faults
from repro.sim.results import SimulationResult

#: Bump when the fingerprint inputs or the result schema change; entries
#: written by other versions are treated as misses.
#: v2: entries carry a SHA-256 ``checksum`` field; corrupt entries self-heal.
CACHE_FORMAT_VERSION = 2


class JobCache:
    """A directory of completed simulation jobs keyed by fingerprint."""

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Corrupt entries encountered (and deleted) by this cache object's
        #: reads: torn writes, bit rot, checksum mismatches.  Each counted
        #: entry also reported a miss, so the caller re-simulated it.
        self.corrupt_entries = 0

    # ------------------------------------------------------------------ paths
    def _entry_path(self, fingerprint: str) -> Path:
        return self.directory / fingerprint[:2] / f"{fingerprint}.json"

    # ----------------------------------------------------------------- access
    def get(self, fingerprint: str) -> Optional[SimulationResult]:
        """Return the cached result for ``fingerprint``, or None on a miss.

        Foreign-version entries are plain misses (the format moved on).
        Unreadable, truncated, checksum-failing or otherwise corrupt
        entries are *self-healing* misses: counted in
        :attr:`corrupt_entries` and deleted, so the re-simulated result's
        write restores the entry and the corruption never recurs.
        """
        path = self._entry_path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                raw = handle.read()
        except OSError:
            return None  # no entry (or unreadable filesystem): a plain miss
        try:
            payload = json.loads(raw)
            if payload.get("version") != CACHE_FORMAT_VERSION:
                return None
            if payload.get("fingerprint") != fingerprint:
                return None
            if payload.get("checksum") != self._payload_checksum(payload):
                raise ValueError("entry checksum mismatch")
            return SimulationResult.from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.corrupt_entries += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(
        self, fingerprint: str, result: SimulationResult, description: Optional[dict] = None
    ) -> None:
        """Persist ``result`` under ``fingerprint`` (atomically, checksummed).

        The cache is only a memo: a write failure (disk full, permissions)
        is swallowed so the simulation result in hand still reaches the
        caller — the job simply is not memoised.
        """
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "job": description if description is not None else {},
            "result": result.to_dict(),
        }
        payload["checksum"] = self._payload_checksum(payload)
        try:
            path = self._entry_path(fingerprint)
            path.parent.mkdir(parents=True, exist_ok=True)
            if faults.fire("cache_corrupt") is not None:
                # Injected torn write: atomically land a truncated entry,
                # exactly the damage a non-atomic writer's crash would
                # leave.  The next read must self-heal it into a miss.
                text = json.dumps(payload, sort_keys=True)
                atomic_write_text(path, text[: len(text) // 2])
                return
            atomic_write_json(path, payload, sort_keys=True)
        except OSError:
            pass

    @staticmethod
    def _payload_checksum(payload: dict) -> str:
        """SHA-256 over the canonical JSON of everything but the checksum."""
        body = {key: value for key, value in payload.items() if key != "checksum"}
        canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __contains__(self, fingerprint: str) -> bool:
        return self.get(fingerprint) is not None

    # ------------------------------------------------------------ maintenance
    def _shards(self):
        """Existing shard directories (empty if the cache dir was deleted)."""
        try:
            return [shard for shard in self.directory.iterdir() if shard.is_dir()]
        except OSError:
            return []

    def __len__(self) -> int:
        """Number of entries currently on disk."""
        return sum(1 for shard in self._shards() for entry in shard.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry (and any orphaned atomic-write temp files left
        by a killed process); returns how many entries were removed."""
        removed = 0
        for shard in self._shards():
            for entry in shard.glob("*.json"):
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    pass
            for orphan in shard.glob("*.json.tmp.*"):
                try:
                    orphan.unlink()
                except OSError:
                    pass
        return removed

    def __repr__(self) -> str:
        return f"JobCache({str(self.directory)!r})"
