"""The trace-driven processor simulator (orchestration shell).

The simulator replays a :class:`repro.workloads.trace.Trace` against a
two-level cache hierarchy, chops execution into fixed-length instruction
intervals, and for each interval

1. asks the core timing model for the interval's cycles,
2. asks the energy accountant for the interval's energy breakdown (which
   depends on how many subarrays each L1 currently has enabled), and
3. gives each resizing strategy the interval's access/miss counts so the
   miss-ratio based dynamic framework can upsize or downsize.

Resizing flushes are routed into the L2 and charged to the following
interval, so the energy and delay costs of resizing the paper discusses in
Section 3 are all accounted for.

The per-instruction loop itself lives in :mod:`repro.sim.engine`: the shell
here builds the run (caches, hierarchy, models, result aggregation) and a
pluggable :class:`~repro.sim.engine.ReplayEngine` walks the trace.  All
engines are bit-identical; ``engine="reference"`` selects the historical
per-record loop, ``engine="columnar"`` (the default) the structure-of-arrays
fast path.
"""

from __future__ import annotations

import math
from typing import Optional, Union

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.subarray import SubarrayMap
from repro.common.config import CacheGeometry, SystemConfig
from repro.common.errors import SimulationError
from repro.common.units import format_size
from repro.cpu.branch import BimodalBranchPredictor
from repro.cpu.core_model import make_core_model
from repro.cpu.timing import CoreTimingParameters
from repro.energy.accounting import EnergyAccountant
from repro.energy.technology import TechnologyParameters
from repro.resizing.organization import ResizingOrganization
from repro.resizing.resizable_cache import ResizableCache
from repro.resizing.strategy import ResizingStrategy
from repro.sim.engine import ReplayContext, ReplayEngine, get_engine
from repro.sim.results import SimulationResult
from repro.workloads.trace import Trace

#: Engine arguments the simulator accepts: a registry name, a live engine,
#: or None for the session default (see :data:`repro.sim.engine.DEFAULT_ENGINE`).
EngineLike = Union[str, ReplayEngine, None]

#: Per-process memo of fetch-block masks keyed by block size.
#:
#: Invariant (required for multiprocessing safety): the memo is append-only,
#: its values are immutable ints, and it is never shared between processes —
#: under ``fork`` each sweep worker inherits a snapshot and then diverges,
#: under ``spawn`` each worker starts empty.  Entries are never removed or
#: rewritten, so a stale read can at worst recompute a value that is equal
#: by construction.  Do not clear or mutate entries in place.
_BLOCK_MASK_CACHE: dict = {}


def _block_mask(block_bytes: int) -> int:
    """The address mask selecting the fetch block for ``block_bytes`` blocks."""
    mask = _BLOCK_MASK_CACHE.get(block_bytes)
    if mask is None:
        mask = ~(block_bytes - 1)
        _BLOCK_MASK_CACHE[block_bytes] = mask
    return mask


def _ratio_stderr(pairs) -> float:
    """Standard error of a miss ratio estimated from sampled intervals.

    ``pairs`` is one ``(misses, accesses)`` tuple per measured interval.
    The aggregate miss ratio is a ratio estimator ``R = Σm / Σa``; its
    standard error comes from Taylor linearisation over the per-interval
    residuals ``m_i - R·a_i`` (the textbook ratio-estimator variance —
    derivation and caveats in ``docs/SAMPLING.md``).  Degenerate inputs
    (fewer than two intervals, or no accesses at all) report 0.0: there is
    no dispersion to estimate, not an infinitely confident estimate.
    """
    k = len(pairs)
    total_accesses = sum(a for _, a in pairs)
    if k < 2 or total_accesses == 0:
        return 0.0
    ratio = sum(m for m, _ in pairs) / total_accesses
    mean_accesses = total_accesses / k
    residual_ss = sum((m - ratio * a) ** 2 for m, a in pairs)
    return math.sqrt(residual_ss / (k - 1) / k) / mean_accesses


class L1Setup:
    """How one L1 cache is configured for a run.

    ``organization=None`` builds a conventional non-resizable cache (the
    baseline every figure normalises against); otherwise a
    :class:`ResizableCache` with the given organization is built and the
    strategy decides when it resizes.
    """

    def __init__(
        self,
        organization: Optional[ResizingOrganization] = None,
        strategy: Optional[ResizingStrategy] = None,
    ) -> None:
        if organization is None and strategy is not None:
            raise SimulationError("a resizing strategy requires a resizing organization")
        self.organization = organization
        self.strategy = strategy

    @property
    def is_resizable(self) -> bool:
        """True when this setup builds a resizable cache."""
        return self.organization is not None

    def build(self, geometry: CacheGeometry, name: str):
        """Instantiate the cache object for this setup."""
        if self.organization is None:
            return Cache(geometry, name=name)
        if self.organization.geometry != geometry:
            raise SimulationError(
                f"organization geometry {self.organization.geometry.describe()} does not "
                f"match the system's {name} geometry {geometry.describe()}"
            )
        return ResizableCache(geometry, self.organization, name=name)

    def describe(self) -> str:
        """Short label, e.g. ``"selective-sets/static"`` or ``"fixed"``."""
        if self.organization is None:
            return "fixed"
        strategy_name = self.strategy.name if self.strategy is not None else "none"
        return f"{self.organization.name}/{strategy_name}"


class _L1Runtime:
    """Book-keeping the simulator keeps per L1 cache during a run."""

    def __init__(self, cache, setup: L1Setup, geometry: CacheGeometry) -> None:
        self.cache = cache
        self.setup = setup
        self.geometry = geometry
        self.is_resizable = isinstance(cache, ResizableCache)
        self._full_state = SubarrayMap(geometry).full_state()
        self.strategy = setup.strategy
        if self.strategy is not None:
            self.strategy.bind(setup.organization)
        self.capacity_weight = 0.0  # sum of capacity * instructions
        self.pending_flush_writebacks = 0

    def apply_initial_config(self) -> None:
        """Apply the strategy's initial configuration (before the run starts)."""
        if not self.is_resizable or self.strategy is None:
            return
        initial = self.strategy.initial_config()
        if initial is not None and initial != self.cache.current_config:
            self.cache.resize_to(initial)

    @property
    def subarray_state(self):
        """Enabled-subarray state used by the energy model."""
        if self.is_resizable:
            return self.cache.subarray_state
        return self._full_state

    @property
    def enabled_ways(self) -> int:
        """Currently enabled associativity."""
        return self.cache.associativity

    @property
    def current_capacity(self) -> float:
        """Currently enabled capacity in bytes."""
        if self.is_resizable:
            return float(self.cache.current_capacity_bytes)
        return float(self.geometry.capacity_bytes)

    @property
    def resizing_tag_bits(self) -> int:
        """Extra tag bits the energy model must charge for."""
        if self.is_resizable:
            return self.cache.resizing_tag_bits
        return 0

    @property
    def label(self) -> str:
        """Label describing the cache configuration for reports."""
        base = f"{format_size(self.geometry.capacity_bytes)} {self.geometry.associativity}-way"
        return f"{base} ({self.setup.describe()})"

    def observe_interval(self, hierarchy: CacheHierarchy, accesses: int, misses: int) -> int:
        """Run the strategy for one interval; returns flush-writeback count."""
        if not self.is_resizable or self.strategy is None:
            return 0
        decision = self.strategy.observe_interval(accesses, misses, self.cache.current_config)
        if decision is None or decision == self.cache.current_config:
            return 0
        outcome = self.cache.resize_to(decision)
        if outcome.writeback_addresses:
            hierarchy.absorb_l1_writebacks(outcome.writeback_addresses)
        return len(outcome.writeback_addresses)


class Simulator:
    """Replays traces against a configured system and produces results."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        technology: Optional[TechnologyParameters] = None,
        timing: Optional[CoreTimingParameters] = None,
        engine: EngineLike = None,
    ) -> None:
        self.system = system if system is not None else SystemConfig()
        self.technology = technology if technology is not None else TechnologyParameters()
        self.timing = timing if timing is not None else CoreTimingParameters()
        #: Default replay engine for this simulator's runs (name, instance,
        #: or None for the package default).  Validated eagerly so a typo
        #: fails at construction, not mid-sweep.
        self.engine = engine
        get_engine(engine)

    def run(
        self,
        trace: Trace,
        d_setup: Optional[L1Setup] = None,
        i_setup: Optional[L1Setup] = None,
        interval_instructions: int = 1500,
        warmup_instructions: int = 0,
        engine: EngineLike = None,
        sample_every: int = 1,
        sample_warmup: int = 0,
    ) -> SimulationResult:
        """Simulate ``trace`` and return the aggregated result.

        Args:
            trace: the instruction trace to replay.
            d_setup / i_setup: L1 configurations (None = non-resizable).
            interval_instructions: interval length for timing, energy and
                resizing decisions.
            warmup_instructions: leading instructions excluded from the
                reported statistics (they still warm the caches and drive
                resizing decisions).
            engine: replay engine override for this run (name or instance);
                None uses the simulator's engine, which itself defaults to
                the package default.  All engines are bit-identical — the
                choice affects speed only.
            sample_every: simulate only every Nth interval (1 = exhaustive).
                Sampled runs report per-interval miss-ratio standard errors
                in the result; methodology in ``docs/SAMPLING.md``.
            sample_warmup: instructions replayed (but not measured) before
                each sampled interval to re-warm cache and predictor state.
        """
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        if interval_instructions < 1:
            raise SimulationError("interval length must be at least one instruction")
        if sample_every < 1:
            raise SimulationError("sample_every must be at least 1")
        if sample_warmup < 0:
            raise SimulationError("sample_warmup cannot be negative")
        replay_engine = get_engine(engine if engine is not None else self.engine)
        context = self._prepare_run(
            trace, d_setup, i_setup, interval_instructions, warmup_instructions,
            sample_every=sample_every, sample_warmup=sample_warmup,
        )
        replay_engine.replay(trace, context)
        return self._finalize_run(context)

    def _prepare_run(
        self,
        trace: Trace,
        d_setup: Optional[L1Setup],
        i_setup: Optional[L1Setup],
        interval_instructions: int,
        warmup_instructions: int,
        sample_every: int = 1,
        sample_warmup: int = 0,
    ) -> ReplayContext:
        """Build one run's caches, models and :class:`ReplayContext`.

        Everything :meth:`run` constructs before handing control to the
        replay engine lives here so the fused ladder path
        (:mod:`repro.sim.ladder`) can build K independent contexts against
        the *same* trace and replay them all from one decode pass.  The
        caller is responsible for the trace/interval validation :meth:`run`
        performs (the fused path validates once for the whole ladder).
        """
        system = self.system
        d_setup = d_setup if d_setup is not None else L1Setup()
        i_setup = i_setup if i_setup is not None else L1Setup()

        l1d = d_setup.build(system.l1d, "l1d")
        l1i = i_setup.build(system.l1i, "l1i")
        hierarchy = CacheHierarchy(system, l1i=l1i, l1d=l1d)
        d_runtime = _L1Runtime(l1d, d_setup, system.l1d)
        i_runtime = _L1Runtime(l1i, i_setup, system.l1i)
        d_runtime.apply_initial_config()
        i_runtime.apply_initial_config()

        core_model = make_core_model(system, self.timing)
        predictor = BimodalBranchPredictor()
        accountant = EnergyAccountant(
            system,
            self.technology,
            l1d_resizing_tag_bits=d_runtime.resizing_tag_bits,
            l1i_resizing_tag_bits=i_runtime.resizing_tag_bits,
        )

        result = SimulationResult(
            workload=trace.name,
            core_kind=system.core.kind.value,
            l1d_label=d_runtime.label,
            l1i_label=i_runtime.label,
            full_l1d_capacity=system.l1d.capacity_bytes,
            full_l1i_capacity=system.l1i.capacity_bytes,
        )

        context = ReplayContext(
            hierarchy=hierarchy,
            predictor=predictor,
            core_model=core_model,
            accountant=accountant,
            d_runtime=d_runtime,
            i_runtime=i_runtime,
            result=result,
            interval_instructions=interval_instructions,
            warmup_instructions=warmup_instructions,
            block_mask=_block_mask(system.l1i.block_bytes),
            memory_level_parallelism=trace.memory_level_parallelism,
            sample_every=sample_every,
            sample_warmup=sample_warmup,
        )
        context.total_intervals = (
            len(trace) + interval_instructions - 1
        ) // interval_instructions
        return context

    @staticmethod
    def _finalize_run(context: ReplayContext) -> SimulationResult:
        """Aggregate a replayed context into its :class:`SimulationResult`.

        The exact tail of the historical ``run`` method, split out so the
        fused ladder path finalizes each of its contexts identically.
        """
        d_runtime = context.d_runtime
        i_runtime = context.i_runtime
        result = context.result
        result.instructions = context.measured_instructions
        result.cycles = context.measured_cycles
        if context.measured_instructions > 0:
            result.average_l1d_capacity = (
                d_runtime.capacity_weight / context.measured_instructions
            )
            result.average_l1i_capacity = (
                i_runtime.capacity_weight / context.measured_instructions
            )
        if d_runtime.is_resizable:
            result.l1d_resizes = d_runtime.cache.resize_count
            result.l1d_flush_writebacks = d_runtime.cache.flush_writebacks
        if i_runtime.is_resizable:
            result.l1i_resizes = i_runtime.cache.resize_count
            result.l1i_flush_writebacks = i_runtime.cache.flush_writebacks
        if context.sample_every > 1:
            samples = context.interval_samples
            result.sample_every = context.sample_every
            result.sample_warmup = context.sample_warmup
            result.total_intervals = context.total_intervals
            result.sampled_intervals = len(samples)
            result.l1d_miss_ratio_stderr = _ratio_stderr(
                [(misses, accesses) for accesses, misses, _, _ in samples]
            )
            result.l1i_miss_ratio_stderr = _ratio_stderr(
                [(misses, accesses) for _, _, accesses, misses in samples]
            )
        return result
