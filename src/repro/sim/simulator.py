"""The trace-driven processor simulator.

The simulator replays a :class:`repro.workloads.trace.Trace` against a
two-level cache hierarchy, chops execution into fixed-length instruction
intervals, and for each interval

1. asks the core timing model for the interval's cycles,
2. asks the energy accountant for the interval's energy breakdown (which
   depends on how many subarrays each L1 currently has enabled), and
3. gives each resizing strategy the interval's access/miss counts so the
   miss-ratio based dynamic framework can upsize or downsize.

Resizing flushes are routed into the L2 and charged to the following
interval, so the energy and delay costs of resizing the paper discusses in
Section 3 are all accounted for.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.subarray import SubarrayMap
from repro.common.config import CacheGeometry, SystemConfig
from repro.common.errors import SimulationError
from repro.common.units import format_size
from repro.cpu.branch import BimodalBranchPredictor
from repro.cpu.core_model import make_core_model
from repro.cpu.timing import CoreTimingParameters
from repro.energy.accounting import EnergyAccountant
from repro.energy.technology import TechnologyParameters
from repro.metrics.counts import IntervalCounts
from repro.resizing.organization import ResizingOrganization
from repro.resizing.resizable_cache import ResizableCache
from repro.resizing.strategy import ResizingStrategy
from repro.sim.results import SimulationResult
from repro.workloads.trace import Trace

#: Per-process memo of fetch-block masks keyed by block size.
#:
#: Invariant (required for multiprocessing safety): the memo is append-only,
#: its values are immutable ints, and it is never shared between processes —
#: under ``fork`` each sweep worker inherits a snapshot and then diverges,
#: under ``spawn`` each worker starts empty.  Entries are never removed or
#: rewritten, so a stale read can at worst recompute a value that is equal
#: by construction.  Do not clear or mutate entries in place.
_BLOCK_MASK_CACHE: dict = {}


def _block_mask(block_bytes: int) -> int:
    """The address mask selecting the fetch block for ``block_bytes`` blocks."""
    mask = _BLOCK_MASK_CACHE.get(block_bytes)
    if mask is None:
        mask = ~(block_bytes - 1)
        _BLOCK_MASK_CACHE[block_bytes] = mask
    return mask


class L1Setup:
    """How one L1 cache is configured for a run.

    ``organization=None`` builds a conventional non-resizable cache (the
    baseline every figure normalises against); otherwise a
    :class:`ResizableCache` with the given organization is built and the
    strategy decides when it resizes.
    """

    def __init__(
        self,
        organization: Optional[ResizingOrganization] = None,
        strategy: Optional[ResizingStrategy] = None,
    ) -> None:
        if organization is None and strategy is not None:
            raise SimulationError("a resizing strategy requires a resizing organization")
        self.organization = organization
        self.strategy = strategy

    @property
    def is_resizable(self) -> bool:
        """True when this setup builds a resizable cache."""
        return self.organization is not None

    def build(self, geometry: CacheGeometry, name: str):
        """Instantiate the cache object for this setup."""
        if self.organization is None:
            return Cache(geometry, name=name)
        if self.organization.geometry != geometry:
            raise SimulationError(
                f"organization geometry {self.organization.geometry.describe()} does not "
                f"match the system's {name} geometry {geometry.describe()}"
            )
        return ResizableCache(geometry, self.organization, name=name)

    def describe(self) -> str:
        """Short label, e.g. ``"selective-sets/static"`` or ``"fixed"``."""
        if self.organization is None:
            return "fixed"
        strategy_name = self.strategy.name if self.strategy is not None else "none"
        return f"{self.organization.name}/{strategy_name}"


class _L1Runtime:
    """Book-keeping the simulator keeps per L1 cache during a run."""

    def __init__(self, cache, setup: L1Setup, geometry: CacheGeometry) -> None:
        self.cache = cache
        self.setup = setup
        self.geometry = geometry
        self.is_resizable = isinstance(cache, ResizableCache)
        self._full_state = SubarrayMap(geometry).full_state()
        self.strategy = setup.strategy
        if self.strategy is not None:
            self.strategy.bind(setup.organization)
        self.capacity_weight = 0.0  # sum of capacity * instructions
        self.pending_flush_writebacks = 0

    def apply_initial_config(self) -> None:
        """Apply the strategy's initial configuration (before the run starts)."""
        if not self.is_resizable or self.strategy is None:
            return
        initial = self.strategy.initial_config()
        if initial is not None and initial != self.cache.current_config:
            self.cache.resize_to(initial)

    @property
    def subarray_state(self):
        """Enabled-subarray state used by the energy model."""
        if self.is_resizable:
            return self.cache.subarray_state
        return self._full_state

    @property
    def enabled_ways(self) -> int:
        """Currently enabled associativity."""
        return self.cache.associativity

    @property
    def current_capacity(self) -> float:
        """Currently enabled capacity in bytes."""
        if self.is_resizable:
            return float(self.cache.current_capacity_bytes)
        return float(self.geometry.capacity_bytes)

    @property
    def resizing_tag_bits(self) -> int:
        """Extra tag bits the energy model must charge for."""
        if self.is_resizable:
            return self.cache.resizing_tag_bits
        return 0

    @property
    def label(self) -> str:
        """Label describing the cache configuration for reports."""
        base = f"{format_size(self.geometry.capacity_bytes)} {self.geometry.associativity}-way"
        return f"{base} ({self.setup.describe()})"

    def observe_interval(self, hierarchy: CacheHierarchy, accesses: int, misses: int) -> int:
        """Run the strategy for one interval; returns flush-writeback count."""
        if not self.is_resizable or self.strategy is None:
            return 0
        decision = self.strategy.observe_interval(accesses, misses, self.cache.current_config)
        if decision is None or decision == self.cache.current_config:
            return 0
        outcome = self.cache.resize_to(decision)
        if outcome.writeback_addresses:
            hierarchy.absorb_l1_writebacks(outcome.writeback_addresses)
        return len(outcome.writeback_addresses)


class Simulator:
    """Replays traces against a configured system and produces results."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        technology: Optional[TechnologyParameters] = None,
        timing: Optional[CoreTimingParameters] = None,
    ) -> None:
        self.system = system if system is not None else SystemConfig()
        self.technology = technology if technology is not None else TechnologyParameters()
        self.timing = timing if timing is not None else CoreTimingParameters()

    def run(
        self,
        trace: Trace,
        d_setup: Optional[L1Setup] = None,
        i_setup: Optional[L1Setup] = None,
        interval_instructions: int = 1500,
        warmup_instructions: int = 0,
    ) -> SimulationResult:
        """Simulate ``trace`` and return the aggregated result.

        Args:
            trace: the instruction trace to replay.
            d_setup / i_setup: L1 configurations (None = non-resizable).
            interval_instructions: interval length for timing, energy and
                resizing decisions.
            warmup_instructions: leading instructions excluded from the
                reported statistics (they still warm the caches and drive
                resizing decisions).
        """
        if len(trace) == 0:
            raise SimulationError("cannot simulate an empty trace")
        if interval_instructions < 1:
            raise SimulationError("interval length must be at least one instruction")

        system = self.system
        d_setup = d_setup if d_setup is not None else L1Setup()
        i_setup = i_setup if i_setup is not None else L1Setup()

        l1d = d_setup.build(system.l1d, "l1d")
        l1i = i_setup.build(system.l1i, "l1i")
        hierarchy = CacheHierarchy(system, l1i=l1i, l1d=l1d)
        d_runtime = _L1Runtime(l1d, d_setup, system.l1d)
        i_runtime = _L1Runtime(l1i, i_setup, system.l1i)
        d_runtime.apply_initial_config()
        i_runtime.apply_initial_config()

        core_model = make_core_model(system, self.timing)
        predictor = BimodalBranchPredictor()
        accountant = EnergyAccountant(
            system,
            self.technology,
            l1d_resizing_tag_bits=d_runtime.resizing_tag_bits,
            l1i_resizing_tag_bits=i_runtime.resizing_tag_bits,
        )

        result = SimulationResult(
            workload=trace.name,
            core_kind=system.core.kind.value,
            l1d_label=d_runtime.label,
            l1i_label=i_runtime.label,
            full_l1d_capacity=system.l1d.capacity_bytes,
            full_l1i_capacity=system.l1i.capacity_bytes,
        )

        block_mask = _block_mask(system.l1i.block_bytes)
        data_access = hierarchy.data_access
        instruction_fetch = hierarchy.instruction_fetch
        predict = predictor.predict_and_update
        mlp = trace.memory_level_parallelism

        counts = IntervalCounts(memory_level_parallelism=mlp)
        measured_instructions = 0
        measured_cycles = 0.0
        last_fetch_block = -1
        instructions_in_interval = 0
        total_seen = 0

        def close_interval(final: bool = False) -> None:
            nonlocal counts, instructions_in_interval, measured_instructions, measured_cycles
            if counts.instructions == 0:
                return
            cycles = core_model.interval_cycles(counts)
            breakdown = accountant.interval_breakdown(
                counts,
                cycles,
                l1d_state=d_runtime.subarray_state,
                l1d_ways=d_runtime.enabled_ways,
                l1i_state=i_runtime.subarray_state,
                l1i_ways=i_runtime.enabled_ways,
            )
            in_warmup = total_seen <= warmup_instructions
            if not in_warmup:
                measured_instructions += counts.instructions
                measured_cycles += cycles
                result.energy.add(breakdown)
                result.l1d_accesses += counts.l1d_accesses
                result.l1d_misses += counts.l1d_misses
                result.l1i_accesses += counts.l1i_accesses
                result.l1i_misses += counts.l1i_misses
                result.l2_accesses += counts.l2_accesses
                result.l2_misses += counts.memory_accesses
                result.branch_mispredicts += counts.branch_mispredicts
                d_runtime.capacity_weight += d_runtime.current_capacity * counts.instructions
                i_runtime.capacity_weight += i_runtime.current_capacity * counts.instructions

            if not final:
                d_flush = d_runtime.observe_interval(
                    hierarchy, counts.l1d_accesses, counts.l1d_misses
                )
                i_flush = i_runtime.observe_interval(
                    hierarchy, counts.l1i_accesses, counts.l1i_misses
                )
                counts = IntervalCounts(memory_level_parallelism=mlp)
                if d_flush or i_flush:
                    counts.resize_flush_writebacks = d_flush + i_flush
                    counts.l2_accesses += d_flush + i_flush
            instructions_in_interval = 0

        for record in trace.records:
            pc, data_address, is_store, is_branch, taken = record
            counts.instructions += 1
            total_seen += 1

            fetch_block = pc & block_mask
            if fetch_block != last_fetch_block:
                last_fetch_block = fetch_block
                outcome = instruction_fetch(pc)
                counts.l1i_accesses += 1
                if not outcome.l1_hit:
                    counts.l1i_misses += 1
                    counts.l2_accesses += outcome.l2_accesses
                    counts.memory_accesses += outcome.memory_accesses
                    counts.l1i_memory_accesses += outcome.memory_accesses

            if is_branch:
                counts.branches += 1
                if predict(pc, taken):
                    counts.branch_mispredicts += 1

            if data_address is not None:
                outcome = data_access(data_address, is_store)
                counts.l1d_accesses += 1
                if is_store:
                    counts.l1d_stores += 1
                if not outcome.l1_hit:
                    counts.l1d_misses += 1
                    counts.l2_accesses += outcome.l2_accesses
                    counts.memory_accesses += outcome.memory_accesses
                    counts.l1d_memory_accesses += outcome.memory_accesses
                    if outcome.l2_accesses > 1:
                        counts.l1d_writebacks += outcome.l2_accesses - 1

            instructions_in_interval += 1
            if instructions_in_interval >= interval_instructions:
                close_interval()

        close_interval(final=True)

        result.instructions = measured_instructions
        result.cycles = measured_cycles
        if measured_instructions > 0:
            result.average_l1d_capacity = d_runtime.capacity_weight / measured_instructions
            result.average_l1i_capacity = i_runtime.capacity_weight / measured_instructions
        if d_runtime.is_resizable:
            result.l1d_resizes = l1d.resize_count
            result.l1d_flush_writebacks = l1d.flush_writebacks
        if i_runtime.is_resizable:
            result.l1i_resizes = l1i.resize_count
            result.l1i_flush_writebacks = l1i.flush_writebacks
        return result
